"""Scenario: sensor gossip in a mobile ad-hoc network with limited radio frames.

The paper's motivation: modern networks (vehicular/ad-hoc/p2p) change too
fast to converge, yet nodes must aggregate global information.  Here 40
sensors each hold one 16-bit reading and move through the unit square under
random-waypoint mobility; the radio topology of each round is the unit-disk
graph of the current positions (the ``waypoint_radio`` entry of the
scenario catalog — a packed-native
:class:`~repro.network.dynamics.RandomWaypointProcess` repaired to
per-round connectivity, replacing this example's original hand-rolled
random-graph shuffle).  One radio frame carries b bits.  We sweep the frame
size and show how the greedy-forward network coding algorithm turns bigger
frames into a *quadratic* round saving while plain forwarding only gains
linearly (Theorems 2.1 vs 2.3).

Run with:  python examples/mobile_adhoc_gossip.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    GreedyForwardNode,
    MessageBudget,
    ProtocolConfig,
    TokenForwardingNode,
    one_token_per_node,
    run_dissemination,
)
from repro.analysis import greedy_forward_rounds, token_forwarding_rounds
from repro.scenarios import SCENARIOS, make_scenario
from repro.simulation import format_table


def main() -> None:
    n = 40
    d = 16
    placement = one_token_per_node(n, d, np.random.default_rng(7))
    scenario = SCENARIOS["waypoint_radio"]
    print(f"scenario {scenario.name!r}: {scenario.description}")
    print(f"guarantees: {', '.join(scenario.guarantees)}\n")

    rows = []
    for b in (64, 128, 256):
        config = ProtocolConfig(n=n, k=n, token_bits=d, budget=MessageBudget(b=b))
        # One adversary object per protocol: run_dissemination resets it, so
        # both protocols face the identical mobility schedule.
        adversary = make_scenario("waypoint_radio", n, seed=3)
        coded = run_dissemination(GreedyForwardNode, config, placement, adversary, seed=1)
        forwarding = run_dissemination(
            TokenForwardingNode, config, placement, adversary, seed=1
        )
        rows.append(
            {
                "frame bits b": b,
                "coded rounds": coded.rounds,
                "forwarding rounds": forwarding.rounds,
                "speedup": round(forwarding.rounds / coded.rounds, 2),
                "theory coded~": round(greedy_forward_rounds(n, n, d, b)),
                "theory fwd~": round(token_forwarding_rounds(n, n, d, b)),
            }
        )
    print(
        format_table(
            rows, title="Sensor gossip, 40 nodes, 16-bit readings, waypoint mobility radio"
        )
    )
    print("\nBigger radio frames help coding quadratically but forwarding only linearly —")
    print("the effect Section 2.1 of the paper calls out as counter-intuitive.")


if __name__ == "__main__":
    main()
