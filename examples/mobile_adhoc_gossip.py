"""Scenario: sensor gossip in a mobile ad-hoc network with limited radio frames.

The paper's motivation: modern networks (vehicular/ad-hoc/p2p) change too
fast to converge, yet nodes must aggregate global information.  Here 40
sensors each hold one 16-bit reading; the radio topology is re-shuffled
every round (a sparse random connected graph); one radio frame carries b
bits.  We sweep the frame size and show how the greedy-forward network
coding algorithm turns bigger frames into a *quadratic* round saving while
plain forwarding only gains linearly (Theorems 2.1 vs 2.3).

Run with:  python examples/mobile_adhoc_gossip.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    GreedyForwardNode,
    MessageBudget,
    ProtocolConfig,
    RandomConnectedAdversary,
    TokenForwardingNode,
    one_token_per_node,
    run_dissemination,
)
from repro.analysis import greedy_forward_rounds, token_forwarding_rounds
from repro.simulation import format_table


def main() -> None:
    n = 40
    d = 16
    placement = one_token_per_node(n, d, np.random.default_rng(7))

    rows = []
    for b in (64, 128, 256):
        config = ProtocolConfig(n=n, k=n, token_bits=d, budget=MessageBudget(b=b))
        coded = run_dissemination(
            GreedyForwardNode, config, placement, RandomConnectedAdversary(seed=3), seed=1
        )
        forwarding = run_dissemination(
            TokenForwardingNode, config, placement, RandomConnectedAdversary(seed=3), seed=1
        )
        rows.append(
            {
                "frame bits b": b,
                "coded rounds": coded.rounds,
                "forwarding rounds": forwarding.rounds,
                "speedup": round(forwarding.rounds / coded.rounds, 2),
                "theory coded~": round(greedy_forward_rounds(n, n, d, b)),
                "theory fwd~": round(token_forwarding_rounds(n, n, d, b)),
            }
        )
    print(format_table(rows, title="Sensor gossip, 40 nodes, 16-bit readings, dynamic radio topology"))
    print("\nBigger radio frames help coding quadratically but forwarding only linearly —")
    print("the effect Section 2.1 of the paper calls out as counter-intuitive.")


if __name__ == "__main__":
    main()
