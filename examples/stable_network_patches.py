"""Scenario: exploiting temporary stability (T-stable networks, Section 8).

A datacenter overlay reconfigures every T rounds rather than every round.
This example runs the patch-sharing coded protocol of Section 8 under
several stability levels, shows the patch decomposition it builds (leaders,
sizes, diameters), and compares against pipelined token forwarding.

Run with:  python examples/stable_network_patches.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    MessageBudget,
    PipelinedTokenForwardingNode,
    ProtocolConfig,
    RandomConnectedAdversary,
    TStableAdversary,
    one_token_per_node,
    run_dissemination,
)
from repro.algorithms import make_tstable_factory
from repro.network import compute_patches, random_connected_graph
from repro.simulation import format_table


def main() -> None:
    n = 28
    d = 8

    # First, show what a patch decomposition looks like on one stable topology.
    graph = random_connected_graph(n, np.random.default_rng(1), extra_edge_prob=0.03)
    decomposition = compute_patches(graph, radius=3, rng=np.random.default_rng(2))
    print(f"Patch decomposition of one stable topology (n={n}, D=3):")
    for patch in decomposition.patches:
        print(
            f"  leader {patch.leader:2d}: {patch.size:2d} members, tree height {patch.height}"
        )
    print()

    rows = []
    placement = one_token_per_node(n, d, np.random.default_rng(3))
    for stability in (2, 8, 16):
        config = ProtocolConfig(
            n=n, k=n, token_bits=d, budget=MessageBudget(b=n + 32), stability=stability
        )
        coded = run_dissemination(
            make_tstable_factory(config, seed=5),
            config,
            placement,
            TStableAdversary(RandomConnectedAdversary(seed=7), stability),
            seed=5,
        )
        forwarding_config = ProtocolConfig(
            n=n, k=n, token_bits=d, budget=MessageBudget(b=24), stability=stability
        )
        forwarding = run_dissemination(
            PipelinedTokenForwardingNode,
            forwarding_config,
            placement,
            TStableAdversary(RandomConnectedAdversary(seed=7), stability),
            seed=5,
        )
        rows.append(
            {
                "T": stability,
                "patch coding rounds": coded.rounds,
                "topology changes used": -(-coded.rounds // stability),
                "pipelined forwarding rounds": forwarding.rounds,
            }
        )
    print(format_table(rows, title="Share-pass-share coding vs forwarding under T-stability"))
    print("\nThe coded protocol pays a bounded number of meta-rounds per topology change;")
    print("Section 8.3's super-block packing (analysed in repro.analysis.bounds) turns that")
    print("into the paper's full T^2 speedup at scale.")


if __name__ == "__main__":
    main()
