"""Quickstart: disseminate n tokens in a fully dynamic network, with and without coding.

Runs the paper's headline comparison at a small scale: every node starts
with one token, an adaptive adversary rewires the (always connected) network
every round, and we compare random linear network coding against the
knowledge-based token-forwarding baseline.  A second section demonstrates
execution-engine selection: the same run on the vectorised kernel engine,
the per-node mask engine and the original legacy engine — identical
results, very different wall-clock.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import (
    BottleneckAdversary,
    IndexedBroadcastNode,
    MessageBudget,
    ProtocolConfig,
    TokenForwardingNode,
    one_token_per_node,
    run_dissemination,
)


def engine_selection_demo() -> None:
    """One protocol, three engines: same metrics, different speed.

    ``engine="auto"`` (the default) picks the most specialised engine that
    applies — the packed-array kernel engine for protocols that ship a
    RoundKernel, the mask engine otherwise, the legacy networkx engine for
    protocols that override ``known_token_ids``.
    """
    from repro.network import ShiftedRingAdversary

    n = 128
    config = ProtocolConfig(n=n, k=n, token_bits=8, budget=MessageBudget(b=48))
    placement = one_token_per_node(n, 8, np.random.default_rng(0))

    print(f"\nengine selection (token forwarding, n = k = {n}, shifted rings):")
    for engine in ("kernel", "mask", "legacy"):
        start = time.perf_counter()
        result = run_dissemination(
            TokenForwardingNode,
            config,
            placement,
            ShiftedRingAdversary(),
            seed=1,
            engine=engine,
            max_rounds=600,
        )
        elapsed = time.perf_counter() - start
        print(
            f"  engine={engine!r:9}: {result.metrics.rounds_executed:4d} rounds "
            f"in {elapsed:6.3f}s (broadcasts={result.metrics.broadcasts})"
        )
    auto = run_dissemination(
        TokenForwardingNode,
        config,
        placement,
        ShiftedRingAdversary(),
        seed=1,
        engine="auto",
        max_rounds=600,
    )
    print(f"  engine='auto' resolved to {auto.engine!r}")


def main() -> None:
    n = 32                      # number of nodes (and tokens: one per node)
    token_bits = 8              # token size d
    budget = MessageBudget(b=n + 32)   # message size b (covers the coding header)

    config = ProtocolConfig(n=n, k=n, token_bits=token_bits, budget=budget)
    placement = one_token_per_node(n, token_bits, np.random.default_rng(0))

    print(f"n = k = {n}, d = {token_bits} bits, b = {budget.b} bits")
    print("adversary: adaptive bottleneck (reconnects the least-informed cut every round)\n")

    coded = run_dissemination(IndexedBroadcastNode, config, placement, BottleneckAdversary(), seed=1)
    forwarding = run_dissemination(TokenForwardingNode, config, placement, BottleneckAdversary(), seed=1)

    print(f"network coding (Lemma 5.3)     : {coded.rounds:5d} rounds, "
          f"correct={coded.correct}, avg message = {coded.metrics.average_message_bits:.0f} bits")
    print(f"token forwarding (Theorem 2.1) : {forwarding.rounds:5d} rounds, "
          f"correct={forwarding.correct}, avg message = {forwarding.metrics.average_message_bits:.0f} bits")
    print(f"\nspeedup from coding: {forwarding.rounds / coded.rounds:.1f}x "
          f"(grows with n — see benchmarks/bench_e07_coding_vs_forwarding.py)")

    engine_selection_demo()


if __name__ == "__main__":
    main()
