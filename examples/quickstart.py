"""Quickstart: disseminate n tokens in a fully dynamic network, with and without coding.

Runs the paper's headline comparison at a small scale: every node starts
with one token, an adaptive adversary rewires the (always connected) network
every round, and we compare random linear network coding against the
knowledge-based token-forwarding baseline.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    BottleneckAdversary,
    IndexedBroadcastNode,
    MessageBudget,
    ProtocolConfig,
    TokenForwardingNode,
    one_token_per_node,
    run_dissemination,
)


def main() -> None:
    n = 32                      # number of nodes (and tokens: one per node)
    token_bits = 8              # token size d
    budget = MessageBudget(b=n + 32)   # message size b (covers the coding header)

    config = ProtocolConfig(n=n, k=n, token_bits=token_bits, budget=budget)
    placement = one_token_per_node(n, token_bits, np.random.default_rng(0))

    print(f"n = k = {n}, d = {token_bits} bits, b = {budget.b} bits")
    print("adversary: adaptive bottleneck (reconnects the least-informed cut every round)\n")

    coded = run_dissemination(IndexedBroadcastNode, config, placement, BottleneckAdversary(), seed=1)
    forwarding = run_dissemination(TokenForwardingNode, config, placement, BottleneckAdversary(), seed=1)

    print(f"network coding (Lemma 5.3)     : {coded.rounds:5d} rounds, "
          f"correct={coded.correct}, avg message = {coded.metrics.average_message_bits:.0f} bits")
    print(f"token forwarding (Theorem 2.1) : {forwarding.rounds:5d} rounds, "
          f"correct={forwarding.correct}, avg message = {forwarding.metrics.average_message_bits:.0f} bits")
    print(f"\nspeedup from coding: {forwarding.rounds / coded.rounds:.1f}x "
          f"(grows with n — see benchmarks/bench_e07_coding_vs_forwarding.py)")


if __name__ == "__main__":
    main()
