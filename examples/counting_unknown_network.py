"""Scenario: counting the nodes of a network of unknown size.

Counting is the canonical application of k-token dissemination in the paper
(each node's "token" is its own identifier; once everyone knows every
identifier, everyone knows n).  The size is not known in advance, so the
protocol guesses n_hat = 2, runs dissemination sized for the guess, detects
failure, doubles, and repeats (Section 4.1 remark).  The geometric sum of
the failed attempts costs only a constant factor.

Run with:  python examples/counting_unknown_network.py
"""

from __future__ import annotations

from repro import IndexedBroadcastNode, RandomConnectedAdversary, TokenForwardingNode
from repro.algorithms import count_nodes_via_doubling
from repro.simulation import format_table


def main() -> None:
    rows = []
    for name, factory in [
        ("token forwarding", TokenForwardingNode),
        ("network coding", IndexedBroadcastNode),
    ]:
        for n_true in (11, 23):
            outcome = count_nodes_via_doubling(
                factory,
                n_true=n_true,
                token_bits=8,
                b=96,
                adversary_factory=lambda: RandomConnectedAdversary(seed=n_true),
            )
            rows.append(
                {
                    "protocol": name,
                    "true n": n_true,
                    "exact count found": outcome.exact_count,
                    "estimate n_hat": outcome.estimate,
                    "doubling attempts": outcome.attempts,
                    "total rounds": outcome.total_rounds,
                    "rounds of final run": outcome.final_rounds,
                    "overhead factor": round(outcome.overhead_factor, 2),
                }
            )
    print(format_table(rows, title="Counting an unknown dynamic network by repeated doubling"))
    print("\nEvery run recovers the exact count; the failed small guesses add only a")
    print("bounded overhead over the final successful run (the paper's geometric-sum argument).")


if __name__ == "__main__":
    main()
