"""Scenario: coded gossip on a hostile network — loss, Byzantine senders,
adaptive adversaries, and crash–recovery.

The paper's protocols assume honest nodes and reliable (if adversarially
*chosen*) links.  This example stresses the indexed-broadcast network
coding algorithm on the orthogonal fault axis instead: every edge drops a
delivery with probability 0.2, and two nodes turn Byzantine, replacing
their coded wire traffic with adversarial GF(2) vectors.  Receivers verify
incoming vectors against the source span (the homomorphic-signature model
of the network-coding literature): malformed vectors are provably forged
and discarded, replayed in-span vectors verify but are almost never
innovative — either way the protocol keeps its dissemination guarantee and
pays only in rounds.  Two second-generation fault mixes ride along: an
adaptive adversary that erases live cut edges each round, and
churn-derived crash–recovery intervals where nodes rejoin mid-run with
stale state.  Third-generation axes complete the tour: radio-collision
rounds (a receiver hearing two or more simultaneous senders keeps nothing
— or, with capture, only the lowest uid), fake quorum membership, and
protocol-state-aware adversaries that target the least-informed node or
the knowledge frontier.

The Byzantine nodes sit at the two highest uids, which hold no tokens
under the standard placement, so the honest population still owns every
token and completion stays reachable.  The same placement rule covers the
fake quorum members at uids n-3..n-1: a fake member never originates an
honest token, and every completion figure under a quorum model — the stop
rule, ``survivors`` and ``surviving_completion_rate`` — is computed over
the *honest* quorum only (the ``n >= 2f+1`` ByzQuorum bound is validated
at bind time).

Run with:  python examples/hostile_gossip.py

Pass ``--trace PATH`` to also record a per-round trace of the full hostile
mix (loss + malformed Byzantine senders) and print its round-by-round
summary table; inspect the saved artifact later with
``python -m repro.obs summarize PATH`` or diff it against another engine's
run with ``python -m repro.obs diff``.
"""

from __future__ import annotations

import argparse

from repro import IndexedBroadcastNode, MessageBudget, ProtocolConfig, run_dissemination
from repro.network import BridgeLossStrategy, FaultModel
from repro.obs import SystemClock, TraceRecorder, summary_rows
from repro.scenarios import SCENARIOS, fault_model_for, make_scenario
from repro.simulation import format_table, standard_instance

N = 32
K = N - 3  # tokens live at uids 0..28; uids 29, 30, 31 are payload-free
TOKEN_BITS = 16


def _describe(model: FaultModel | None) -> str:
    if model is None:
        return "benign"
    axes = []
    if model.loss:
        axes.append(f"{model.loss:.0%} loss")
    if model.byzantine:
        axes.append(f"{len(model.byzantine)} byzantine ({model.byzantine_mode})")
    if model.crashes:
        recovering = sum(1 for entry in model.crashes if len(entry) == 3)
        axes.append(f"{len(model.crashes)} crashes ({recovering} recover)")
    if model.strategy is not None:
        axes.append(type(model.strategy).__name__)
    if model.collisions is not None:
        mode = "capture" if model.collisions.capture else "silence"
        axes.append(f"collisions p={model.collisions.probability} ({mode})")
    if model.quorum is not None:
        axes.append(f"{len(model.quorum.fake)} fake quorum members")
    return " + ".join(axes)


def main(trace_path: str | None = None) -> None:
    scenario = SCENARIOS["edge_markov"]
    print(f"scenario {scenario.name!r}: {scenario.description}")
    print(f"{N} nodes, {K} tokens of {TOKEN_BITS} bits, indexed broadcast\n")

    config = ProtocolConfig(
        n=N, k=K, token_bits=TOKEN_BITS, budget=MessageBudget(b=max(64, N + 16))
    )
    placement = standard_instance(N, K, TOKEN_BITS, seed=7)
    byzantine = (N - 2, N - 1)
    setups = [
        None,
        FaultModel(loss=0.2),
        FaultModel(byzantine=byzantine, byzantine_mode="malformed"),
        FaultModel(loss=0.2, byzantine=byzantine, byzantine_mode="malformed"),
        FaultModel(loss=0.2, byzantine=byzantine, byzantine_mode="replay"),
        # Second-generation axes: an adaptive adversary erasing live cut
        # edges, and churn-derived crash–recovery intervals (nodes rejoin
        # mid-run holding whatever knowledge they crashed with).
        FaultModel(strategy=BridgeLossStrategy(probability=0.5)),
        fault_model_for("crash_recover_churn", N, seed=0),
        # Third-generation axes: capture-mode radio collisions, fake quorum
        # members (honest-quorum completion semantics), and state-aware
        # adversaries reading per-round knowledge counts / coded ranks.
        fault_model_for("collision_waypoint", N, seed=0),
        fault_model_for("quorum_fake3_markov", N, seed=0),
        fault_model_for("frontier_adaptive_mix", N, seed=0),
        fault_model_for("straggler_capture_radio", N, seed=0),
    ]

    # The entry the optional trace records: the full hostile mix of loss
    # plus malformed Byzantine senders.
    traced_model = setups[3]
    recorder = None

    rows = []
    benign_rounds = None
    for model in setups:
        trace = None
        if trace_path is not None and model is traced_model:
            trace = recorder = TraceRecorder(
                clock=SystemClock(), label="hostile_gossip"
            )
        result = run_dissemination(
            IndexedBroadcastNode,
            config,
            placement,
            make_scenario("edge_markov", N, seed=3),
            seed=1,
            faults=model,
            max_rounds=40 * N,
            track_progress=True,
            trace=trace,
        )
        metrics = result.metrics
        if model is None:
            rounds = metrics.completion_round
            benign_rounds = rounds
            rate = 1.0 if result.completed else 0.0
        else:
            rounds = metrics.survivor_completion_round
            rate = metrics.surviving_completion_rate
        rows.append(
            {
                "faults": _describe(model),
                "completion rate": f"{rate:.0%}",
                "rounds": rounds if rounds is not None else f">{40 * N}",
                "slowdown": (
                    round(rounds / benign_rounds, 2)
                    if rounds is not None and benign_rounds
                    else "-"
                ),
                "dropped": metrics.dropped_deliveries,
                "corrupted": metrics.corrupted_deliveries,
                "collided": metrics.collided_deliveries,
                "recoveries": metrics.recoveries,
            }
        )
    print(format_table(rows, title="Indexed broadcast under hostile-network faults"))
    print("\nMalformed Byzantine vectors are discarded by span verification and only")
    print("cost wasted deliveries; 20% loss merely stretches the schedule. The")
    print("adaptive adversary severs exactly the edges a spanning forest needs, and")
    print("recovering crash victims rejoin with stale state. Collision rounds erase")
    print("crowded receivers' traffic on the air, fake quorum members add dead")
    print("weight the honest-quorum completion rule simply excludes, and the")
    print("state-aware adversaries strangle whichever node the live knowledge")
    print("counts mark as furthest behind — coded gossip degrades gracefully, and")
    print("completion survives every fault mix above.")

    if recorder is not None:
        saved = recorder.save(trace_path)
        trace = recorder.to_trace()
        print()
        print(
            format_table(
                summary_rows(trace),
                title=f"per-round trace of the {_describe(traced_model)} run",
            )
        )
        print(f"\ntrace saved to {saved}")
        print(f"inspect with: python -m repro.obs summarize {saved}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record the hostile-mix run's per-round trace to PATH (.npz)",
    )
    main(trace_path=parser.parse_args().trace)
