"""Source-tree provenance hashing for trace manifests and bench memos.

A trace (or a benchmark memo) is only comparable against another artifact
produced by the *same code*: both are stamped with a content digest of the
python sources that produced them.  :func:`tree_digest` is the shared
primitive — ``benchmarks/common._source_digest`` delegates here with the
``src`` + ``benchmarks`` trees, trace manifests use :func:`source_digest`
over the installed ``repro`` package sources.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

__all__ = ["source_digest", "tree_digest"]


def tree_digest(bases: list[Path] | tuple[Path, ...], root: Path) -> str:
    """Content hash of every ``*.py`` under ``bases``, keyed relative to ``root``.

    Files are visited in sorted relative-path order and both the relative
    path and the bytes feed the hash, so renames, moves and edits all
    change the digest.  Truncated to 12 hex chars — collision resistance
    against *accidental* reuse, not an adversary.
    """
    digest = hashlib.sha256()
    for base in bases:
        for path in sorted(Path(base).rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(path.read_bytes())
    return digest.hexdigest()[:12]


_SOURCE_DIGEST: str | None = None


def source_digest() -> str:
    """Digest of the ``repro`` package sources producing this process's traces.

    Cached per process: the sources cannot change under a running
    interpreter in any way the already-imported modules would notice.
    """
    global _SOURCE_DIGEST
    if _SOURCE_DIGEST is None:
        package_root = Path(__file__).resolve().parents[1]  # src/repro
        _SOURCE_DIGEST = tree_digest([package_root], package_root.parent)
    return _SOURCE_DIGEST
