"""The trace CLI: ``python -m repro.obs {summarize,diff,profile} ...``.

* ``summarize TRACE`` — provenance header, sampled per-round table, totals;
* ``diff A B`` — content comparison: prints ``identical`` (exit 0) or the
  first divergent round/node (exit 1) — cross-engine parity debugging as
  one command instead of a bisection;
* ``profile TRACE`` — the phase-timer report recorded when the trace was
  collected with a clock.
"""

from __future__ import annotations

import argparse
import sys

from .diff import diff_traces
from .report import describe_trace, profile_rows, summary_rows, totals_row
from .trace import load_trace


def _format_table(rows: list[dict], title: str = "") -> str:
    # Deferred import: the simulation package imports repro.obs, so the
    # table helper is only pulled in when the CLI actually runs.
    from ..simulation import format_table

    return format_table(rows, title=title)


def _cmd_summarize(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace)
    print(describe_trace(trace))
    rows = summary_rows(trace, every=args.every)
    if not rows:
        print("(empty trace: no rounds recorded)")
        return 0
    print()
    print(_format_table(rows, title=f"per-round trace of {args.trace}"))
    totals = totals_row(trace)
    print()
    print(
        "totals: "
        + "  ".join(f"{name}={value}" for name, value in totals.items())
    )
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    diff = diff_traces(load_trace(args.a), load_trace(args.b))
    print(diff.describe())
    if diff.identical:
        return 0
    for divergence in diff.divergences[1 : 1 + max(0, args.limit - 1)]:
        print(divergence.describe().replace("first divergence", "also"))
    return 1


def _cmd_profile(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace)
    print(describe_trace(trace))
    rows = profile_rows(trace)
    if not rows:
        print(
            "(no phase timings: collect with TraceRecorder(clock=SystemClock()))"
        )
        return 0
    print()
    print(_format_table(rows, title="phase profile"))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect round-trace .npz artifacts.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    summarize = commands.add_parser(
        "summarize", help="per-round summary table of one trace"
    )
    summarize.add_argument("trace", help="trace .npz path")
    summarize.add_argument(
        "--every",
        type=int,
        default=None,
        help="row sampling stride (default: ~20 rows; 1 = every round)",
    )
    summarize.set_defaults(handler=_cmd_summarize)

    diff = commands.add_parser(
        "diff", help="first divergent round/node between two traces"
    )
    diff.add_argument("a", help="first trace .npz")
    diff.add_argument("b", help="second trace .npz")
    diff.add_argument(
        "--limit",
        type=int,
        default=3,
        help="max divergent fields to print (default 3)",
    )
    diff.set_defaults(handler=_cmd_diff)

    profile = commands.add_parser(
        "profile", help="phase-timer report of one clocked trace"
    )
    profile.add_argument("trace", help="trace .npz path")
    profile.set_defaults(handler=_cmd_profile)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
