"""Columnar per-round traces of dissemination runs.

The paper's claims are per-round statements (knowledge/rank growth, wasted
broadcasts — Section 5.2), but :class:`~repro.simulation.metrics.RunMetrics`
only aggregates end-of-run totals.  A :class:`TraceRecorder` attached via
``run_dissemination(trace=...)`` collects one columnar record per executed
round, vectorised — the engines hand it whole-network numpy arrays, never
per-node Python on the kernel hot path:

========================  =========================  ==========================
array                     shape / dtype              meaning
========================  =========================  ==========================
``knowledge_counts``      ``(rounds, n)`` uint16     per-node ``len(known)`` popcounts
``coded_ranks``           ``(rounds, n)`` uint16     per-node GF(2) subspace ranks
``down_nodes``            ``(rounds, words)`` u64    packed bitmap of crashed nodes
``broadcasts`` …          ``(rounds,)`` int64        per-round deltas of the
                                                     RunMetrics counters (see
                                                     ``ROUND_COUNTERS``)
``partition_active``      ``(rounds,)`` uint8        a partition window was open
``honest_survivors``      ``(rounds,)`` int64        honest-quorum survivor count
                                                     (fake members and crash
                                                     victims excluded)
========================  =========================  ==========================

Trace *content* — every array above plus the manifest's ``content``
section — is engine-invariant: kernel, mask and legacy runs of the same
seeded instance produce byte-identical content (a much stronger standing
parity artifact than final ``RunMetrics``; pinned by
``tests/test_obs_trace.py``).  Wall-clock phase timings and the engine
name are *context*: they ride the manifest's ``context`` section and are
excluded from content identity.

Traces serialise to a single compressed ``.npz`` holding the columnar
arrays plus the JSON manifest (provenance: seed, config, protocol, fault
model, engine, source digest, phase profile).  ``python -m repro.obs``
summarises, diffs and profiles them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from .clock import Clock
from .profiler import PhaseProfiler
from .provenance import source_digest

if TYPE_CHECKING:  # imported for annotations only: obs must not import
    from ..simulation.metrics import RunMetrics  # simulation at runtime

__all__ = [
    "ROUND_COUNTERS",
    "Trace",
    "TraceRecorder",
    "load_trace",
    "save_trace",
]

#: Trace format version (bumped on any content-schema change).
#: 2: added the ``collided_deliveries`` counter column and the
#: ``honest_survivors`` content array (third-generation fault axis).
SCHEMA = 2

#: Cumulative RunMetrics counters recorded as per-round deltas, in column
#: order.  Every engine updates these identically per round — that is the
#: byte-identity contract the cross-engine trace tests pin.
ROUND_COUNTERS = (
    "broadcasts",
    "silent_rounds",
    "total_message_bits",
    "deliveries",
    "useless_deliveries",
    "dropped_deliveries",
    "duplicated_deliveries",
    "corrupted_deliveries",
    "collided_deliveries",
)

#: Arrays whose equality defines trace-content identity (everything; the
#: engine-varying parts live in the manifest's context section instead).
CONTENT_ARRAYS = (
    "knowledge_counts",
    "coded_ranks",
    "down_nodes",
    *ROUND_COUNTERS,
    "partition_active",
    "honest_survivors",
)


def _pack_bool_row(row: np.ndarray, words: int) -> np.ndarray:
    """Pack one boolean node vector into little-endian uint64 words."""
    bits = np.packbits(row, bitorder="little")
    padded = np.zeros(words * 8, dtype=np.uint8)
    padded[: bits.size] = bits
    return padded.view(np.uint64)


def unpack_node_bitmap(packed: np.ndarray, n: int) -> np.ndarray:
    """Inverse of the row packing: ``(rounds, words)`` uint64 -> bool ``(rounds, n)``."""
    rounds = packed.shape[0]
    as_bytes = np.ascontiguousarray(packed, dtype="<u8").view(np.uint8)
    bits = np.unpackbits(as_bytes.reshape(rounds, -1), axis=1, bitorder="little")
    return bits[:, :n].astype(bool)


def _repro_version() -> str:
    # Late import: ``repro/__init__`` imports the simulation package, which
    # imports this module — a top-level import would be circular.
    import repro

    return getattr(repro, "__version__", "unknown")


@dataclass
class Trace:
    """An immutable-by-convention trace: columnar arrays plus manifest."""

    arrays: dict[str, np.ndarray]
    manifest: dict

    @property
    def content(self) -> dict:
        """The engine-invariant manifest section."""
        return self.manifest["content"]

    @property
    def context(self) -> dict:
        """The engine/timing manifest section (excluded from identity)."""
        return self.manifest["context"]

    @property
    def rounds(self) -> int:
        return int(self.arrays["knowledge_counts"].shape[0])

    @property
    def n(self) -> int:
        return int(self.content["n"])

    def content_digest(self) -> str:
        """SHA-256 over the content manifest and every content array.

        Two traces with equal digests have byte-identical content; the
        context section (engine name, wall-clock profile, source digest)
        deliberately does not participate.
        """
        import hashlib

        digest = hashlib.sha256()
        digest.update(
            json.dumps(self.content, sort_keys=True, default=repr).encode()
        )
        for name in CONTENT_ARRAYS:
            array = np.ascontiguousarray(self.arrays[name])
            digest.update(name.encode())
            digest.update(str(array.dtype).encode())
            digest.update(repr(array.shape).encode())
            digest.update(array.tobytes())
        return digest.hexdigest()

    def save(self, path: str | Path) -> Path:
        return save_trace(self, path)


class TraceRecorder:
    """Collects one columnar record per executed round.

    Create one recorder per run and pass it to
    ``run_dissemination(trace=recorder)``; the engines call
    :meth:`begin_run` once and :meth:`observe_round` exactly once per
    executed round.  Pass a :class:`~repro.obs.clock.Clock` to also
    collect wall-clock phase timings (``compose`` / ``deliver`` /
    ``faults`` / ``insert`` / ``decode`` / ``materialise``); without one
    the profiler is inert and tracing adds only the columnar bookkeeping.
    """

    def __init__(self, *, clock: Clock | None = None, label: str | None = None):
        self.profiler = PhaseProfiler(clock)
        self.label = label
        self._content: dict | None = None
        self._context: dict = {}
        self._n = 0
        self._words = 0
        self._counts: list[np.ndarray] = []
        self._ranks: list[np.ndarray] = []
        self._down: list[np.ndarray] = []
        self._partition: list[int] = []
        self._honest: list[int] = []
        self._deltas: dict[str, list[int]] = {name: [] for name in ROUND_COUNTERS}
        self._previous: dict[str, int] = dict.fromkeys(ROUND_COUNTERS, 0)

    # ------------------------------------------------------------------
    @property
    def bound(self) -> bool:
        return self._content is not None

    def begin_run(
        self,
        *,
        config,
        seed: int,
        engine: str,
        factory,
        faults=None,
    ) -> None:
        """Bind the recorder to one run (engines call this, once).

        Everything except ``engine`` lands in the content section — it is
        identical across engines for the same seeded run.  A recorder
        records exactly one run; reuse raises instead of silently mixing
        two executions into one trace.
        """
        if self._content is not None:
            raise RuntimeError(
                "TraceRecorder already holds a run; create one recorder per run"
            )
        if config.k >= 2**16 or config.n >= 2**16:
            raise ValueError(
                "trace columns are uint16: n and k must stay below 65536, "
                f"got n={config.n}, k={config.k}"
            )
        self._n = int(config.n)
        self._words = (self._n + 63) // 64
        self._content = {
            "schema": SCHEMA,
            "n": int(config.n),
            "k": int(config.k),
            "token_bits": int(config.token_bits),
            "seed": int(seed),
            "protocol": getattr(factory, "__name__", type(factory).__name__),
            "faults": "benign" if faults is None else repr(faults),
            "label": self.label,
        }
        self._context = {"engine": str(engine)}

    def observe_round(
        self,
        round_index: int,
        metrics: "RunMetrics",
        counts: np.ndarray,
        ranks: np.ndarray,
        plan=None,
    ) -> None:
        """Record one executed round (call at round end, after accounting).

        ``counts`` / ``ranks`` are whole-network int arrays (the kernel
        engine passes its packed popcount / batched-rank vectors straight
        through); ``plan`` is the round's
        :class:`~repro.network.faults.RoundFaultPlan` or None.  Per-round
        counter columns are deltas of the cumulative ``metrics`` fields,
        so the recorder needs exactly one call per round, in order.
        """
        if self._content is None:
            raise RuntimeError("begin_run must be called before observe_round")
        if round_index != len(self._counts):
            raise RuntimeError(
                f"rounds must be observed in order: expected "
                f"{len(self._counts)}, got {round_index}"
            )
        self._counts.append(np.asarray(counts).astype(np.uint16))
        self._ranks.append(np.asarray(ranks).astype(np.uint16))
        if plan is not None:
            self._down.append(_pack_bool_row(plan.down, self._words))
            self._partition.append(int(plan.partition_active))
            self._honest.append(int(plan.bound.survivor_indices.size))
        else:
            self._down.append(np.zeros(self._words, dtype=np.uint64))
            self._partition.append(0)
            self._honest.append(self._n)
        for name in ROUND_COUNTERS:
            value = int(getattr(metrics, name))
            self._deltas[name].append(value - self._previous[name])
            self._previous[name] = value

    # ------------------------------------------------------------------
    def to_trace(self) -> Trace:
        """Snapshot the recorded rounds into a :class:`Trace`."""
        if self._content is None:
            raise RuntimeError("no run was recorded (begin_run never ran)")
        rounds = len(self._counts)
        arrays: dict[str, np.ndarray] = {
            "knowledge_counts": (
                np.stack(self._counts)
                if rounds
                else np.zeros((0, self._n), dtype=np.uint16)
            ),
            "coded_ranks": (
                np.stack(self._ranks)
                if rounds
                else np.zeros((0, self._n), dtype=np.uint16)
            ),
            "down_nodes": (
                np.stack(self._down)
                if rounds
                else np.zeros((0, self._words), dtype=np.uint64)
            ),
            "partition_active": np.asarray(self._partition, dtype=np.uint8),
            "honest_survivors": np.asarray(self._honest, dtype=np.int64),
        }
        for name in ROUND_COUNTERS:
            arrays[name] = np.asarray(self._deltas[name], dtype=np.int64)
        manifest = {
            "schema": SCHEMA,
            "content": dict(self._content, rounds=rounds),
            "context": dict(
                self._context,
                version=_repro_version(),
                source_digest=source_digest(),
                clocked=self.profiler.enabled,
                profile=self.profiler.report(),
            ),
        }
        return Trace(arrays=arrays, manifest=manifest)

    def save(self, path: str | Path) -> Path:
        return save_trace(self.to_trace(), path)


def save_trace(trace: Trace, path: str | Path) -> Path:
    """Write one trace as a compressed ``.npz`` (manifest embedded as JSON)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    manifest_json = json.dumps(trace.manifest, sort_keys=True, default=repr)
    with open(path, "wb") as handle:
        np.savez_compressed(
            handle,
            manifest=np.frombuffer(manifest_json.encode(), dtype=np.uint8),
            **trace.arrays,
        )
    return path


def load_trace(path: str | Path) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    with np.load(Path(path)) as data:
        names = set(data.files)
        if "manifest" not in names:
            raise ValueError(f"{path} is not a repro.obs trace (no manifest)")
        manifest = json.loads(bytes(data["manifest"]).decode())
        missing = [name for name in CONTENT_ARRAYS if name not in names]
        if missing:
            raise ValueError(f"{path} is missing trace arrays: {missing}")
        arrays = {name: data[name] for name in CONTENT_ARRAYS}
    return Trace(arrays=arrays, manifest=manifest)
