"""Locate the first divergence between two traces.

Cross-engine parity debugging used to be bisection: rerun with smaller
``max_rounds`` until the end-of-run ``RunMetrics`` split.  With per-round
traces the question "which round, which node?" is a direct columnar
comparison: :func:`diff_traces` walks the content arrays round-major and
reports the earliest diverging round, the field, and (for per-node
columns) the lowest diverging node uid.  Context — engine name, phase
timings, source digest — never participates, so a kernel trace diffs
clean against a legacy trace of the same seeded run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .trace import CONTENT_ARRAYS, Trace, unpack_node_bitmap

__all__ = ["Divergence", "TraceDiff", "diff_traces"]

#: Per-node columns, compared node-wise within the diverging round.
_NODE_ARRAYS = ("knowledge_counts", "coded_ranks", "down_nodes")


@dataclass(frozen=True)
class Divergence:
    """One earliest point of disagreement."""

    field: str
    round_index: int
    node: int | None
    a_value: object
    b_value: object

    def describe(self) -> str:
        where = f"round {self.round_index}"
        if self.node is not None:
            where += f", node {self.node}"
        return (
            f"first divergence: {self.field} at {where} "
            f"({self.a_value!r} != {self.b_value!r})"
        )


@dataclass(frozen=True)
class TraceDiff:
    """The full comparison verdict."""

    identical: bool
    #: Content-manifest keys whose values differ (n, k, seed, protocol, ...).
    manifest_mismatches: tuple[str, ...]
    #: Earliest divergences, one per differing field, sorted by round.
    divergences: tuple[Divergence, ...]
    #: (rounds_a, rounds_b) when the traces ran different round counts.
    length_mismatch: tuple[int, int] | None

    @property
    def first(self) -> Divergence | None:
        return self.divergences[0] if self.divergences else None

    def describe(self) -> str:
        if self.identical:
            return "identical"
        lines = []
        for key in self.manifest_mismatches:
            lines.append(f"content manifest differs: {key!r}")
        if self.first is not None:
            lines.append(self.first.describe())
        elif self.length_mismatch is not None:
            a_rounds, b_rounds = self.length_mismatch
            lines.append(
                "traces agree on the common prefix but ran different "
                f"lengths: {a_rounds} vs {b_rounds} rounds"
            )
        return "\n".join(lines)


def _node_divergence(name: str, a: np.ndarray, b: np.ndarray, r: int, n: int):
    """The lowest diverging node of one per-node array at round ``r``."""
    if name == "down_nodes":
        row_a = unpack_node_bitmap(a[r : r + 1], n)[0]
        row_b = unpack_node_bitmap(b[r : r + 1], n)[0]
    else:
        row_a, row_b = a[r], b[r]
    nodes = np.flatnonzero(row_a != row_b)
    node = int(nodes[0])
    return Divergence(
        field=name,
        round_index=r,
        node=node,
        a_value=row_a[node].item(),
        b_value=row_b[node].item(),
    )


def diff_traces(a: Trace, b: Trace) -> TraceDiff:
    """Compare two traces' content; see the module docstring."""
    mismatches = tuple(
        sorted(
            key
            for key in set(a.content) | set(b.content)
            if a.content.get(key) != b.content.get(key) and key != "rounds"
        )
    )
    rounds = min(a.rounds, b.rounds)
    divergences: list[Divergence] = []
    comparable = a.content.get("n") == b.content.get("n")
    if comparable:
        n = a.n
        for name in CONTENT_ARRAYS:
            col_a, col_b = a.arrays[name], b.arrays[name]
            if col_a.ndim == 1:
                differs = col_a[:rounds] != col_b[:rounds]
            else:
                differs = (col_a[:rounds] != col_b[:rounds]).any(axis=1)
            hit = np.flatnonzero(differs)
            if not hit.size:
                continue
            r = int(hit[0])
            if name in _NODE_ARRAYS:
                divergences.append(_node_divergence(name, col_a, col_b, r, n))
            else:
                divergences.append(
                    Divergence(
                        field=name,
                        round_index=r,
                        node=None,
                        a_value=col_a[r].item(),
                        b_value=col_b[r].item(),
                    )
                )
    divergences.sort(key=lambda d: (d.round_index, CONTENT_ARRAYS.index(d.field)))
    length_mismatch = (
        (a.rounds, b.rounds) if a.rounds != b.rounds else None
    )
    identical = not mismatches and not divergences and length_mismatch is None
    return TraceDiff(
        identical=identical,
        manifest_mismatches=mismatches,
        divergences=tuple(divergences),
        length_mismatch=length_mismatch,
    )
