"""The injectable wall-clock seam for phase profiling.

Simulation results must be a pure function of ``(config, seed)`` —
lint rule REP103 rejects wall clocks anywhere under ``src/``.  Phase
profiling still needs real elapsed time, so *all* timing flows through a
:class:`Clock` object the caller injects: :class:`SystemClock` is the
single sanctioned ``time.perf_counter`` call site in the source tree
(carrying the one justified ``repro: allow[REP103]``), and tests use
:class:`ManualClock`, whose time only moves when the test advances it.
Timings are *context*, never *content*: they live in the trace manifest's
context section and are excluded from trace-content identity, so the
cross-engine byte-identity contract never sees a clock reading.
"""

from __future__ import annotations

import time

__all__ = ["Clock", "ManualClock", "SystemClock"]


class Clock:
    """Monotonic-seconds supplier injected into :class:`PhaseProfiler`."""

    def now(self) -> float:
        """Current time in seconds (only differences are meaningful)."""
        raise NotImplementedError


class SystemClock(Clock):
    """Real elapsed time — the sanctioned REP103 exception.

    Every wall-clock read in ``src/`` must route through this class; a
    bare ``time.perf_counter()`` anywhere else still trips REP103 (see
    ``src/repro/lint/README.md`` and the fixture self-test).
    """

    def now(self) -> float:
        return time.perf_counter()  # repro: allow[REP103] the Clock seam's single sanctioned wall-clock read; timings are manifest context, never trace content


class ManualClock(Clock):
    """A deterministic clock tests drive by hand."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        """Move time forward by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError(f"clocks only move forward, got {seconds}")
        self._now += float(seconds)
