"""Phase profilers: named wall-clock spans around engine hot sections.

A :class:`PhaseProfiler` accumulates elapsed seconds per named phase
(``compose``, ``deliver``, ``faults``, ``insert``, ``decode``,
``materialise``) through context-manager spans.  Timing only happens when
a :class:`~repro.obs.clock.Clock` was injected; without one every span is
the same shared no-op context manager, so tracing-off runs pay a few
nanoseconds of dispatch per round and nothing else.

Spans may nest (``insert`` runs inside ``deliver``): each phase
accumulates its own wall time independently, so an outer phase's total
*includes* its inner phases.
"""

from __future__ import annotations

from contextlib import nullcontext

from .clock import Clock

__all__ = ["NULL_PROFILER", "PhaseProfiler"]

#: Shared reusable no-op span (one object, zero per-use allocation).
_NULL_SPAN = nullcontext()


class _Span:
    """One timed section; re-entered per use (not re-entrant while open)."""

    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "PhaseProfiler", name: str):
        self._profiler = profiler
        self._name = name
        self._start = 0.0

    def __enter__(self):
        self._start = self._profiler.clock.now()
        return self

    def __exit__(self, exc_type, exc, tb):
        self._profiler._record(
            self._name, self._profiler.clock.now() - self._start
        )
        return False


class PhaseProfiler:
    """Accumulates per-phase wall time behind the Clock seam.

    ``clock=None`` (the default) disables timing entirely: :meth:`span`
    hands back a shared no-op context manager and :meth:`report` returns
    an empty mapping.
    """

    def __init__(self, clock: Clock | None = None):
        self.clock = clock
        self._seconds: dict[str, float] = {}
        self._calls: dict[str, int] = {}
        self._spans: dict[str, _Span] = {}

    @property
    def enabled(self) -> bool:
        """Whether a clock was injected (timing actually happens)."""
        return self.clock is not None

    def span(self, name: str):
        """Context manager timing one ``with`` block under ``name``."""
        if self.clock is None:
            return _NULL_SPAN
        span = self._spans.get(name)
        if span is None:
            span = self._spans[name] = _Span(self, name)
        return span

    def _record(self, name: str, elapsed: float) -> None:
        self._seconds[name] = self._seconds.get(name, 0.0) + elapsed
        self._calls[name] = self._calls.get(name, 0) + 1

    def report(self) -> dict[str, dict[str, float]]:
        """Phase -> ``{"seconds", "calls"}``, insertion-ordered."""
        return {
            name: {"seconds": self._seconds[name], "calls": self._calls[name]}
            for name in self._seconds
        }


#: The profiler engines fall back to when no trace is attached: spans are
#: no-ops and nothing is ever recorded.
NULL_PROFILER = PhaseProfiler(clock=None)
