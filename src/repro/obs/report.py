"""Table-ready views of a trace: per-round summaries and phase profiles.

These functions return lists of plain dict rows so the CLI, examples and
benchmarks can all render them through
:func:`repro.simulation.experiments.format_table` (or dump them as JSON)
without re-deriving anything from the raw columns.
"""

from __future__ import annotations

import numpy as np

from .trace import ROUND_COUNTERS, Trace, unpack_node_bitmap

__all__ = ["describe_trace", "profile_rows", "summary_rows"]


def describe_trace(trace: Trace) -> str:
    """One-paragraph provenance header for CLI output."""
    content, context = trace.content, trace.context
    label = f" [{content['label']}]" if content.get("label") else ""
    return (
        f"{content['protocol']}{label}: n={content['n']} k={content['k']} "
        f"seed={content['seed']} rounds={trace.rounds} "
        f"faults={content['faults']}\n"
        f"engine={context.get('engine', '?')} "
        f"version={context.get('version', '?')} "
        f"source={context.get('source_digest', '?')} "
        f"clocked={context.get('clocked', False)}"
    )


def summary_rows(trace: Trace, *, every: int | None = None) -> list[dict]:
    """Per-round summary rows, sampled to roughly 20 rows by default.

    ``every=1`` lists every round.  The final round is always included —
    it carries the terminal knowledge/rank state.
    """
    rounds, n = trace.rounds, trace.n
    if rounds == 0:
        return []
    counts = trace.arrays["knowledge_counts"]
    ranks = trace.arrays["coded_ranks"]
    down = unpack_node_bitmap(trace.arrays["down_nodes"], n)
    down_counts = down.sum(axis=1)
    previous_down = np.concatenate(([np.zeros(n, dtype=bool)], down[:-1]))
    crashes = (down & ~previous_down).sum(axis=1)
    recoveries = (~down & previous_down).sum(axis=1)
    k = int(trace.content["k"])
    full = (counts >= k).sum(axis=1)
    if every is None:
        every = max(1, rounds // 20)
    picks = sorted(set(range(0, rounds, every)) | {rounds - 1})
    rows = []
    for r in picks:
        rows.append(
            {
                "round": r + 1,
                "min_known": int(counts[r].min()),
                "mean_known": round(float(counts[r].mean()), 1),
                "max_rank": int(ranks[r].max()),
                "full_nodes": int(full[r]),
                "broadcasts": int(trace.arrays["broadcasts"][r]),
                "deliveries": int(trace.arrays["deliveries"][r]),
                "useless": int(trace.arrays["useless_deliveries"][r]),
                "dropped": int(trace.arrays["dropped_deliveries"][r]),
                "duplicated": int(trace.arrays["duplicated_deliveries"][r]),
                "corrupted": int(trace.arrays["corrupted_deliveries"][r]),
                "down": int(down_counts[r]),
                "crash/rec": f"{int(crashes[r])}/{int(recoveries[r])}",
                "partition": bool(trace.arrays["partition_active"][r]),
            }
        )
    return rows


def totals_row(trace: Trace) -> dict:
    """Whole-run totals of the per-round counter columns."""
    return {
        name: int(trace.arrays[name].sum())
        for name in ROUND_COUNTERS
    }


def profile_rows(trace: Trace) -> list[dict]:
    """Phase-profiler rows from the manifest context (may be empty)."""
    profile = trace.context.get("profile") or {}
    total = sum(entry["seconds"] for entry in profile.values()) or 1.0
    rows = []
    for name, entry in profile.items():
        seconds = float(entry["seconds"])
        calls = int(entry["calls"])
        rows.append(
            {
                "phase": name,
                "seconds": round(seconds, 6),
                "calls": calls,
                "ms_per_call": round(1e3 * seconds / max(1, calls), 4),
                "share": f"{seconds / total:.0%}",
            }
        )
    return rows
