"""Round-trace observability: recorders, phase profilers, trace artifacts.

``run_dissemination(trace=TraceRecorder(...))`` collects columnar
per-round records (knowledge popcounts, GF(2) ranks, fault events,
counter deltas) whose *content* is byte-identical across the kernel /
mask / legacy engines; ``python -m repro.obs`` summarises, diffs and
profiles the saved ``.npz`` artifacts.  See :mod:`repro.obs.trace` for
the schema and :mod:`repro.obs.clock` for the sanctioned wall-clock seam.
"""

from .clock import Clock, ManualClock, SystemClock
from .diff import Divergence, TraceDiff, diff_traces
from .profiler import NULL_PROFILER, PhaseProfiler
from .provenance import source_digest, tree_digest
from .report import describe_trace, profile_rows, summary_rows, totals_row
from .trace import (
    ROUND_COUNTERS,
    Trace,
    TraceRecorder,
    load_trace,
    save_trace,
)

__all__ = [
    "Clock",
    "Divergence",
    "ManualClock",
    "NULL_PROFILER",
    "PhaseProfiler",
    "ROUND_COUNTERS",
    "SystemClock",
    "Trace",
    "TraceDiff",
    "TraceRecorder",
    "describe_trace",
    "diff_traces",
    "load_trace",
    "profile_rows",
    "save_trace",
    "source_digest",
    "summary_rows",
    "totals_row",
    "tree_digest",
]
