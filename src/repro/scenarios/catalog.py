"""The scenario registry and the in-repo catalog entries.

Every entry composes a raw :class:`~repro.network.dynamics.DynamicsProcess`
with the transformer that provides its model guarantee and bridges the
result through :class:`~repro.network.dynamics.ScheduleAdversary`.  All
catalog scenarios are adaptive-adversary-free and non-omniscient, so they
are eligible for every execution engine including ``engine="kernel"``.

Scenario builders take ``(n, seed)`` and derive their process parameters
from ``n`` (target degrees, radio range, churn counts), so one scenario
name means the same *qualitative* workload at every network size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import partial
from typing import Callable

from ..network.adversary import Adversary, TStableAdversary
from ..network.dynamics import (
    ChurnProcess,
    ConnectivityPatcher,
    DegreeBoundedRewiringProcess,
    EdgeMarkovProcess,
    RandomWaypointProcess,
    ScheduleAdversary,
    TIntervalEnforcer,
)
from ..network.faults import (
    BridgeLossStrategy,
    BudgetedLossStrategy,
    CollisionModel,
    FaultModel,
    FrontierLossStrategy,
    PartitionModel,
    QuorumModel,
    StragglerIsolationStrategy,
    crash_schedule_from_churn,
)

__all__ = [
    "SCENARIOS",
    "Scenario",
    "fault_model_for",
    "hostile_scenarios",
    "list_scenarios",
    "make_scenario",
    "register_scenario",
    "scenario_for",
]


@dataclass(frozen=True)
class Scenario:
    """One named dynamic-network workload.

    Attributes
    ----------
    name:
        Registry key (``scenario_for`` / ``make_scenario`` look it up).
    description:
        One line for catalogs and benchmark tables.
    build:
        ``(n, seed) -> Adversary``; must be a module-level callable (or a
        ``partial`` of one) so scenario factories pickle into sweep workers.
    process:
        The raw dynamics family ("edge-markov", "waypoint", "churn",
        "rewiring").
    guarantees:
        Human-readable model guarantees, e.g. ``("connected",)`` or
        ``("connected", "4-interval-connected")``.  Every catalog entry is
        at least per-round connected (the paper's standing assumption).
    kernel_ok:
        False only for scenarios that demand per-node message objects
        (omniscient adversaries) — those cannot run on the kernel engine.
    faults:
        The hostile axis: ``(n, seed) -> FaultModel``, or ``None`` for a
        benign entry.  Like ``build``, must be a module-level callable so
        scenario factories pickle into sweep workers; pass the result to
        ``run_dissemination(..., faults=...)``.
    """

    name: str
    description: str
    build: Callable[[int, int], Adversary]
    process: str
    guarantees: tuple[str, ...]
    kernel_ok: bool = True
    faults: Callable[[int, int], FaultModel] | None = None


SCENARIOS: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Add a scenario to the registry (rejecting duplicate names)."""
    if scenario.name in SCENARIOS:
        raise ValueError(f"scenario {scenario.name!r} is already registered")
    SCENARIOS[scenario.name] = scenario
    return scenario


def list_scenarios() -> list[str]:
    """All registered scenario names, sorted."""
    return sorted(SCENARIOS)


def make_scenario(name: str, n: int, seed: int = 0) -> Adversary:
    """Build a fresh adversary for a named scenario at network size ``n``."""
    try:
        scenario = SCENARIOS[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {list_scenarios()}"
        ) from exc
    return scenario.build(n, seed)


def scenario_for(name: str, n: int, seed: int = 0) -> Callable[[], Adversary]:
    """A picklable zero-argument adversary factory for a named scenario.

    The sweep-harness twin of ``adversary_for`` in ``benchmarks/common.py``:
    the returned ``partial`` references only module-level callables, so it
    ships into ``ProcessPoolExecutor`` workers, and every call builds an
    independent adversary (sweep repetitions never share process state).
    """
    if name not in SCENARIOS:
        raise ValueError(f"unknown scenario {name!r}; choose from {list_scenarios()}")
    return partial(make_scenario, name, n, seed)


def fault_model_for(name: str, n: int, seed: int = 0) -> FaultModel | None:
    """The named scenario's fault model at size ``n`` (None: benign entry).

    A :class:`~repro.network.faults.FaultModel` is itself frozen plain
    data, so the returned object pickles into sweep workers directly — no
    factory indirection needed on the caller's side.
    """
    try:
        scenario = SCENARIOS[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {list_scenarios()}"
        ) from exc
    if scenario.faults is None:
        return None
    return scenario.faults(n, seed)


def hostile_scenarios() -> list[str]:
    """Names of the catalog entries that carry a fault model, sorted."""
    return sorted(name for name, s in SCENARIOS.items() if s.faults is not None)


# ----------------------------------------------------------------------
# parameter derivations (qualitative workload invariant in n)
# ----------------------------------------------------------------------


def _edge_markov_process(n: int, seed: int, target_degree: float = 4.0) -> EdgeMarkovProcess:
    """Birth/death rates whose stationary density gives ~``target_degree``."""
    density = min(0.5, target_degree / max(1, n - 1))
    p_death = 0.25
    p_birth = p_death * density / (1.0 - density)
    return EdgeMarkovProcess(n, p_birth=p_birth, p_death=p_death, seed=seed)


def _waypoint_process(n: int, seed: int, target_degree: float = 8.0) -> RandomWaypointProcess:
    """Radio radius sized for ~``target_degree`` neighbours in the unit square."""
    radius = min(0.5, math.sqrt(target_degree / (math.pi * max(2, n - 1))))
    return RandomWaypointProcess(n, radius=radius, speed=0.05, seed=seed)


# ----------------------------------------------------------------------
# catalog builders (module-level: scenario factories must pickle)
# ----------------------------------------------------------------------


def _build_edge_markov(n: int, seed: int) -> Adversary:
    return ScheduleAdversary(ConnectivityPatcher(_edge_markov_process(n, seed)))


def _build_edge_markov_t4(n: int, seed: int) -> Adversary:
    return ScheduleAdversary(TIntervalEnforcer(_edge_markov_process(n, seed), 4))


def _build_edge_markov_stable4(n: int, seed: int) -> Adversary:
    return TStableAdversary(
        ScheduleAdversary(ConnectivityPatcher(_edge_markov_process(n, seed))), 4
    )


def _build_waypoint_radio(n: int, seed: int) -> Adversary:
    return ScheduleAdversary(ConnectivityPatcher(_waypoint_process(n, seed)))


def _build_waypoint_churn_t4(n: int, seed: int) -> Adversary:
    churned = ChurnProcess(
        _waypoint_process(n, seed), max_churn=2, min_active=max(2, n // 4), seed=seed + 101
    )
    return ScheduleAdversary(TIntervalEnforcer(churned, 4))


def _build_churn_markov(n: int, seed: int) -> Adversary:
    churned = ChurnProcess(
        _edge_markov_process(n, seed), max_churn=2, min_active=max(2, n // 4), seed=seed + 101
    )
    return ScheduleAdversary(ConnectivityPatcher(churned))


def _build_rewiring_degree4(n: int, seed: int) -> Adversary:
    process = DegreeBoundedRewiringProcess(
        n, degree_bound=4, rewires_per_round=max(1, n // 16), seed=seed
    )
    return ScheduleAdversary(ConnectivityPatcher(process))


def _build_rewiring_t8(n: int, seed: int) -> Adversary:
    process = DegreeBoundedRewiringProcess(
        n, degree_bound=4, rewires_per_round=max(1, n // 32), seed=seed
    )
    return ScheduleAdversary(TIntervalEnforcer(process, 8))


# ----------------------------------------------------------------------
# fault-model builders (module-level: like `build`, they must pickle)
# ----------------------------------------------------------------------
#
# Byzantine entries place the compromised senders at the two highest uids:
# `standard_instance(n, k, ...)` with k <= n - 2 keeps them payload-free, so
# survivor completion stays reachable (a Byzantine node holding the *only*
# copy of a token can starve the network by construction — that regime is
# still measurable through surviving_completion_rate < 1).


def _crash_schedule(n: int, seed: int, exclude: tuple[int, ...] = ()) -> tuple:
    """A permanent-crash schedule replayed from lifeline-free churn."""
    churn = ChurnProcess(
        _edge_markov_process(n, seed + 7),
        max_churn=1,
        min_active=max(2, (3 * n) // 4),
        seed=seed + 211,
        record_activity=True,
        lifeline=False,
    )
    schedule = crash_schedule_from_churn(churn, rounds=2 * n)
    return tuple((uid, r) for uid, r in schedule if uid not in exclude)


def _loss20_faults(n: int, seed: int) -> FaultModel:
    return FaultModel(loss=0.2)


def _loss_dup_faults(n: int, seed: int) -> FaultModel:
    return FaultModel(loss=0.15, duplication=0.15)


def _crash_churn_faults(n: int, seed: int) -> FaultModel:
    return FaultModel(crashes=_crash_schedule(n, seed))


def _byzantine_malformed_faults(n: int, seed: int) -> FaultModel:
    return FaultModel(byzantine=(n - 2, n - 1), byzantine_mode="malformed")


def _byzantine_replay_faults(n: int, seed: int) -> FaultModel:
    return FaultModel(byzantine=(n - 2, n - 1), byzantine_mode="replay")


def _hostile_mix_faults(n: int, seed: int) -> FaultModel:
    return FaultModel(
        loss=0.1,
        duplication=0.05,
        crashes=_crash_schedule(n, seed, exclude=(n - 1,)),
        byzantine=(n - 1,),
        byzantine_mode="malformed",
    )


def _recovery_schedule(n: int, seed: int, exclude: tuple[int, ...] = ()) -> tuple:
    """A crash–recovery interval schedule replayed from recorded churn.

    Unlike :func:`_crash_schedule` the churn keeps its lifeline semantics —
    departed nodes can toggle back up — and the replay emits
    ``(uid, down, up)`` intervals: nodes rejoin with stale state mid-run.
    Runs still down at the window's end stay permanent ``(uid, down)``
    entries.
    """
    churn = ChurnProcess(
        _edge_markov_process(n, seed + 7),
        max_churn=2,
        min_active=max(2, (3 * n) // 4),
        seed=seed + 211,
        record_activity=True,
    )
    schedule = crash_schedule_from_churn(churn, rounds=2 * n, recoveries=True)
    return tuple(entry for entry in schedule if entry[0] not in exclude)


def _bridge_loss_faults(n: int, seed: int) -> FaultModel:
    return FaultModel(strategy=BridgeLossStrategy(probability=0.5))


def _crash_recover_faults(n: int, seed: int) -> FaultModel:
    return FaultModel(crashes=_recovery_schedule(n, seed))


def _partition_heal_faults(n: int, seed: int) -> FaultModel:
    # Two healing partition windows sized to the network: an early split
    # while dissemination ramps up and a later one after partial progress.
    return FaultModel(
        partitions=PartitionModel(
            windows=((n // 2, n), (2 * n, 2 * n + max(1, n // 2))), groups=2
        )
    )


def _budgeted_mix_faults(n: int, seed: int) -> FaultModel:
    # Background stochastic loss, churn-replayed crash–recovery intervals,
    # and a run-wide budget of targeted spanning-link erasures.
    return FaultModel(
        loss=0.05,
        crashes=_recovery_schedule(n, seed, exclude=(0,)),
        strategy=BudgetedLossStrategy(budget=max(8, n // 2), per_round=2),
    )


def _collision_capture_faults(n: int, seed: int) -> FaultModel:
    # Every round is a collision round; capture keeps the lowest-uid sender
    # per crowded receiver (the classic radio capture effect).
    return FaultModel(collisions=CollisionModel(probability=1.0, capture=True))


def _quorum_fake3_faults(n: int, seed: int) -> FaultModel:
    # Three fake quorum members at the highest uids: `standard_instance`
    # with k <= n - 3 keeps them payload-free, so the honest quorum can
    # still complete; n >= 7 satisfies the n >= 2f+1 quorum bound.
    return FaultModel(quorum=QuorumModel(fake=(n - 3, n - 2, n - 1)))


def _frontier_mix_faults(n: int, seed: int) -> FaultModel:
    # Background loss plus a state-aware adversary erasing half of the
    # knowledge-frontier edges (informed -> less-informed) every round.
    return FaultModel(loss=0.05, strategy=FrontierLossStrategy(probability=0.5))


def _straggler_capture_faults(n: int, seed: int) -> FaultModel:
    # A state-aware isolator severing the least-informed node's edges,
    # stacked on capture-mode radio collisions.
    return FaultModel(
        collisions=CollisionModel(probability=0.5, capture=True),
        strategy=StragglerIsolationStrategy(probability=0.75),
    )


register_scenario(
    Scenario(
        name="edge_markov",
        description="evolving graph: per-edge birth/death chains at ~degree-4 density",
        build=_build_edge_markov,
        process="edge-markov",
        guarantees=("connected",),
    )
)
register_scenario(
    Scenario(
        name="edge_markov_t4",
        description="edge-Markov evolution repaired to 4-interval connectivity",
        build=_build_edge_markov_t4,
        process="edge-markov",
        guarantees=("connected", "4-interval-connected"),
    )
)
register_scenario(
    Scenario(
        name="edge_markov_stable4",
        description="edge-Markov evolution frozen into T=4 stability blocks",
        build=_build_edge_markov_stable4,
        process="edge-markov",
        guarantees=("connected", "4-stable"),
    )
)
register_scenario(
    Scenario(
        name="waypoint_radio",
        description="random-waypoint mobility, unit-disk radio at ~degree-8 range",
        build=_build_waypoint_radio,
        process="waypoint",
        guarantees=("connected",),
    )
)
register_scenario(
    Scenario(
        name="waypoint_churn_t4",
        description=(
            "mobile radio network with <=2 joins/leaves per round (down nodes keep "
            "one lifeline edge), 4-interval repaired"
        ),
        build=_build_waypoint_churn_t4,
        process="churn",
        guarantees=("connected", "4-interval-connected", "churn<=2/round raw"),
    )
)
register_scenario(
    Scenario(
        name="churn_markov",
        description=(
            "edge-Markov evolution under <=2 joins/leaves per round (down nodes keep "
            "one lifeline edge)"
        ),
        build=_build_churn_markov,
        process="churn",
        guarantees=("connected", "churn<=2/round raw"),
    )
)
register_scenario(
    Scenario(
        name="rewiring_degree4",
        description="degree-<=4 sparse graph, adversarially rewired every round",
        build=_build_rewiring_degree4,
        process="rewiring",
        guarantees=("connected", "degree<=4 raw"),
    )
)
register_scenario(
    Scenario(
        name="rewiring_t8",
        description="slow degree-bounded rewiring repaired to 8-interval connectivity",
        build=_build_rewiring_t8,
        process="rewiring",
        guarantees=("connected", "8-interval-connected", "degree<=4 raw"),
    )
)

# ----------------------------------------------------------------------
# hostile entries: benign topology dynamics + an orthogonal fault model.
# The topology keeps its connectivity repairs (the paper's model needs
# every round graph connected over all n nodes); crashes, loss and
# Byzantine substitution live in the delivery layer via `faults`.
# ----------------------------------------------------------------------

register_scenario(
    Scenario(
        name="lossy_edge_markov",
        description="edge-Markov evolution with 20% per-edge delivery erasure",
        build=_build_edge_markov,
        process="edge-markov",
        guarantees=("connected",),
        faults=_loss20_faults,
    )
)
register_scenario(
    Scenario(
        name="lossy_dup_waypoint",
        description="waypoint radio with 15% loss and 15% duplication per edge",
        build=_build_waypoint_radio,
        process="waypoint",
        guarantees=("connected",),
        faults=_loss_dup_faults,
    )
)
register_scenario(
    Scenario(
        name="crash_churn_markov",
        description=(
            "edge-Markov evolution where churned-out nodes truly crash "
            "(lifeline-free schedule, >=3n/4 survivors)"
        ),
        build=_build_edge_markov,
        process="churn",
        guarantees=("connected", "crashes permanent"),
        faults=_crash_churn_faults,
    )
)
register_scenario(
    Scenario(
        name="byzantine_edge_markov",
        description=(
            "edge-Markov evolution with 2 Byzantine coded senders injecting "
            "out-of-span (malformed) vectors"
        ),
        build=_build_edge_markov,
        process="edge-markov",
        guarantees=("connected",),
        faults=_byzantine_malformed_faults,
    )
)
register_scenario(
    Scenario(
        name="byzantine_replay_t4",
        description=(
            "4-interval-repaired edge-Markov evolution with 2 Byzantine senders "
            "replaying a fixed in-span vector"
        ),
        build=_build_edge_markov_t4,
        process="edge-markov",
        guarantees=("connected", "4-interval-connected"),
        faults=_byzantine_replay_faults,
    )
)
register_scenario(
    Scenario(
        name="hostile_mix",
        description=(
            "waypoint radio under 10% loss + 5% duplication + permanent crashes "
            "+ 1 malformed Byzantine sender"
        ),
        build=_build_waypoint_radio,
        process="waypoint",
        guarantees=("connected", "crashes permanent"),
        faults=_hostile_mix_faults,
    )
)
register_scenario(
    Scenario(
        name="bridge_loss_markov",
        description=(
            "edge-Markov evolution where an adaptive adversary erases each "
            "live cut edge with probability 0.5 every round"
        ),
        build=_build_edge_markov,
        process="edge-markov",
        guarantees=("connected", "adaptive bridge loss"),
        faults=_bridge_loss_faults,
    )
)
register_scenario(
    Scenario(
        name="crash_recover_churn",
        description=(
            "edge-Markov evolution with churn-replayed crash-recovery "
            "intervals: nodes rejoin mid-run with stale state"
        ),
        build=_build_edge_markov,
        process="churn",
        guarantees=("connected", "crashes recover"),
        faults=_crash_recover_faults,
    )
)
register_scenario(
    Scenario(
        name="partition_heal_waypoint",
        description=(
            "waypoint radio split into 2 uid-parity groups over two healing "
            "partition windows"
        ),
        build=_build_waypoint_radio,
        process="waypoint",
        guarantees=("connected", "partitions heal"),
        faults=_partition_heal_faults,
    )
)
register_scenario(
    Scenario(
        name="budgeted_adversary_mix",
        description=(
            "edge-Markov evolution under 5% loss + crash-recovery intervals "
            "+ a budgeted adversary erasing 2 spanning links per round"
        ),
        build=_build_edge_markov,
        process="edge-markov",
        guarantees=("connected", "crashes recover", "adaptive budgeted loss"),
        faults=_budgeted_mix_faults,
    )
)
register_scenario(
    Scenario(
        name="collision_waypoint",
        description=(
            "waypoint radio where every round collides: receivers hearing "
            ">=2 senders capture only the lowest uid"
        ),
        build=_build_waypoint_radio,
        process="waypoint",
        guarantees=("connected", "radio collisions"),
        faults=_collision_capture_faults,
    )
)
register_scenario(
    Scenario(
        name="quorum_fake3_markov",
        description=(
            "edge-Markov evolution with 3 fake quorum members (n >= 2f+1): "
            "completion and survivor metrics run over the honest quorum only"
        ),
        build=_build_edge_markov,
        process="edge-markov",
        guarantees=("connected", "honest quorum n>=2f+1"),
        faults=_quorum_fake3_faults,
    )
)
register_scenario(
    Scenario(
        name="frontier_adaptive_mix",
        description=(
            "edge-Markov evolution under 5% loss + a state-aware adversary "
            "erasing half the knowledge-frontier edges each round"
        ),
        build=_build_edge_markov,
        process="edge-markov",
        guarantees=("connected", "state-aware frontier loss"),
        faults=_frontier_mix_faults,
    )
)
register_scenario(
    Scenario(
        name="straggler_capture_radio",
        description=(
            "waypoint radio with capture-mode collision rounds (p=0.5) + a "
            "state-aware isolator severing the least-informed node's edges"
        ),
        build=_build_waypoint_radio,
        process="waypoint",
        guarantees=("connected", "radio collisions", "state-aware isolation"),
        faults=_straggler_capture_faults,
    )
)
