"""Declarative scenario catalog for dynamic-network experiments.

A *scenario* names a complete adversary recipe — a raw dynamics process
(:mod:`repro.network.dynamics`) composed with the transformers that make it
a model-compliant adversary — so sweeps, benchmarks and examples can select
dynamic-network workloads by name, the way ``factory_for`` /
``adversary_for`` select protocols and hand-written adversaries in
``benchmarks/common.py``::

    from repro.scenarios import make_scenario, scenario_for

    adversary = make_scenario("edge_markov_t4", n=256, seed=7)
    factory = scenario_for("edge_markov_t4", n=256, seed=7)  # picklable

:func:`scenario_for` returns a zero-argument *factory* built from
module-level callables, so it pickles into sweep worker processes.  The
catalog lives in :mod:`repro.scenarios.catalog`; register custom scenarios
with :func:`register_scenario`.
"""

from .catalog import (
    SCENARIOS,
    Scenario,
    fault_model_for,
    hostile_scenarios,
    list_scenarios,
    make_scenario,
    register_scenario,
    scenario_for,
)

__all__ = [
    "SCENARIOS",
    "Scenario",
    "fault_model_for",
    "hostile_scenarios",
    "list_scenarios",
    "make_scenario",
    "register_scenario",
    "scenario_for",
]
