"""Tokens, placements and message envelopes with bit-size accounting."""

from .message import (
    CodedMessage,
    ControlMessage,
    Message,
    MessageBudget,
    MessageSizeExceeded,
    TokenForwardMessage,
    uid_bits,
)
from .token import (
    Token,
    TokenId,
    TokenPlacement,
    make_tokens,
    one_token_per_node,
    place_tokens,
)

__all__ = [
    "CodedMessage",
    "ControlMessage",
    "Message",
    "MessageBudget",
    "MessageSizeExceeded",
    "Token",
    "TokenForwardMessage",
    "TokenId",
    "TokenPlacement",
    "make_tokens",
    "one_token_per_node",
    "place_tokens",
    "uid_bits",
]
