"""Message envelopes with explicit bit-size accounting.

Accounting for message size is the heart of the paper's contribution
(Sections 2.1 and 3): the coefficient header of network coding is *not*
free, and whether coding wins depends on how header, payload and control
information fit into the ``O(b)``-bit per-round message budget.

Every message a protocol sends is therefore wrapped in an envelope that
computes its size in bits from its actual content.  The simulator enforces
the budget: a protocol that tries to send more than ``slack * b`` bits in
one round raises :class:`MessageSizeExceeded` (the slack constant reflects
the ``O(b)`` in the model statement and defaults to a small constant).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from .token import Token, TokenId

__all__ = [
    "MessageSizeExceeded",
    "MessageBudget",
    "Message",
    "TokenForwardMessage",
    "CodedMessage",
    "ControlMessage",
    "uid_bits",
]


class MessageSizeExceeded(RuntimeError):
    """Raised when a protocol message exceeds the per-round bit budget."""


def uid_bits(n: int) -> int:
    """Bits needed for a node UID in an ``n``-node network (``O(log n)``)."""
    return max(1, math.ceil(math.log2(max(2, n))))


@dataclass(frozen=True)
class MessageBudget:
    """The per-round message budget ``O(b)``.

    Attributes
    ----------
    b:
        The nominal message size parameter (must satisfy ``b >= log n``).
    slack:
        Constant factor capturing the ``O(·)`` — messages up to
        ``slack * b`` bits are legal.
    """

    b: int
    slack: float = 8.0

    def __post_init__(self) -> None:
        if self.b < 1:
            raise ValueError(f"message size b must be >= 1, got {self.b}")
        if self.slack < 1:
            raise ValueError(f"slack must be >= 1, got {self.slack}")

    @property
    def limit_bits(self) -> int:
        """The hard per-message bit limit."""
        return int(math.floor(self.slack * self.b))

    def check(self, message: "Message") -> None:
        """Raise :class:`MessageSizeExceeded` if the message is over budget."""
        size = message.size_bits
        if size > self.limit_bits:
            raise MessageSizeExceeded(
                f"{type(message).__name__} is {size} bits, exceeding the "
                f"budget of {self.limit_bits} bits (b={self.b}, slack={self.slack})"
            )

    def validate_parameters(self, n: int) -> None:
        """Check the model requirement ``b >= log n``."""
        if self.b < uid_bits(n):
            raise ValueError(
                f"message size b={self.b} violates the model requirement "
                f"b >= log n = {uid_bits(n)} for n={n}"
            )


@dataclass(frozen=True)
class Message:
    """Base class for all protocol messages.

    Subclasses must provide :attr:`size_bits`.  ``sender`` is filled in by
    the simulator for bookkeeping; the *receiving protocol logic* must not
    use it in any way that violates anonymity assumptions beyond what the
    paper allows (neighbours' messages are received without pre-knowledge of
    who the neighbours would be; sender identity inside a received message
    is legitimate information a node may include about itself).
    """

    sender: int

    @property
    def size_bits(self) -> int:
        """Size of the message in bits."""
        return 0


@dataclass(frozen=True)
class TokenForwardMessage(Message):
    """A token-forwarding message: one or more (id, payload) token copies."""

    tokens: tuple[Token, ...] = ()

    @property
    def size_bits(self) -> int:
        # Computed once per message: the runner reads the size at least twice
        # per broadcast (budget check + accounting) every round.
        cached = self.__dict__.get("_size_bits")
        if cached is None:
            cached = sum(t.token_id.bits + t.size_bits for t in self.tokens)
            object.__setattr__(self, "_size_bits", cached)
        return cached


class CodedMessage(Message):
    """A random-linear-network-coding message.

    Two equivalent representations are supported:

    * **Tuple form** (any field): explicit ``coefficients`` and ``payload``
      tuples of ``F_q`` symbols.
    * **Packed form** (GF(2) only): a single integer bit ``mask`` holding the
      augmented vector ``[coefficients | payload]`` (bit ``i`` is coordinate
      ``i``), together with the split point ``k`` and the payload length
      ``payload_symbols``.  This is the mask-native wire format the coded hot
      path uses so a vector is never expanded into per-symbol tuples between
      ``compose`` and ``deliver``.

    The ``coefficients`` / ``payload`` accessors work for both forms (for a
    packed message they materialise tuples lazily and cache them), so
    consumers that only inspect dimensions should prefer the cheap
    :attr:`num_coefficients` / :attr:`num_payload_symbols`.

    Attributes
    ----------
    coefficients:
        The coefficient header: one ``F_q`` symbol per coded dimension
        (``k`` of them), costing ``k * ceil(lg q)`` bits.
    payload:
        The coded payload symbols (``ceil(d / lg q)`` of them).
    field_order:
        The field size ``q``.
    generation:
        Identifier of the coding generation / epoch this message belongs to
        (e.g. which block of gathered tokens is being broadcast).  Costs
        ``O(log n)`` bits.
    dimension_ids:
        Optional explicit identifiers of the coded dimensions when indices
        are not globally agreed (costed explicitly when present).
    mask:
        Packed GF(2) augmented vector, or None in tuple form.
    """

    def __init__(
        self,
        sender: int,
        coefficients: tuple[int, ...] = (),
        payload: tuple[int, ...] = (),
        field_order: int = 2,
        generation: int = 0,
        dimension_ids: tuple[TokenId, ...] | None = None,
        *,
        mask: int | None = None,
        k: int | None = None,
        payload_symbols: int | None = None,
    ):
        object.__setattr__(self, "sender", sender)
        object.__setattr__(self, "field_order", int(field_order))
        object.__setattr__(self, "generation", int(generation))
        object.__setattr__(self, "dimension_ids", dimension_ids)
        if mask is not None:
            if field_order != 2:
                raise ValueError("packed coded messages require GF(2)")
            if k is None or payload_symbols is None:
                raise ValueError("packed form needs mask, k and payload_symbols")
            if coefficients or payload:
                raise ValueError("give either (coefficients, payload) or a mask, not both")
            mask = int(mask)
            if mask < 0 or mask.bit_length() > k + payload_symbols:
                raise ValueError(
                    f"mask of {mask.bit_length()} bits does not fit k + d' = "
                    f"{k + payload_symbols}"
                )
            object.__setattr__(self, "mask", mask)
            object.__setattr__(self, "k", int(k))
            object.__setattr__(self, "payload_symbols", int(payload_symbols))
            object.__setattr__(self, "_coefficients", None)
            object.__setattr__(self, "_payload", None)
        else:
            if k is not None or payload_symbols is not None:
                raise ValueError("k / payload_symbols are only valid with a mask")
            object.__setattr__(self, "mask", None)
            object.__setattr__(self, "k", len(coefficients))
            object.__setattr__(self, "payload_symbols", len(payload))
            object.__setattr__(self, "_coefficients", tuple(coefficients))
            object.__setattr__(self, "_payload", tuple(payload))

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_mask(
        cls,
        sender: int,
        mask: int,
        k: int,
        payload_symbols: int,
        generation: int = 0,
        dimension_ids: tuple[TokenId, ...] | None = None,
    ) -> "CodedMessage":
        """Build a packed GF(2) message from an augmented-vector bit mask."""
        return cls(
            sender=sender,
            generation=generation,
            dimension_ids=dimension_ids,
            mask=mask,
            k=k,
            payload_symbols=payload_symbols,
        )

    # ------------------------------------------------------------------
    # representation accessors
    # ------------------------------------------------------------------
    @property
    def is_packed(self) -> bool:
        """True when this message carries the packed GF(2) wire format."""
        return self.mask is not None

    @property
    def num_coefficients(self) -> int:
        """Number of coded dimensions (cheap for both forms)."""
        return self.k

    @property
    def num_payload_symbols(self) -> int:
        """Number of payload symbols (cheap for both forms)."""
        return self.payload_symbols

    @property
    def coefficients(self) -> tuple[int, ...]:
        """The coefficient symbols (lazily unpacked for packed messages)."""
        cached = self._coefficients
        if cached is None:
            mask = self.mask
            cached = tuple((mask >> i) & 1 for i in range(self.k))
            object.__setattr__(self, "_coefficients", cached)
        return cached

    @property
    def payload(self) -> tuple[int, ...]:
        """The payload symbols (lazily unpacked for packed messages)."""
        cached = self._payload
        if cached is None:
            shifted = self.mask >> self.k
            cached = tuple((shifted >> i) & 1 for i in range(self.payload_symbols))
            object.__setattr__(self, "_payload", cached)
        return cached

    def coefficient_mask(self) -> int:
        """The coefficient block as a bit mask (GF(2) messages only)."""
        if self.mask is not None:
            return self.mask & ((1 << self.k) - 1)
        if self.field_order != 2:
            raise ValueError("coefficient_mask is only defined over GF(2)")
        mask = 0
        for i, value in enumerate(self._coefficients):
            if int(value) & 1:
                mask |= 1 << i
        return mask

    def payload_mask(self) -> int:
        """The payload block as a bit mask (GF(2) messages only)."""
        if self.mask is not None:
            return self.mask >> self.k
        if self.field_order != 2:
            raise ValueError("payload_mask is only defined over GF(2)")
        mask = 0
        for i, value in enumerate(self._payload):
            if int(value) & 1:
                mask |= 1 << i
        return mask

    # ------------------------------------------------------------------
    # size accounting (identical for both forms)
    # ------------------------------------------------------------------
    @property
    def symbol_bits(self) -> int:
        """Bits per ``F_q`` symbol."""
        return max(1, math.ceil(math.log2(self.field_order)))

    @property
    def header_bits(self) -> int:
        """Cost of the coefficient header (the paper's coding overhead)."""
        bits = self.num_coefficients * self.symbol_bits
        if self.dimension_ids is not None:
            bits += sum(tid.bits for tid in self.dimension_ids)
        return bits

    @property
    def payload_bits(self) -> int:
        """Cost of the coded payload."""
        return self.num_payload_symbols * self.symbol_bits

    @property
    def size_bits(self) -> int:
        cached = self.__dict__.get("_size_bits")
        if cached is None:
            generation_bits = max(1, int(self.generation).bit_length())
            cached = self.header_bits + self.payload_bits + generation_bits
            object.__setattr__(self, "_size_bits", cached)
        return cached

    # ------------------------------------------------------------------
    # value semantics (a packed message equals its tuple-form twin)
    # ------------------------------------------------------------------
    def _identity(self) -> tuple:
        return (
            self.sender,
            self.field_order,
            self.generation,
            self.dimension_ids,
            self.coefficients,
            self.payload,
        )

    def __eq__(self, other: object) -> bool:
        # Exact-class comparison (matching the previous dataclass semantics):
        # a FreeHeaderCodedMessage is never equal to a plain CodedMessage,
        # but packed and tuple forms of the same message are equal.
        if other.__class__ is not self.__class__:
            return NotImplemented
        return self._identity() == other._identity()

    def __hash__(self) -> int:
        return hash(self._identity())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_packed:
            body = f"mask={self.mask:#x}, k={self.k}, payload_symbols={self.payload_symbols}"
        else:
            body = f"coefficients={self._coefficients!r}, payload={self._payload!r}"
        return (
            f"{type(self).__name__}(sender={self.sender}, {body}, "
            f"field_order={self.field_order}, generation={self.generation})"
        )


@dataclass(frozen=True)
class ControlMessage(Message):
    """A small control-plane message (floods of ids, priorities, counters...).

    ``fields`` maps a short field name to either an integer (costed at its
    bit length, minimum 1), a :class:`TokenId` (costed at its id size), or a
    sequence of either (costed as the sum).  Field names are part of the
    protocol's finite alphabet and are costed at a constant 4 bits each.
    """

    fields: Mapping[str, object] = field(default_factory=dict)

    @staticmethod
    def _value_bits(value: object) -> int:
        if isinstance(value, TokenId):
            return value.bits
        if isinstance(value, Token):
            return value.token_id.bits + value.size_bits
        if isinstance(value, bool):
            return 1
        if isinstance(value, int):
            return max(1, int(value).bit_length())
        if isinstance(value, (tuple, list)):
            return sum(ControlMessage._value_bits(v) for v in value)
        raise TypeError(f"cannot account bits for field value of type {type(value)!r}")

    @property
    def size_bits(self) -> int:
        cached = self.__dict__.get("_size_bits")
        if cached is None:
            cached = sum(
                4 + self._value_bits(value) for value in self.fields.values()
            )  # 4 bits per field tag
            object.__setattr__(self, "_size_bits", cached)
        return cached
