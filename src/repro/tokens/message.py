"""Message envelopes with explicit bit-size accounting.

Accounting for message size is the heart of the paper's contribution
(Sections 2.1 and 3): the coefficient header of network coding is *not*
free, and whether coding wins depends on how header, payload and control
information fit into the ``O(b)``-bit per-round message budget.

Every message a protocol sends is therefore wrapped in an envelope that
computes its size in bits from its actual content.  The simulator enforces
the budget: a protocol that tries to send more than ``slack * b`` bits in
one round raises :class:`MessageSizeExceeded` (the slack constant reflects
the ``O(b)`` in the model statement and defaults to a small constant).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from .token import Token, TokenId

__all__ = [
    "MessageSizeExceeded",
    "MessageBudget",
    "Message",
    "TokenForwardMessage",
    "CodedMessage",
    "ControlMessage",
    "uid_bits",
]


class MessageSizeExceeded(RuntimeError):
    """Raised when a protocol message exceeds the per-round bit budget."""


def uid_bits(n: int) -> int:
    """Bits needed for a node UID in an ``n``-node network (``O(log n)``)."""
    return max(1, math.ceil(math.log2(max(2, n))))


@dataclass(frozen=True)
class MessageBudget:
    """The per-round message budget ``O(b)``.

    Attributes
    ----------
    b:
        The nominal message size parameter (must satisfy ``b >= log n``).
    slack:
        Constant factor capturing the ``O(·)`` — messages up to
        ``slack * b`` bits are legal.
    """

    b: int
    slack: float = 8.0

    def __post_init__(self) -> None:
        if self.b < 1:
            raise ValueError(f"message size b must be >= 1, got {self.b}")
        if self.slack < 1:
            raise ValueError(f"slack must be >= 1, got {self.slack}")

    @property
    def limit_bits(self) -> int:
        """The hard per-message bit limit."""
        return int(math.floor(self.slack * self.b))

    def check(self, message: "Message") -> None:
        """Raise :class:`MessageSizeExceeded` if the message is over budget."""
        size = message.size_bits
        if size > self.limit_bits:
            raise MessageSizeExceeded(
                f"{type(message).__name__} is {size} bits, exceeding the "
                f"budget of {self.limit_bits} bits (b={self.b}, slack={self.slack})"
            )

    def validate_parameters(self, n: int) -> None:
        """Check the model requirement ``b >= log n``."""
        if self.b < uid_bits(n):
            raise ValueError(
                f"message size b={self.b} violates the model requirement "
                f"b >= log n = {uid_bits(n)} for n={n}"
            )


@dataclass(frozen=True)
class Message:
    """Base class for all protocol messages.

    Subclasses must provide :attr:`size_bits`.  ``sender`` is filled in by
    the simulator for bookkeeping; the *receiving protocol logic* must not
    use it in any way that violates anonymity assumptions beyond what the
    paper allows (neighbours' messages are received without pre-knowledge of
    who the neighbours would be; sender identity inside a received message
    is legitimate information a node may include about itself).
    """

    sender: int

    @property
    def size_bits(self) -> int:
        """Size of the message in bits."""
        return 0


@dataclass(frozen=True)
class TokenForwardMessage(Message):
    """A token-forwarding message: one or more (id, payload) token copies."""

    tokens: tuple[Token, ...] = ()

    @property
    def size_bits(self) -> int:
        total = 0
        for token in self.tokens:
            total += token.token_id.bits + token.size_bits
        return total


@dataclass(frozen=True)
class CodedMessage(Message):
    """A random-linear-network-coding message.

    Attributes
    ----------
    coefficients:
        The coefficient header: one ``F_q`` symbol per coded dimension
        (``k`` of them), costing ``k * ceil(lg q)`` bits.
    payload:
        The coded payload symbols (``ceil(d / lg q)`` of them).
    field_order:
        The field size ``q``.
    generation:
        Identifier of the coding generation / epoch this message belongs to
        (e.g. which block of gathered tokens is being broadcast).  Costs
        ``O(log n)`` bits.
    dimension_ids:
        Optional explicit identifiers of the coded dimensions when indices
        are not globally agreed (costed explicitly when present).
    """

    coefficients: tuple[int, ...] = ()
    payload: tuple[int, ...] = ()
    field_order: int = 2
    generation: int = 0
    dimension_ids: tuple[TokenId, ...] | None = None

    @property
    def symbol_bits(self) -> int:
        """Bits per ``F_q`` symbol."""
        return max(1, math.ceil(math.log2(self.field_order)))

    @property
    def header_bits(self) -> int:
        """Cost of the coefficient header (the paper's coding overhead)."""
        bits = len(self.coefficients) * self.symbol_bits
        if self.dimension_ids is not None:
            bits += sum(tid.bits for tid in self.dimension_ids)
        return bits

    @property
    def payload_bits(self) -> int:
        """Cost of the coded payload."""
        return len(self.payload) * self.symbol_bits

    @property
    def size_bits(self) -> int:
        generation_bits = max(1, int(self.generation).bit_length())
        return self.header_bits + self.payload_bits + generation_bits


@dataclass(frozen=True)
class ControlMessage(Message):
    """A small control-plane message (floods of ids, priorities, counters...).

    ``fields`` maps a short field name to either an integer (costed at its
    bit length, minimum 1), a :class:`TokenId` (costed at its id size), or a
    sequence of either (costed as the sum).  Field names are part of the
    protocol's finite alphabet and are costed at a constant 4 bits each.
    """

    fields: Mapping[str, object] = field(default_factory=dict)

    @staticmethod
    def _value_bits(value: object) -> int:
        if isinstance(value, TokenId):
            return value.bits
        if isinstance(value, Token):
            return value.token_id.bits + value.size_bits
        if isinstance(value, bool):
            return 1
        if isinstance(value, int):
            return max(1, int(value).bit_length())
        if isinstance(value, (tuple, list)):
            return sum(ControlMessage._value_bits(v) for v in value)
        raise TypeError(f"cannot account bits for field value of type {type(value)!r}")

    @property
    def size_bits(self) -> int:
        total = 0
        for name, value in self.fields.items():
            total += 4  # field tag
            total += self._value_bits(value)
        return total
