"""Tokens and their initial (adversarial) placement.

The k-token dissemination problem (Section 4.2): ``k <= n`` tokens of ``d``
bits each are distributed to nodes by the adversary before round 1 and must
become known to all nodes.

A token is a ``d``-bit payload together with an identifier.  Identifiers are
*not* consecutive indices — the paper stresses that assuming a global
indexing amounts to assuming the problem solved — so, as in Corollary 7.1,
a token's identifier is the pair ``(origin node UID, per-node sequence
number)``, which every node can create locally with ``O(log n)`` bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = [
    "TokenId",
    "Token",
    "TokenPlacement",
    "make_tokens",
    "place_tokens",
    "one_token_per_node",
]


@dataclass(frozen=True)
class TokenId:
    """Globally-unique token identifier: origin node UID + sequence number.

    Orders lexicographically, which gives all nodes a consistent way to sort
    identifiers (used for index assignment after gathering).

    Identifiers sit on the round loop's hot path — every sort, dict lookup
    and message-size check touches them — so the ordering key, hash and bit
    size are computed once per instance instead of per operation.
    """

    origin: int
    sequence: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "_key", (self.origin, self.sequence))
        object.__setattr__(self, "_hash", hash((self.origin, self.sequence)))
        object.__setattr__(
            self,
            "_bits",
            max(1, int(self.origin).bit_length()) + max(1, int(self.sequence).bit_length()),
        )

    @property
    def bits(self) -> int:
        """Size of the identifier in bits, O(log n) as assumed by the paper."""
        return self._bits  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __lt__(self, other: object) -> bool:
        if not isinstance(other, TokenId):
            return NotImplemented
        return self._key < other._key  # type: ignore[attr-defined]

    def __le__(self, other: object) -> bool:
        if not isinstance(other, TokenId):
            return NotImplemented
        return self._key <= other._key  # type: ignore[attr-defined]

    def __gt__(self, other: object) -> bool:
        if not isinstance(other, TokenId):
            return NotImplemented
        return self._key > other._key  # type: ignore[attr-defined]

    def __ge__(self, other: object) -> bool:
        if not isinstance(other, TokenId):
            return NotImplemented
        return self._key >= other._key  # type: ignore[attr-defined]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TokenId({self.origin},{self.sequence})"


@dataclass(frozen=True)
class Token:
    """A ``d``-bit token.

    Attributes
    ----------
    token_id:
        Globally-unique identifier (origin UID + sequence number).
    payload:
        The token content as a non-negative integer of at most ``size_bits`` bits.
    size_bits:
        The token size ``d`` in bits.
    """

    token_id: TokenId
    payload: int
    size_bits: int

    def __post_init__(self) -> None:
        if self.size_bits < 1:
            raise ValueError(f"token size must be >= 1 bit, got {self.size_bits}")
        if self.payload < 0 or self.payload >= (1 << self.size_bits):
            raise ValueError(
                f"payload {self.payload} does not fit in {self.size_bits} bits"
            )

    def payload_bits(self) -> tuple[int, ...]:
        """The payload as a tuple of bits, least-significant first."""
        return tuple((self.payload >> i) & 1 for i in range(self.size_bits))


@dataclass(frozen=True)
class TokenPlacement:
    """The adversary's initial assignment of tokens to nodes.

    Attributes
    ----------
    tokens:
        All tokens in the instance.
    holders:
        Map from token id to the set of node UIDs initially holding it.
    """

    tokens: tuple[Token, ...]
    holders: Mapping[TokenId, frozenset]

    @property
    def k(self) -> int:
        """Number of distinct tokens in the instance."""
        return len(self.tokens)

    @property
    def token_size_bits(self) -> int:
        """Token size ``d``; all tokens in an instance share one size."""
        if not self.tokens:
            return 0
        return self.tokens[0].size_bits

    def tokens_at(self, node: int) -> list[Token]:
        """Tokens initially held by ``node``."""
        return [t for t in self.tokens if node in self.holders[t.token_id]]

    def by_id(self) -> dict[TokenId, Token]:
        """Map token id -> token."""
        return {t.token_id: t for t in self.tokens}

    def all_ids(self) -> frozenset:
        """All token identifiers."""
        return frozenset(t.token_id for t in self.tokens)


def make_tokens(
    k: int,
    size_bits: int,
    rng: np.random.Generator,
    origins: Sequence[int] | None = None,
) -> list[Token]:
    """Create ``k`` tokens of ``size_bits`` bits with random payloads.

    ``origins`` optionally assigns each token's originating node (used to
    form its identifier); by default token ``i`` originates at node ``i``.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if origins is None:
        origins = list(range(k))
    if len(origins) != k:
        raise ValueError(f"need {k} origins, got {len(origins)}")
    sequence_counters: dict[int, int] = {}
    tokens = []
    for origin in origins:
        seq = sequence_counters.get(origin, 0)
        sequence_counters[origin] = seq + 1
        payload = int(rng.integers(0, 2, size=size_bits) @ (1 << np.arange(size_bits)))
        tokens.append(
            Token(token_id=TokenId(int(origin), seq), payload=payload, size_bits=size_bits)
        )
    return tokens


def place_tokens(
    tokens: Iterable[Token],
    n: int,
    rng: np.random.Generator,
    copies: int = 1,
    at_origin: bool = True,
) -> TokenPlacement:
    """Distribute tokens to nodes.

    Parameters
    ----------
    tokens:
        The tokens to place.
    n:
        Number of nodes.
    rng:
        Randomness for non-origin placements.
    copies:
        How many initial holders each token gets (the problem only requires
        at least one).
    at_origin:
        If True, the token's origin node is always one of its holders
        (the natural instance where each node contributes its own tokens).
    """
    tokens = tuple(tokens)
    holders: dict[TokenId, frozenset] = {}
    for token in tokens:
        chosen: set[int] = set()
        if at_origin and 0 <= token.token_id.origin < n:
            chosen.add(token.token_id.origin)
        while len(chosen) < min(copies, n):
            chosen.add(int(rng.integers(0, n)))
        holders[token.token_id] = frozenset(chosen)
    return TokenPlacement(tokens=tokens, holders=holders)


def one_token_per_node(n: int, size_bits: int, rng: np.random.Generator) -> TokenPlacement:
    """The canonical ``k = n`` instance: every node starts with exactly one token."""
    tokens = make_tokens(n, size_bits, rng, origins=list(range(n)))
    holders = {t.token_id: frozenset({t.token_id.origin}) for t in tokens}
    return TokenPlacement(tokens=tuple(tokens), holders=holders)
