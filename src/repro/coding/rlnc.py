"""Random linear network coding generations: encode, recombine, decode.

Section 5.1 in executable form.  A :class:`Generation` fixes the coding
parameters for one indexed-broadcast instance: ``k`` dimensions (tokens or
blocks of tokens), payload size in bits, and the field ``GF(q)``.  Nodes
hold a :class:`~repro.coding.subspace.Subspace` of augmented vectors
``v_i = e_i || t_i`` and exchange random linear combinations of everything
they have received.

Mask-native fast path (``q = 2``): the augmented vector of a coded message
is a single integer bit mask from :meth:`GenerationState.compose` through
the wire (:meth:`CodedMessage.from_mask <repro.tokens.message.CodedMessage>`)
to :meth:`GenerationState.receive` — no per-symbol tuples, no numpy
round-trips.  ``source_mask`` / ``message_from_mask`` / ``mask_from_message``
are the packed counterparts of the generic array API, which remains for
general prime fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Sequence

import numpy as np

from ..gf import GF, get_field, symbols_needed, int_to_vector, vector_to_int
from ..tokens.message import CodedMessage
from .subspace import Subspace

__all__ = ["Generation", "GenerationState"]


@dataclass(frozen=True)
class Generation:
    """Parameters of one network-coding generation.

    Attributes
    ----------
    k:
        Number of coded dimensions (indexed tokens or blocks).
    payload_bits:
        Size in bits of each dimension's payload (the ``d`` of the paper, or
        the block size for grouped "meta-tokens").
    field_order:
        The field size ``q`` (prime).
    generation_id:
        Tag distinguishing concurrent/successive generations; carried in
        every coded message.
    """

    k: int
    payload_bits: int
    field_order: int = 2
    generation_id: int = 0

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"a generation needs k >= 1 dimensions, got {self.k}")
        if self.payload_bits < 0:
            raise ValueError(f"payload size must be >= 0, got {self.payload_bits}")

    @property
    def field(self) -> GF:
        """The coding field."""
        return get_field(self.field_order)

    @cached_property
    def payload_symbols(self) -> int:
        """Number of ``F_q`` symbols per payload (``d' = ceil(d / lg q)``)."""
        return symbols_needed(self.payload_bits, self.field_order)

    @cached_property
    def vector_length(self) -> int:
        """Length of an augmented coding vector (``k + d'``)."""
        return self.k + self.payload_symbols

    @property
    def message_bits(self) -> int:
        """Size of one coded message (Lemma 5.3's ``k lg q + d``)."""
        bits_per_symbol = self.field.bits_per_symbol
        return (self.k + self.payload_symbols) * bits_per_symbol

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    def source_vector(self, index: int, payload: int) -> np.ndarray:
        """The augmented vector ``e_index || payload`` a source injects.

        ``index`` is the dimension this payload occupies (0-based) and
        ``payload`` its content as an integer of at most ``payload_bits`` bits.
        """
        if not 0 <= index < self.k:
            raise IndexError(f"dimension index {index} out of range for k={self.k}")
        field = self.field
        vector = field.zeros(self.vector_length)
        vector[index] = 1
        if self.payload_symbols:
            vector[self.k :] = int_to_vector(field, payload, self.payload_symbols)
        return vector

    def source_mask(self, index: int, payload: int) -> int:
        """Packed form of :meth:`source_vector`: ``e_index || payload`` as a mask.

        GF(2) only — over ``q = 2`` the LSB-first symbol encoding of a
        payload integer *is* its binary representation, so the augmented
        vector is simply ``(1 << index) | (payload << k)``.
        """
        if self.field_order != 2:
            raise ValueError("source_mask requires GF(2)")
        if not 0 <= index < self.k:
            raise IndexError(f"dimension index {index} out of range for k={self.k}")
        payload = int(payload)
        if payload < 0 or payload.bit_length() > self.payload_symbols:
            raise ValueError(
                f"payload {payload} does not fit into {self.payload_symbols} "
                f"symbols over GF(2)"
            )
        return (1 << index) | (payload << self.k)

    def new_state(self) -> "GenerationState":
        """A fresh per-node state (empty received subspace) for this generation."""
        return GenerationState(self)

    # ------------------------------------------------------------------
    # message <-> vector conversion
    # ------------------------------------------------------------------
    def message_from_vector(self, sender: int, vector: np.ndarray) -> CodedMessage:
        """Wrap an augmented vector as a tuple-form :class:`CodedMessage`."""
        arr = self.field.asarray(vector).ravel()
        if arr.shape[0] != self.vector_length:
            raise ValueError(
                f"vector length {arr.shape[0]} != expected {self.vector_length}"
            )
        return CodedMessage(
            sender=sender,
            coefficients=tuple(int(x) for x in arr[: self.k].tolist()),
            payload=tuple(int(x) for x in arr[self.k :].tolist()),
            field_order=self.field_order,
            generation=self.generation_id,
        )

    def message_from_mask(self, sender: int, mask: int) -> CodedMessage:
        """Wrap a packed augmented vector as a packed :class:`CodedMessage`."""
        if self.field_order != 2:
            raise ValueError("message_from_mask requires GF(2)")
        return CodedMessage.from_mask(
            sender=sender,
            mask=mask,
            k=self.k,
            payload_symbols=self.payload_symbols,
            generation=self.generation_id,
        )

    def _check_message(self, message: CodedMessage) -> None:
        if message.field_order != self.field_order:
            raise ValueError(
                f"message field GF({message.field_order}) != generation field "
                f"GF({self.field_order})"
            )
        if (
            message.num_coefficients != self.k
            or message.num_payload_symbols != self.payload_symbols
        ):
            raise ValueError("message dimensions do not match this generation")

    def vector_from_message(self, message: CodedMessage) -> np.ndarray:
        """Unwrap a :class:`CodedMessage` back into an augmented vector."""
        self._check_message(message)
        field = self.field
        vector = field.zeros(self.vector_length)
        for i, value in enumerate(message.coefficients):
            vector[i] = field.normalize(value)
        for i, value in enumerate(message.payload):
            vector[self.k + i] = field.normalize(value)
        return vector

    def mask_from_message(self, message: CodedMessage) -> int:
        """Unwrap a :class:`CodedMessage` into a packed augmented vector.

        Zero-cost for packed messages; tuple-form GF(2) messages are packed
        on the fly so mixed traffic interoperates.
        """
        if self.field_order != 2:
            raise ValueError("mask_from_message requires GF(2)")
        self._check_message(message)
        if message.mask is not None:
            return message.mask
        return message.coefficient_mask() | (message.payload_mask() << self.k)


class GenerationState:
    """Per-node state for one coding generation: the received subspace.

    Over GF(2) every operation below stays in the packed integer-mask
    representation end to end.
    """

    def __init__(self, generation: Generation):
        self.generation = generation
        self.subspace = Subspace(generation.field, generation.vector_length)
        self._mask_native = generation.field_order == 2

    # ------------------------------------------------------------------
    # knowledge updates
    # ------------------------------------------------------------------
    def add_source(self, index: int, payload: int) -> bool:
        """Inject a locally-known payload for dimension ``index``."""
        if self._mask_native:
            return self.subspace.insert(self.generation.source_mask(index, payload))
        return self.subspace.insert(self.generation.source_vector(index, payload))

    def receive(self, message: CodedMessage) -> bool:
        """Incorporate a received coded message; return True if innovative."""
        if self._mask_native:
            return self.subspace.insert(self.generation.mask_from_message(message))
        return self.subspace.insert(self.generation.vector_from_message(message))

    def receive_vector(self, vector: int | np.ndarray) -> bool:
        """Incorporate a raw augmented vector (mask or array); True if innovative."""
        return self.subspace.insert(vector)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def compose(self, sender: int, rng: np.random.Generator) -> CodedMessage | None:
        """A random linear combination of everything received, as a message.

        Returns None when the node has received nothing for this generation
        yet (it then has nothing useful to contribute).  The combination is
        never the zero vector (see :meth:`Subspace.random_combination`).
        """
        if self._mask_native:
            mask = self.subspace.random_combination_mask(rng)
            if mask is None:
                return None
            return self.generation.message_from_mask(sender, mask)
        combination = self.subspace.random_combination(rng)
        if combination is None:
            return None
        return self.generation.message_from_vector(sender, combination)

    def compose_with_coefficients(self, sender: int, coefficients: Sequence[int]) -> CodedMessage | None:
        """Combine the current basis with explicit coefficients (deterministic coding)."""
        if self.subspace.rank == 0:
            return None
        coefficients = list(coefficients)[: self.subspace.rank]
        if self._mask_native:
            mask = self.subspace.combination_mask_with(coefficients)
            return self.generation.message_from_mask(sender, mask)
        combination = self.subspace.combination_with(coefficients)
        return self.generation.message_from_vector(sender, combination)

    # ------------------------------------------------------------------
    # queries / decoding
    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """Dimension of the received span."""
        return self.subspace.rank

    def coefficient_rank(self) -> int:
        """Rank of the span projected on the coefficient block."""
        return self.subspace.coefficient_rank(self.generation.k)

    def can_decode(self) -> bool:
        """True iff all ``k`` dimensions can be recovered."""
        return self.subspace.can_decode(self.generation.k)

    def decode_payloads(self) -> list[int] | None:
        """Recover all ``k`` payloads as integers, or None if not yet decodable.

        On the GF(2) path the decoded payload masks *are* the payload
        integers (LSB-first bits), so no unpacking happens at all.
        """
        k = self.generation.k
        if self._mask_native:
            if not self.subspace.can_decode(k):
                return None
            return self.subspace.decode_payload_masks(k)
        vectors = self.subspace.decode(k)
        if vectors is None:
            return None
        field = self.generation.field
        return [vector_to_int(field, v) for v in vectors]

    def senses(self, direction: int | Sequence[int] | np.ndarray) -> bool:
        """Definition 5.1 sensing of a coefficient-space direction (mask or array)."""
        return self.subspace.senses(direction)
