"""Random linear network coding generations: encode, recombine, decode.

Section 5.1 in executable form.  A :class:`Generation` fixes the coding
parameters for one indexed-broadcast instance: ``k`` dimensions (tokens or
blocks of tokens), payload size in bits, and the field ``GF(q)``.  Nodes
hold a :class:`~repro.coding.subspace.Subspace` of augmented vectors
``v_i = e_i || t_i`` and exchange random linear combinations of everything
they have received.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..gf import GF, get_field, symbols_needed, int_to_vector, vector_to_int
from ..tokens.message import CodedMessage
from .subspace import Subspace

__all__ = ["Generation", "GenerationState"]


@dataclass(frozen=True)
class Generation:
    """Parameters of one network-coding generation.

    Attributes
    ----------
    k:
        Number of coded dimensions (indexed tokens or blocks).
    payload_bits:
        Size in bits of each dimension's payload (the ``d`` of the paper, or
        the block size for grouped "meta-tokens").
    field_order:
        The field size ``q`` (prime).
    generation_id:
        Tag distinguishing concurrent/successive generations; carried in
        every coded message.
    """

    k: int
    payload_bits: int
    field_order: int = 2
    generation_id: int = 0

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"a generation needs k >= 1 dimensions, got {self.k}")
        if self.payload_bits < 0:
            raise ValueError(f"payload size must be >= 0, got {self.payload_bits}")

    @property
    def field(self) -> GF:
        """The coding field."""
        return get_field(self.field_order)

    @property
    def payload_symbols(self) -> int:
        """Number of ``F_q`` symbols per payload (``d' = ceil(d / lg q)``)."""
        return symbols_needed(self.payload_bits, self.field_order)

    @property
    def vector_length(self) -> int:
        """Length of an augmented coding vector (``k + d'``)."""
        return self.k + self.payload_symbols

    @property
    def message_bits(self) -> int:
        """Size of one coded message (Lemma 5.3's ``k lg q + d``)."""
        bits_per_symbol = self.field.bits_per_symbol
        return (self.k + self.payload_symbols) * bits_per_symbol

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    def source_vector(self, index: int, payload: int) -> np.ndarray:
        """The augmented vector ``e_index || payload`` a source injects.

        ``index`` is the dimension this payload occupies (0-based) and
        ``payload`` its content as an integer of at most ``payload_bits`` bits.
        """
        if not 0 <= index < self.k:
            raise IndexError(f"dimension index {index} out of range for k={self.k}")
        field = self.field
        vector = field.zeros(self.vector_length)
        vector[index] = 1
        if self.payload_symbols:
            vector[self.k :] = int_to_vector(field, payload, self.payload_symbols)
        return vector

    def new_state(self) -> "GenerationState":
        """A fresh per-node state (empty received subspace) for this generation."""
        return GenerationState(self)

    # ------------------------------------------------------------------
    # message <-> vector conversion
    # ------------------------------------------------------------------
    def message_from_vector(self, sender: int, vector: np.ndarray) -> CodedMessage:
        """Wrap an augmented vector as a :class:`CodedMessage`."""
        arr = self.field.asarray(vector).ravel()
        if arr.shape[0] != self.vector_length:
            raise ValueError(
                f"vector length {arr.shape[0]} != expected {self.vector_length}"
            )
        return CodedMessage(
            sender=sender,
            coefficients=tuple(int(x) for x in arr[: self.k].tolist()),
            payload=tuple(int(x) for x in arr[self.k :].tolist()),
            field_order=self.field_order,
            generation=self.generation_id,
        )

    def vector_from_message(self, message: CodedMessage) -> np.ndarray:
        """Unwrap a :class:`CodedMessage` back into an augmented vector."""
        if message.field_order != self.field_order:
            raise ValueError(
                f"message field GF({message.field_order}) != generation field "
                f"GF({self.field_order})"
            )
        if len(message.coefficients) != self.k or len(message.payload) != self.payload_symbols:
            raise ValueError("message dimensions do not match this generation")
        field = self.field
        vector = field.zeros(self.vector_length)
        for i, value in enumerate(message.coefficients):
            vector[i] = field.normalize(value)
        for i, value in enumerate(message.payload):
            vector[self.k + i] = field.normalize(value)
        return vector


class GenerationState:
    """Per-node state for one coding generation: the received subspace."""

    def __init__(self, generation: Generation):
        self.generation = generation
        self.subspace = Subspace(generation.field, generation.vector_length)

    # ------------------------------------------------------------------
    # knowledge updates
    # ------------------------------------------------------------------
    def add_source(self, index: int, payload: int) -> bool:
        """Inject a locally-known payload for dimension ``index``."""
        return self.subspace.insert(self.generation.source_vector(index, payload))

    def receive(self, message: CodedMessage) -> bool:
        """Incorporate a received coded message; return True if innovative."""
        return self.subspace.insert(self.generation.vector_from_message(message))

    def receive_vector(self, vector: np.ndarray) -> bool:
        """Incorporate a raw augmented vector; return True if innovative."""
        return self.subspace.insert(vector)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def compose(self, sender: int, rng: np.random.Generator) -> CodedMessage | None:
        """A random linear combination of everything received, as a message.

        Returns None when the node has received nothing for this generation
        yet (it then has nothing useful to contribute).
        """
        combination = self.subspace.random_combination(rng)
        if combination is None:
            return None
        return self.generation.message_from_vector(sender, combination)

    def compose_with_coefficients(self, sender: int, coefficients: Sequence[int]) -> CodedMessage | None:
        """Combine the current basis with explicit coefficients (deterministic coding)."""
        if self.subspace.rank == 0:
            return None
        combination = self.subspace.combination_with(
            list(coefficients)[: self.subspace.rank]
        )
        return self.generation.message_from_vector(sender, combination)

    # ------------------------------------------------------------------
    # queries / decoding
    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """Dimension of the received span."""
        return self.subspace.rank

    def coefficient_rank(self) -> int:
        """Rank of the span projected on the coefficient block."""
        return self.subspace.coefficient_rank(self.generation.k)

    def can_decode(self) -> bool:
        """True iff all ``k`` dimensions can be recovered."""
        return self.subspace.can_decode(self.generation.k)

    def decode_payloads(self) -> list[int] | None:
        """Recover all ``k`` payloads as integers, or None if not yet decodable."""
        vectors = self.subspace.decode(self.generation.k)
        if vectors is None:
            return None
        field = self.generation.field
        return [vector_to_int(field, v) for v in vectors]

    def senses(self, direction: Sequence[int] | np.ndarray) -> bool:
        """Definition 5.1 sensing of a coefficient-space direction."""
        return self.subspace.senses(direction)
