"""Cost model for network-coded packets.

These helpers answer the sizing questions the paper's algorithms constantly
face: how many bits does a coefficient header for ``k`` dimensions cost at
field size ``q``; how many tokens of size ``d`` can be grouped into blocks
such that ``m`` blocks can be coded together inside a ``b``-bit message; and
the ``b/2``-split used by greedy-forward (Section 7): group tokens into
blocks of ``b/2d`` tokens so that ``b/2`` blocks can be broadcast
simultaneously with the remaining ``b/2`` bits of header.

Note on the wire format: these helpers size the *transmitted* message.  At
``q = 2`` the simulator's packed wire format (one integer bit mask per
coded message, see :class:`repro.tokens.message.CodedMessage`) carries
exactly ``coding_header_bits + coded_payload_bits`` information bits, so the
cost model is identical for the tuple and packed representations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..gf import field_bits

__all__ = [
    "coding_header_bits",
    "coded_payload_bits",
    "coded_message_bits",
    "max_dimensions_for_budget",
    "GenerationPlan",
    "plan_generation",
]


def coding_header_bits(k: int, q: int) -> int:
    """Bits used by a coefficient header coding ``k`` dimensions over GF(q)."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    return k * field_bits(q)


def coded_payload_bits(block_bits: int, q: int) -> int:
    """Bits used by the coded payload for blocks of ``block_bits`` bits."""
    if block_bits < 0:
        raise ValueError(f"block size must be non-negative, got {block_bits}")
    symbols = math.ceil(block_bits / field_bits(q)) if block_bits else 0
    return symbols * field_bits(q)


def coded_message_bits(k: int, block_bits: int, q: int) -> int:
    """Total size of one coded message: header + payload (Lemma 5.3's ``k lg q + d``)."""
    return coding_header_bits(k, q) + coded_payload_bits(block_bits, q)


def max_dimensions_for_budget(budget_bits: int, block_bits: int, q: int) -> int:
    """Largest ``k`` such that a coded message for ``k`` blocks fits in the budget."""
    if budget_bits < 1:
        raise ValueError(f"budget must be positive, got {budget_bits}")
    per_dimension = field_bits(q)
    available = budget_bits - coded_payload_bits(block_bits, q)
    if available < per_dimension:
        return 0
    return available // per_dimension


@dataclass(frozen=True)
class GenerationPlan:
    """How a set of tokens is packed into one coding generation.

    Attributes
    ----------
    tokens_per_block:
        Number of size-``d`` tokens grouped into each block ("meta-token").
    block_bits:
        Size of each block in bits.
    num_blocks:
        Number of blocks (= coded dimensions ``k`` of the generation).
    field_order:
        Field size used for the coding.
    message_bits:
        Size of one coded message under this plan.
    """

    tokens_per_block: int
    block_bits: int
    num_blocks: int
    field_order: int

    @property
    def message_bits(self) -> int:
        return coded_message_bits(self.num_blocks, self.block_bits, self.field_order)

    @property
    def tokens_covered(self) -> int:
        """Total number of tokens this generation can carry."""
        return self.tokens_per_block * self.num_blocks

    def to_generation(self, generation_id: int = 0):
        """Instantiate the :class:`~repro.coding.rlnc.Generation` this plan describes."""
        from .rlnc import Generation

        return Generation(
            k=self.num_blocks,
            payload_bits=self.block_bits,
            field_order=self.field_order,
            generation_id=generation_id,
        )


def plan_generation(
    num_tokens: int,
    token_bits: int,
    budget_bits: int,
    q: int = 2,
) -> GenerationPlan:
    """Plan the block structure greedy-forward uses (Section 7).

    The paper splits the ``b``-bit message in half: ``b/2`` bits of payload
    hold a block of ``b/2d`` tokens, and the other ``b/2`` bits hold the
    coefficient header for up to ``b/2`` blocks (at ``q = 2``, one bit per
    coefficient).  We reproduce that split, clamped to the number of tokens
    actually available and never below one token per block.
    """
    if num_tokens < 1:
        raise ValueError(f"need at least one token, got {num_tokens}")
    if token_bits < 1:
        raise ValueError(f"token size must be >= 1, got {token_bits}")
    if budget_bits < token_bits:
        raise ValueError(
            f"budget {budget_bits} cannot even carry a single {token_bits}-bit token"
        )
    half_budget = max(token_bits, budget_bits // 2)
    tokens_per_block = max(1, half_budget // token_bits)
    block_bits = tokens_per_block * token_bits
    symbol_bits = field_bits(q)
    max_blocks = max(1, (budget_bits - block_bits) // symbol_bits) if budget_bits > block_bits else 1
    num_blocks = min(max_blocks, math.ceil(num_tokens / tokens_per_block))
    num_blocks = max(1, num_blocks)
    return GenerationPlan(
        tokens_per_block=tokens_per_block,
        block_bits=block_bits,
        num_blocks=num_blocks,
        field_order=q,
    )
