"""Derandomizing random linear network coding (Section 6).

The paper shows that RLNC is not inherently randomized:

* **Theorem 6.1** — with field size ``q = n^{Omega(k)}`` the standard RLNC
  algorithm succeeds against an *omniscient* adversary (one that knows all
  coefficient choices in advance) with probability ``1 - q^{-n}``.  The proof
  counts compact *witnesses* (per-node learning events) instead of
  adversarial schedules: each node has at most ``k`` learning events, each
  describable in ``O(log n)`` bits, so there are at most ``exp(n k log n)``
  witnesses and a union bound applies.
* **Corollary 6.2** — this yields (non-uniform or exponential-time uniform)
  deterministic algorithms with coefficient overhead ``k^2 log n`` bits.

This module provides the quantitative side of that argument (field-size
selection, witness counting, union-bound checking) plus a
:class:`DeterministicSchedule`: a pre-committed per-UID coefficient sequence
playing the role of the advice matrix of Corollary 6.2.  Computing the
lexicographically-first provably-good matrix is super-polynomial (as the
paper itself notes); our substitute draws the schedule from a seeded PRF
over the required large field and exposes a verifier that checks it against
a battery of adversarial strategies on small instances (see DESIGN.md,
substitutions table).

The mask-native GF(2) fast path of the coding layer does not apply here:
Theorem 6.1 needs the huge fields ``q = n^{Omega(k)}``, so the deterministic
pipeline always runs on the generic-field (object-dtype) representation.
Schedules *over* GF(2) (used in tests) still compose through
``Subspace.combination_mask_with``, where only coefficient parity matters.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

import numpy as np

from ..gf import GF, get_field, smallest_prime_at_least

__all__ = [
    "omniscient_field_order",
    "deterministic_header_bits",
    "witness_description_bits",
    "witness_count_log2",
    "failure_probability_log2",
    "union_bound_margin_log2",
    "union_bound_holds",
    "DeterministicSchedule",
]


def omniscient_field_order(n: int, k: int, exponent_constant: float = 4.0) -> int:
    """The field order Theorem 6.1 requires: the smallest prime ``>= n^{c k}``.

    ``exponent_constant`` is the constant hidden in ``Omega(k)``.  The proof
    needs ``q^n`` to exceed the ``exp(n k log n)``-many witnesses; concretely
    ``c * log2 n >= log2(rounds) + log2 n`` suffices, which ``c = 4`` satisfies
    for every ``n >= 3`` (checked by :func:`union_bound_holds` and its tests).
    """
    if n < 2 or k < 1:
        raise ValueError(f"need n >= 2 and k >= 1, got n={n}, k={k}")
    target = max(2, int(math.ceil(n ** (exponent_constant * k))))
    return smallest_prime_at_least(target)


def deterministic_header_bits(n: int, k: int, exponent_constant: float = 4.0) -> int:
    """Coefficient-header cost of the derandomized algorithm: ``k^2 log n`` bits.

    With ``q = n^{ck}`` each of the ``k`` coefficients costs ``c k log n``
    bits, for a total of ``c k^2 log n`` — the "quadratic coefficient
    overhead" the paper pays for determinism.
    """
    q = omniscient_field_order(n, k, exponent_constant)
    per_symbol = max(1, math.ceil(math.log2(q)))
    return k * per_symbol


def witness_description_bits(n: int, k: int) -> int:
    """Bits needed to describe one witness (Theorem 6.1 proof).

    Each node has at most ``k`` learning events; each event names a round
    (``O(log(n + k))`` bits, rounds are ``O(n + k)``) and a sender
    (``log n`` bits).  Total: ``O(n k log n)`` bits.
    """
    rounds_bits = max(1, math.ceil(math.log2(max(2, 4 * (n + k)))))
    sender_bits = max(1, math.ceil(math.log2(max(2, n))))
    return n * k * (rounds_bits + sender_bits)


def witness_count_log2(n: int, k: int) -> float:
    """``log2`` of the number of witnesses (upper bound)."""
    return float(witness_description_bits(n, k))


def failure_probability_log2(n: int, q: int) -> float:
    """``log2`` of the per-witness failure probability bound ``q^{-n}``."""
    return -n * math.log2(q)


def union_bound_margin_log2(n: int, k: int, q: int) -> float:
    """``log2`` of (witness count * per-witness failure probability).

    Negative means the union bound succeeds: the total failure probability is
    below 1 (and exponentially small when strongly negative).
    """
    return witness_count_log2(n, k) + failure_probability_log2(n, q)


def union_bound_holds(n: int, k: int, q: int, margin_bits: float = 1.0) -> bool:
    """True iff the Theorem 6.1 union bound goes through with some margin."""
    return union_bound_margin_log2(n, k, q) <= -margin_bits


@dataclass(frozen=True)
class DeterministicSchedule:
    """A pre-committed coefficient schedule, one stream per node UID.

    This plays the role of the advice matrix of Corollary 6.2: *before* the
    execution starts, the schedule fixes, for every possible UID and every
    (round, slot) position, the coefficient that node will use.  The
    adversary — even an omniscient one — sees the whole schedule yet, when
    the field is large enough (Theorem 6.1), cannot prevent fast mixing.

    Coefficients are derived from SHA-256 of ``(seed, uid, round, slot)``
    reduced into ``F_q``; the stream is deterministic, reproducible, and
    independent of execution history, so the resulting protocol is
    non-uniform deterministic in exactly the paper's sense.
    """

    field_order: int
    seed: int = 0

    @property
    def field(self) -> GF:
        """The field coefficients are drawn from."""
        return get_field(self.field_order)

    def coefficient(self, uid: int, round_index: int, slot: int) -> int:
        """The committed coefficient for (uid, round, slot)."""
        material = f"{self.seed}:{uid}:{round_index}:{slot}".encode()
        digest = hashlib.sha256(material).digest()
        # 256 bits of digest reduced mod q; the bias is at most 2^-200 for the
        # field sizes used here, far below any probability we reason about.
        value = int.from_bytes(digest, "big")
        return value % self.field_order

    def coefficients(self, uid: int, round_index: int, count: int) -> list[int]:
        """The committed coefficient row for a node in a given round."""
        return [self.coefficient(uid, round_index, slot) for slot in range(count)]

    def as_matrix(self, uids: int, rounds: int, slots: int) -> np.ndarray:
        """Materialise the schedule as an explicit (uids x rounds x slots) array.

        Only sensible for small instances (tests, verification); the
        deterministic protocol itself queries coefficients lazily.
        """
        out = np.zeros((uids, rounds, slots), dtype=object)
        for u in range(uids):
            for r in range(rounds):
                for s in range(slots):
                    out[u, r, s] = self.coefficient(u, r, s)
        return out
