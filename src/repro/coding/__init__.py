"""Network-coding core: generations, subspaces, packet cost model, derandomization.

Over GF(2) — the paper's "replace linear combinations by XORs" — the whole
layer is *mask-native*: a coded vector is one Python integer bit mask from
:meth:`GenerationState.compose` through the packed
:class:`~repro.tokens.message.CodedMessage` wire format to
:meth:`GenerationState.receive` and mask-level Gauss-Jordan decoding.  See
:mod:`repro.coding.subspace` and :mod:`repro.coding.rlnc` for the API.
"""

from .deterministic import (
    DeterministicSchedule,
    deterministic_header_bits,
    failure_probability_log2,
    omniscient_field_order,
    union_bound_holds,
    union_bound_margin_log2,
    witness_count_log2,
    witness_description_bits,
)
from .packet import (
    GenerationPlan,
    coded_message_bits,
    coded_payload_bits,
    coding_header_bits,
    max_dimensions_for_budget,
    plan_generation,
)
from .rlnc import Generation, GenerationState
from .subspace import Subspace

__all__ = [
    "DeterministicSchedule",
    "Generation",
    "GenerationPlan",
    "GenerationState",
    "Subspace",
    "coded_message_bits",
    "coded_payload_bits",
    "coding_header_bits",
    "deterministic_header_bits",
    "failure_probability_log2",
    "max_dimensions_for_budget",
    "omniscient_field_order",
    "plan_generation",
    "union_bound_holds",
    "union_bound_margin_log2",
    "witness_count_log2",
    "witness_description_bits",
]
