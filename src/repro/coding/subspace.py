"""Incremental subspace (span) maintenance for network-coding nodes.

A network-coding node's entire knowledge is the subspace spanned by the
coded vectors it has received (Section 5.1).  This module provides the
:class:`Subspace` type that maintains that span incrementally:

* insert a received vector, learning whether it was *innovative*
  (increased the dimension),
* draw a uniformly random vector from the span (the message the node sends),
* test the *sensing* relation of Definition 5.1 (is some received vector
  non-orthogonal to a given direction?), and
* decode the original tokens by Gauss-Jordan elimination once the
  coefficient part of the span is full.

For ``q = 2`` the implementation transparently uses the bit-packed
:class:`~repro.gf.gf2.GF2Basis` fast path, and is *mask-native*: ``insert``,
``contains`` and ``senses`` accept plain integer bit masks (bit ``i`` =
coordinate ``i``) next to arrays, ``random_combination_mask`` /
``combination_mask_with`` / ``decode_payload_masks`` emit masks, and the
array-based API only packs/unpacks at its boundary (vectorised via
``np.packbits`` / ``np.unpackbits``).  For general prime ``q`` it keeps an
echelon basis of numpy vectors.

Coefficient-block ranks (``coefficient_rank`` / ``can_decode``) are cached
per projection width and updated incrementally on insertion instead of
rebuilding a throwaway projection basis on every call.

Two further hot-path shortcuts: once a span *saturates* (``rank == length``)
``insert`` returns False without running any elimination (every vector is
already in the span), and over GF(2) the descending-leading-bit basis order
that ``random_combination_mask`` / ``combination_mask_with`` combine against
is maintained incrementally instead of re-sorted per compose.

For whole-network batched elimination (all nodes' bases as one stacked
uint64 array) see :class:`repro.gf.packed.GF2BasisBatch`, which is
bit-exact with this class and what the coded round kernels run on.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..gf import GF, GF2Basis, pack_bits, unpack_bits
from ..gf.packed import PICK_REFILL_BYTES

__all__ = ["Subspace"]


class Subspace:
    """The span of a set of vectors over ``F_q``, maintained incrementally.

    Parameters
    ----------
    field:
        The prime field the vectors live over.
    length:
        Dimension of the ambient space (for augmented coding vectors this is
        ``k + d'``: coefficient header plus payload symbols).
    """

    #: Bytes drawn per rng refill of the pick-bit buffer (see
    #: :meth:`draw_pick_mask`); shared with the batched core so the
    #: consumption schedule is engine-independent.
    PICK_REFILL_BYTES = PICK_REFILL_BYTES

    def __init__(self, field: GF, length: int):
        if length < 0:
            raise ValueError(f"vector length must be non-negative, got {length}")
        self.field = field
        self.length = length
        self._gf2: GF2Basis | None = GF2Basis(length) if field.q == 2 else None
        # For general q: echelon rows keyed by pivot (first non-zero) column.
        self._rows: dict[int, np.ndarray] = {}
        # General-q incremental coefficient-rank cache: projection width ->
        # projection subspace, fed one row per successful insert.
        self._projections: dict[int, "Subspace"] = {}
        # Buffered random pick bits (GF(2) compose fast path).
        self._pick_buffer = 0
        self._pick_bits = 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def copy(self) -> "Subspace":
        """An independent copy of this subspace."""
        clone = Subspace(self.field, self.length)
        if self._gf2 is not None:
            clone._gf2 = self._gf2.copy()
        else:
            clone._rows = {col: row.copy() for col, row in self._rows.items()}
            clone._projections = {k: p.copy() for k, p in self._projections.items()}
        clone._pick_buffer = self._pick_buffer
        clone._pick_bits = self._pick_bits
        return clone

    def _as_mask(self, vector: int | Sequence[int] | np.ndarray, *, pad: bool = False) -> int:
        """Canonicalise a GF(2) input (mask or array) into an integer mask."""
        if isinstance(vector, (int, np.integer)):
            mask = int(vector)
            if mask < 0 or mask.bit_length() > self.length:
                raise ValueError(
                    f"mask of {mask.bit_length()} bits does not fit ambient "
                    f"dimension {self.length}"
                )
            return mask
        arr = np.asarray(vector).ravel()
        if arr.shape[0] != self.length and not (pad and arr.shape[0] <= self.length):
            raise ValueError(
                f"vector length {arr.shape[0]} != ambient dimension {self.length}"
            )
        return pack_bits(arr)

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def _reduce(self, vector: np.ndarray) -> np.ndarray:
        """Reduce a vector against the echelon rows (general-q path)."""
        v = vector
        for col in range(self.length):
            coeff = int(v[col])
            if coeff == 0:
                continue
            row = self._rows.get(col)
            if row is None:
                break
            v = self.field.sub_arrays(v, self.field.scale(row, coeff))
        return v

    def insert(self, vector: int | Sequence[int] | np.ndarray) -> bool:
        """Insert a vector into the span; return True iff it was innovative.

        On the GF(2) path the vector may be an integer bit mask.
        """
        if self._gf2 is not None:
            return self._gf2.insert(self._as_mask(vector))
        if isinstance(vector, (int, np.integer)):
            raise TypeError("integer-mask insertion requires a GF(2) subspace")
        v = self.field.asarray(vector).ravel()
        if v.shape[0] != self.length:
            raise ValueError(
                f"vector length {v.shape[0]} != ambient dimension {self.length}"
            )
        if len(self._rows) >= self.length:
            # Saturation short-circuit (mirrors GF2Basis): a full-rank span
            # contains every vector, so skip the elimination (malformed
            # inputs were already rejected above).
            return False
        v = self._reduce(v)
        pivot = next((i for i in range(self.length) if int(v[i]) != 0), None)
        if pivot is None:
            return False
        # Normalise so the pivot entry is 1, then eliminate it from existing rows.
        v = self.field.scale(v, self.field.inv(int(v[pivot])))
        for col, row in list(self._rows.items()):
            coeff = int(row[pivot])
            if coeff != 0:
                self._rows[col] = self.field.sub_arrays(row, self.field.scale(v, coeff))
        self._rows[pivot] = v
        # The span grew by exactly v: feed its image to cached projections.
        for k, projection in self._projections.items():
            projection.insert(np.asarray(v).ravel()[:k])
        return True

    def extend(self, vectors: Iterable[int | Sequence[int] | np.ndarray]) -> int:
        """Insert several vectors; return the number that were innovative."""
        return sum(1 for v in vectors if self.insert(v))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """Dimension of the span."""
        if self._gf2 is not None:
            return self._gf2.rank
        return len(self._rows)

    @property
    def is_empty(self) -> bool:
        """True when no non-zero vector has been received yet."""
        return self.rank == 0

    def basis_matrix(self) -> np.ndarray:
        """The current basis as a matrix (one row per basis vector)."""
        if self._gf2 is not None:
            return self._gf2.basis_matrix()
        if not self._rows:
            return self.field.zeros((0, self.length))
        rows = [self._rows[col] for col in sorted(self._rows)]
        return np.stack(rows) if rows else self.field.zeros((0, self.length))

    def basis_masks(self) -> list[int]:
        """The basis as integer masks (GF(2) subspaces only)."""
        if self._gf2 is None:
            raise TypeError("basis_masks requires a GF(2) subspace")
        return self._gf2.basis_masks()

    def contains(self, vector: int | Sequence[int] | np.ndarray) -> bool:
        """True iff ``vector`` (mask or array) lies in the span."""
        if self._gf2 is not None:
            return self._gf2.contains(self._as_mask(vector))
        v = self.field.asarray(vector).ravel()
        v = self._reduce(v)
        return all(int(x) == 0 for x in v.tolist())

    def senses(self, direction: int | Sequence[int] | np.ndarray) -> bool:
        """Definition 5.1: some received vector is not orthogonal to ``direction``.

        The direction may be shorter than the ambient dimension (e.g. a
        ``k``-dimensional coefficient direction against ``k + d'``-dimensional
        augmented vectors); it is implicitly zero-padded on the right, which
        matches the paper's restriction to "the first ``k`` coordinates".
        On the GF(2) path an integer bit mask is accepted directly (masks
        carry their zero-padding implicitly).
        """
        if self._gf2 is not None:
            return self._gf2.senses(self._as_mask(direction, pad=True))
        if isinstance(direction, (int, np.integer)):
            raise TypeError("integer-mask directions require a GF(2) subspace")
        direction_arr = self.field.asarray(direction).ravel()
        if direction_arr.shape[0] > self.length:
            raise ValueError("direction longer than ambient dimension")
        padded = self.field.zeros(self.length)
        padded[: direction_arr.shape[0]] = direction_arr
        for row in self._rows.values():
            if self.field.dot(row, padded) != 0:
                return True
        return False

    # ------------------------------------------------------------------
    # message generation
    # ------------------------------------------------------------------
    def draw_pick_mask(self, rng: np.random.Generator, rank: int) -> int:
        """Draw a uniformly random non-zero ``rank``-bit pick mask.

        Pick bits come from a per-subspace buffer refilled with
        ``rng.bytes(PICK_REFILL_BYTES)`` — one generator call amortised over
        many composes instead of one per compose — and the all-zero draw
        (probability ``2^-rank``) is resampled: a zero combination carries no
        information yet would still burn message budget and count as a
        useless delivery.  The buffer consumption schedule is part of the
        cross-engine determinism contract (the batched core replays it
        bit-for-bit), so all engines see identical pick sequences.
        """
        low = (1 << rank) - 1
        while True:
            while self._pick_bits < rank:
                refill = int.from_bytes(rng.bytes(self.PICK_REFILL_BYTES), "little")
                self._pick_buffer |= refill << self._pick_bits
                self._pick_bits += 8 * self.PICK_REFILL_BYTES
            picks = self._pick_buffer & low
            self._pick_buffer >>= rank
            self._pick_bits -= rank
            if picks:
                return picks

    def random_combination_mask(self, rng: np.random.Generator) -> int | None:
        """A uniformly random *non-zero* combination of the basis, as a mask.

        GF(2) subspaces only.  Returns None when the subspace is empty.
        Pick bit ``i`` selects the ``i``-th mask of
        :meth:`GF2Basis.basis_masks` (descending leading bit).
        """
        if self._gf2 is None:
            raise TypeError("random_combination_mask requires a GF(2) subspace")
        masks = self._gf2.basis_masks()
        if not masks:
            return None
        picks = self.draw_pick_mask(rng, len(masks))
        combined = 0
        while picks:
            low_bit = picks & -picks
            combined ^= masks[low_bit.bit_length() - 1]
            picks ^= low_bit
        return combined

    def random_combination(self, rng: np.random.Generator) -> np.ndarray | None:
        """A uniformly random non-zero linear combination of the basis vectors.

        Returns None when the subspace is empty (the node has nothing to
        say yet).  The zero combination — the all-zero coefficient draw,
        probability ``q^-rank`` — is resampled so a node with information
        never broadcasts a useless zero vector.
        """
        if self.rank == 0:
            return None
        if self._gf2 is not None:
            # Fast path: XOR a uniformly random subset of the basis masks.
            mask = self.random_combination_mask(rng)
            return self.field.asarray(unpack_bits(mask, self.length))
        basis = self.basis_matrix()
        while True:
            coefficients = self.field.random_elements(rng, basis.shape[0])
            combination = self.field.zeros(self.length)
            nonzero = False
            for coeff, row in zip(np.asarray(coefficients).ravel().tolist(), basis):
                coeff = int(coeff)
                if coeff:
                    nonzero = True
                    combination = self.field.add_arrays(
                        combination, self.field.scale(self.field.asarray(row), coeff)
                    )
            # Basis rows are independent, so the combination is zero iff all
            # coefficients were; resample that information-free draw.
            if nonzero:
                return combination

    def combination_mask_with(self, coefficients: Sequence[int]) -> int:
        """A specific combination of the basis, as a mask (GF(2) only).

        Coefficient ``i`` applies to row ``i`` of :meth:`basis_matrix` (equally
        :meth:`basis_masks`); only its parity matters over GF(2).
        """
        if self._gf2 is None:
            raise TypeError("combination_mask_with requires a GF(2) subspace")
        masks = self._gf2.basis_masks()
        coeffs = list(coefficients)
        if len(coeffs) != len(masks):
            raise ValueError(f"need {len(masks)} coefficients, got {len(coeffs)}")
        combined = 0
        for coeff, mask in zip(coeffs, masks):
            if int(coeff) & 1:
                combined ^= mask
        return combined

    def combination_with(self, coefficients: Sequence[int]) -> np.ndarray:
        """A specific linear combination of the current basis vectors."""
        if self._gf2 is not None:
            combined = self.combination_mask_with(coefficients)
            return self.field.asarray(unpack_bits(combined, self.length))
        basis = self.basis_matrix()
        coeffs = list(coefficients)
        if len(coeffs) != basis.shape[0]:
            raise ValueError(
                f"need {basis.shape[0]} coefficients, got {len(coeffs)}"
            )
        combination = self.field.zeros(self.length)
        for coeff, row in zip(coeffs, basis):
            coeff = self.field.normalize(int(coeff))
            if coeff:
                combination = self.field.add_arrays(
                    combination, self.field.scale(self.field.asarray(row), coeff)
                )
        return combination

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------
    def coefficient_rank(self, k: int) -> int:
        """Rank of the span projected onto the first ``k`` coordinates.

        Maintained incrementally: the projection for each queried ``k`` is
        cached and fed one row per subsequent insertion instead of being
        rebuilt from scratch on every call.
        """
        if self.rank == 0 or k <= 0:
            return 0
        if self._gf2 is not None:
            return self._gf2.coefficient_rank(k)
        if k >= self.length:
            return self.rank
        projection = self._projections.get(k)
        if projection is None:
            projection = Subspace(self.field, k)
            for row in self._rows.values():
                projection.insert(np.asarray(row).ravel()[:k])
            self._projections[k] = projection
        return projection.rank

    def can_decode(self, k: int) -> bool:
        """True iff the first ``k`` coefficient dimensions are fully spanned."""
        if self.rank < k:
            return False
        return self.coefficient_rank(k) >= k

    def decode_payload_masks(self, k: int) -> list[int] | None:
        """GF(2) decode, mask-native: the ``k`` payload blocks as bit masks.

        Returns None while the coefficient block is not yet full rank.  The
        ``i``-th mask holds the payload (coordinates ``k ..`` of the reduced
        row whose coefficient part is ``e_i``) with bit ``j`` = payload
        coordinate ``j`` — which over GF(2) is exactly the payload integer.
        """
        if self._gf2 is None:
            raise TypeError("decode_payload_masks requires a GF(2) subspace")
        return self._gf2.decode_payload_masks(k)

    def decode(self, k: int) -> list[np.ndarray] | None:
        """Recover the ``k`` original payload vectors, or None if not yet possible.

        The stored vectors are augmented ``[coefficients | payload]``; decoding
        runs Gauss-Jordan on the coefficient block and reads the payloads off
        the rows whose coefficient part became a unit vector (Section 5.1).
        """
        if not self.can_decode(k):
            return None
        payload_len = self.length - k
        if self._gf2 is not None:
            masks = self._gf2.decode_payload_masks(k)
            if masks is None:
                return None
            return [self.field.asarray(unpack_bits(m, payload_len)) for m in masks]
        basis = self.basis_matrix()
        # Gauss-Jordan on the coefficient block using generic field arithmetic
        # (basis sizes here are small: at most k + d' rows).
        rows = [self.field.asarray(row).ravel() for row in basis]
        pivot_of_col: dict[int, int] = {}
        for row_index in range(len(rows)):
            row = rows[row_index]
            # Reduce by existing pivots.
            for col, pivot_row in pivot_of_col.items():
                coeff = int(row[col])
                if coeff:
                    row = self.field.sub_arrays(
                        row, self.field.scale(rows[pivot_row], coeff)
                    )
            pivot = next((c for c in range(k) if int(row[c]) != 0), None)
            rows[row_index] = row
            if pivot is None:
                continue
            row = self.field.scale(row, self.field.inv(int(row[pivot])))
            rows[row_index] = row
            for other in range(len(rows)):
                if other != row_index:
                    coeff = int(rows[other][pivot])
                    if coeff:
                        rows[other] = self.field.sub_arrays(
                            rows[other], self.field.scale(row, coeff)
                        )
            pivot_of_col[pivot] = row_index
        if len(pivot_of_col) < k:
            return None
        payloads = []
        for dimension in range(k):
            row = rows[pivot_of_col[dimension]]
            payloads.append(self.field.asarray(row[k : k + payload_len]))
        return payloads
