"""Incremental subspace (span) maintenance for network-coding nodes.

A network-coding node's entire knowledge is the subspace spanned by the
coded vectors it has received (Section 5.1).  This module provides the
:class:`Subspace` type that maintains that span incrementally:

* insert a received vector, learning whether it was *innovative*
  (increased the dimension),
* draw a uniformly random vector from the span (the message the node sends),
* test the *sensing* relation of Definition 5.1 (is some received vector
  non-orthogonal to a given direction?), and
* decode the original tokens by Gauss-Jordan elimination once the
  coefficient part of the span is full.

For ``q = 2`` the implementation transparently uses the bit-packed
:class:`~repro.gf.gf2.GF2Basis` fast path; for general prime ``q`` it keeps
an echelon basis of numpy vectors.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..gf import GF, GF2Basis, pack_bits, unpack_bits, unpack_bits

__all__ = ["Subspace"]


class Subspace:
    """The span of a set of vectors over ``F_q``, maintained incrementally.

    Parameters
    ----------
    field:
        The prime field the vectors live over.
    length:
        Dimension of the ambient space (for augmented coding vectors this is
        ``k + d'``: coefficient header plus payload symbols).
    """

    def __init__(self, field: GF, length: int):
        if length < 0:
            raise ValueError(f"vector length must be non-negative, got {length}")
        self.field = field
        self.length = length
        self._gf2: GF2Basis | None = GF2Basis(length) if field.q == 2 else None
        # For general q: echelon rows keyed by pivot (first non-zero) column.
        self._rows: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def copy(self) -> "Subspace":
        """An independent copy of this subspace."""
        clone = Subspace(self.field, self.length)
        if self._gf2 is not None:
            clone._gf2 = self._gf2.copy()
        else:
            clone._rows = {col: row.copy() for col, row in self._rows.items()}
        return clone

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def _reduce(self, vector: np.ndarray) -> np.ndarray:
        """Reduce a vector against the echelon rows (general-q path)."""
        v = vector
        for col in range(self.length):
            coeff = int(v[col])
            if coeff == 0:
                continue
            row = self._rows.get(col)
            if row is None:
                break
            v = self.field.sub_arrays(v, self.field.scale(row, coeff))
        return v

    def insert(self, vector: Sequence[int] | np.ndarray) -> bool:
        """Insert a vector into the span; return True iff it was innovative."""
        if self._gf2 is not None:
            arr = np.asarray(vector).ravel()
            if arr.shape[0] != self.length:
                raise ValueError(
                    f"vector length {arr.shape[0]} != ambient dimension {self.length}"
                )
            return self._gf2.insert([int(x) & 1 for x in arr.tolist()])
        v = self.field.asarray(vector).ravel()
        if v.shape[0] != self.length:
            raise ValueError(
                f"vector length {v.shape[0]} != ambient dimension {self.length}"
            )
        v = self._reduce(v)
        pivot = next((i for i in range(self.length) if int(v[i]) != 0), None)
        if pivot is None:
            return False
        # Normalise so the pivot entry is 1, then eliminate it from existing rows.
        v = self.field.scale(v, self.field.inv(int(v[pivot])))
        for col, row in list(self._rows.items()):
            coeff = int(row[pivot])
            if coeff != 0:
                self._rows[col] = self.field.sub_arrays(row, self.field.scale(v, coeff))
        self._rows[pivot] = v
        return True

    def extend(self, vectors: Iterable[Sequence[int] | np.ndarray]) -> int:
        """Insert several vectors; return the number that were innovative."""
        return sum(1 for v in vectors if self.insert(v))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """Dimension of the span."""
        if self._gf2 is not None:
            return self._gf2.rank
        return len(self._rows)

    @property
    def is_empty(self) -> bool:
        """True when no non-zero vector has been received yet."""
        return self.rank == 0

    def basis_matrix(self) -> np.ndarray:
        """The current basis as a matrix (one row per basis vector)."""
        if self._gf2 is not None:
            return self._gf2.basis_matrix()
        if not self._rows:
            return self.field.zeros((0, self.length))
        rows = [self._rows[col] for col in sorted(self._rows)]
        return np.stack(rows) if rows else self.field.zeros((0, self.length))

    def contains(self, vector: Sequence[int] | np.ndarray) -> bool:
        """True iff ``vector`` lies in the span."""
        if self._gf2 is not None:
            arr = [int(x) & 1 for x in np.asarray(vector).ravel().tolist()]
            return self._gf2.contains(arr)
        v = self.field.asarray(vector).ravel()
        v = self._reduce(v)
        return all(int(x) == 0 for x in v.tolist())

    def senses(self, direction: Sequence[int] | np.ndarray) -> bool:
        """Definition 5.1: some received vector is not orthogonal to ``direction``.

        The direction may be shorter than the ambient dimension (e.g. a
        ``k``-dimensional coefficient direction against ``k + d'``-dimensional
        augmented vectors); it is implicitly zero-padded on the right, which
        matches the paper's restriction to "the first ``k`` coordinates".
        """
        direction_arr = self.field.asarray(direction).ravel()
        if direction_arr.shape[0] > self.length:
            raise ValueError("direction longer than ambient dimension")
        padded = self.field.zeros(self.length)
        padded[: direction_arr.shape[0]] = direction_arr
        if self._gf2 is not None:
            return self._gf2.senses(pack_bits(padded.tolist()))
        for row in self._rows.values():
            if self.field.dot(row, padded) != 0:
                return True
        return False

    # ------------------------------------------------------------------
    # message generation
    # ------------------------------------------------------------------
    def random_combination(self, rng: np.random.Generator) -> np.ndarray | None:
        """A uniformly random linear combination of the basis vectors.

        Returns None when the subspace is empty (the node has nothing to
        say yet); a protocol may then send nothing or a zero message.
        """
        if self.rank == 0:
            return None
        if self._gf2 is not None:
            # Fast path: XOR a uniformly random subset of the basis masks.
            masks = self._gf2.basis_masks()
            picks = rng.integers(0, 2, size=len(masks))
            combined = 0
            for pick, mask in zip(picks.tolist(), masks):
                if pick:
                    combined ^= mask
            return self.field.asarray(unpack_bits(combined, self.length))
        basis = self.basis_matrix()
        coefficients = self.field.random_elements(rng, basis.shape[0])
        combination = self.field.zeros(self.length)
        for coeff, row in zip(np.asarray(coefficients).ravel().tolist(), basis):
            coeff = int(coeff)
            if coeff:
                combination = self.field.add_arrays(
                    combination, self.field.scale(self.field.asarray(row), coeff)
                )
        return combination

    def combination_with(self, coefficients: Sequence[int]) -> np.ndarray:
        """A specific linear combination of the current basis vectors."""
        basis = self.basis_matrix()
        coeffs = list(coefficients)
        if len(coeffs) != basis.shape[0]:
            raise ValueError(
                f"need {basis.shape[0]} coefficients, got {len(coeffs)}"
            )
        combination = self.field.zeros(self.length)
        for coeff, row in zip(coeffs, basis):
            coeff = self.field.normalize(int(coeff))
            if coeff:
                combination = self.field.add_arrays(
                    combination, self.field.scale(self.field.asarray(row), coeff)
                )
        return combination

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------
    def coefficient_rank(self, k: int) -> int:
        """Rank of the span projected onto the first ``k`` coordinates."""
        if self.rank == 0 or k == 0:
            return 0
        basis = self.basis_matrix()
        projection = Subspace(self.field, k)
        for row in basis:
            projection.insert(np.asarray(row).ravel()[:k])
        return projection.rank

    def can_decode(self, k: int) -> bool:
        """True iff the first ``k`` coefficient dimensions are fully spanned."""
        if self.rank < k:
            return False
        return self.coefficient_rank(k) >= k

    def decode(self, k: int) -> list[np.ndarray] | None:
        """Recover the ``k`` original payload vectors, or None if not yet possible.

        The stored vectors are augmented ``[coefficients | payload]``; decoding
        runs Gauss-Jordan on the coefficient block and reads the payloads off
        the rows whose coefficient part became a unit vector (Section 5.1).
        """
        if not self.can_decode(k):
            return None
        basis = self.basis_matrix()
        if self._gf2 is not None:
            # Re-run full reduction on the packed representation for exactness.
            working = [pack_bits(row.tolist()) for row in basis]
        payload_len = self.length - k
        # Gauss-Jordan on the coefficient block using generic field arithmetic
        # (basis sizes here are small: at most k + d' rows).
        rows = [self.field.asarray(row).ravel() for row in basis]
        pivot_of_col: dict[int, int] = {}
        for row_index in range(len(rows)):
            row = rows[row_index]
            # Reduce by existing pivots.
            for col, pivot_row in pivot_of_col.items():
                coeff = int(row[col])
                if coeff:
                    row = self.field.sub_arrays(
                        row, self.field.scale(rows[pivot_row], coeff)
                    )
            pivot = next((c for c in range(k) if int(row[c]) != 0), None)
            rows[row_index] = row
            if pivot is None:
                continue
            row = self.field.scale(row, self.field.inv(int(row[pivot])))
            rows[row_index] = row
            for other in range(len(rows)):
                if other != row_index:
                    coeff = int(rows[other][pivot])
                    if coeff:
                        rows[other] = self.field.sub_arrays(
                            rows[other], self.field.scale(row, coeff)
                        )
            pivot_of_col[pivot] = row_index
        if len(pivot_of_col) < k:
            return None
        payloads = []
        for dimension in range(k):
            row = rows[pivot_of_col[dimension]]
            payloads.append(self.field.asarray(row[k : k + payload_len]))
        return payloads
