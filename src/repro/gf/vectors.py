"""Helpers for vectors over prime fields.

Tokens are ``d``-bit strings that the coding layer reinterprets as
``ceil(d / lg q)``-dimensional vectors over ``F_q`` (Section 5.1).  This
module provides the bit-string <-> field-vector packing used for that
reinterpretation, together with small conveniences (unit vectors,
concatenation, linear combinations) shared by the coding layer.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Iterable, Sequence

import numpy as np

from .field import GF, field_bits

__all__ = [
    "symbols_needed",
    "bits_to_vector",
    "vector_to_bits",
    "int_to_vector",
    "vector_to_int",
    "unit_vector",
    "concat_vectors",
    "linear_combination",
    "is_zero_vector",
    "vectors_equal",
]


@lru_cache(maxsize=4096)
def symbols_needed(num_bits: int, q: int) -> int:
    """Number of ``F_q`` symbols needed to encode ``num_bits`` bits.

    This is the ``d' = ceil(d / lg q)`` of Section 5.1 with ``lg`` the real
    base-2 logarithm: the smallest ``d'`` with ``q**d' >= 2**num_bits``.  (For
    non-power-of-two fields this differs from dividing by the *transmission*
    cost ``ceil(lg q)`` of a symbol, which would under-provision capacity.)
    Cached: the coding hot path asks the same (d, q) pair every round.
    """
    if num_bits < 0:
        raise ValueError(f"bit count must be non-negative, got {num_bits}")
    if num_bits == 0:
        return 0
    if q < 2:
        raise ValueError(f"field size must be >= 2, got {q}")
    length = max(1, math.ceil(num_bits / math.log2(q)))
    # Guard against floating-point underestimation near exact powers.
    while q**length < (1 << num_bits):
        length += 1
    while length > 1 and q ** (length - 1) >= (1 << num_bits):
        length -= 1
    return length


def int_to_vector(field: GF, value: int, length: int) -> np.ndarray:
    """Encode a non-negative integer as a length-``length`` base-q vector.

    The least-significant symbol comes first.  Raises if the value does not
    fit, so a token can never silently lose bits.
    """
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    out = field.zeros(length)
    remaining = int(value)
    for i in range(length):
        out[i] = remaining % field.q
        remaining //= field.q
    if remaining:
        raise ValueError(
            f"value {value} does not fit into {length} symbols over GF({field.q})"
        )
    return out


def vector_to_int(field: GF, vector: np.ndarray | Sequence[int]) -> int:
    """Inverse of :func:`int_to_vector`."""
    total = 0
    for symbol in reversed(list(np.asarray(vector).ravel().tolist())):
        total = total * field.q + int(symbol) % field.q
    return total


def bits_to_vector(field: GF, payload_bits: int, num_bits: int) -> np.ndarray:
    """Encode ``num_bits`` bits (given as an int) into field symbols."""
    length = symbols_needed(num_bits, field.q)
    if payload_bits >= (1 << num_bits) if num_bits else payload_bits > 0:
        raise ValueError(
            f"payload {payload_bits} does not fit into {num_bits} bits"
        )
    return int_to_vector(field, payload_bits, length)


def vector_to_bits(field: GF, vector: np.ndarray | Sequence[int], num_bits: int) -> int:
    """Decode field symbols back to the original bit payload.

    The decoded integer is truncated to ``num_bits`` bits, which recovers the
    exact payload produced by :func:`bits_to_vector`.
    """
    value = vector_to_int(field, vector)
    if num_bits <= 0:
        return 0
    return value & ((1 << num_bits) - 1)


def unit_vector(field: GF, length: int, index: int) -> np.ndarray:
    """The ``index``-th standard basis vector ``e_index`` of ``F_q^length``."""
    if not 0 <= index < length:
        raise IndexError(f"index {index} out of range for length {length}")
    out = field.zeros(length)
    out[index] = 1
    return out


def concat_vectors(field: GF, parts: Iterable[np.ndarray | Sequence[int]]) -> np.ndarray:
    """Concatenate field vectors (used to glue coefficient header + payload)."""
    arrays = [field.asarray(p).ravel() for p in parts]
    if not arrays:
        return field.zeros(0)
    return np.concatenate(arrays)


def linear_combination(
    field: GF,
    coefficients: Sequence[int] | np.ndarray,
    vectors: Sequence[np.ndarray],
) -> np.ndarray:
    """Compute ``sum_i coefficients[i] * vectors[i]`` over the field."""
    coeffs = list(np.asarray(coefficients).ravel().tolist())
    vecs = [field.asarray(v).ravel() for v in vectors]
    if len(coeffs) != len(vecs):
        raise ValueError(
            f"got {len(coeffs)} coefficients for {len(vecs)} vectors"
        )
    if not vecs:
        raise ValueError("cannot combine an empty collection of vectors")
    length = vecs[0].shape[0]
    for v in vecs:
        if v.shape[0] != length:
            raise ValueError("all vectors must have the same length")
    out = field.zeros(length)
    for c, v in zip(coeffs, vecs):
        c = field.normalize(int(c))
        if c == 0:
            continue
        out = field.add_arrays(out, field.scale(v, c))
    return out


def is_zero_vector(vector: np.ndarray | Sequence[int]) -> bool:
    """True iff every entry of the vector is zero."""
    arr = np.asarray(vector)
    if arr.size == 0:
        return True
    return all(int(x) == 0 for x in arr.ravel().tolist())


def vectors_equal(a: np.ndarray | Sequence[int], b: np.ndarray | Sequence[int]) -> bool:
    """Exact equality of two field vectors (shape and entries)."""
    arr_a = np.asarray(a).ravel()
    arr_b = np.asarray(b).ravel()
    if arr_a.shape != arr_b.shape:
        return False
    return all(int(x) == int(y) for x, y in zip(arr_a.tolist(), arr_b.tolist()))
