"""Prime finite fields GF(q).

The paper's algorithms interpret tokens as vectors over a finite field
``F_q`` (Section 5.1).  For most results ``q = 2`` suffices; the
derandomization of Section 6 requires very large fields ``q = n^{Omega(k)}``.
This module provides a small, dependency-free prime-field implementation
vectorised over numpy integer arrays.

Only prime fields are implemented.  The paper never requires extension
fields: it always chooses ``q`` to be a prime and represents tokens as
``ceil(d / lg q)``-dimensional vectors over ``F_q``.

Example
-------
>>> from repro.gf import GF
>>> f = GF(7)
>>> f.add(3, 5)
1
>>> f.inv(3)
5
>>> f.mul(3, f.inv(3))
1
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable

import numpy as np

__all__ = [
    "GF",
    "is_prime",
    "next_prime",
    "smallest_prime_at_least",
    "field_bits",
]


def is_prime(n: int) -> bool:
    """Return True iff ``n`` is a prime number.

    Uses deterministic Miller-Rabin with a witness set that is exact for all
    64-bit integers, and falls back to a few random witnesses above that
    (large derandomization fields can exceed 64 bits).
    """
    if n < 2:
        return False
    small_primes = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
    for p in small_primes:
        if n % p == 0:
            return n == p

    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1

    def witness(a: int) -> bool:
        """Return True if ``a`` witnesses that ``n`` is composite."""
        x = pow(a, d, n)
        if x in (1, n - 1):
            return False
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                return False
        return True

    # Deterministic for n < 3.3e24 which covers every field size we use.
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if a % n == 0:
            continue
        if witness(a):
            return False
    return True


def next_prime(n: int) -> int:
    """Return the smallest prime strictly greater than ``n``."""
    candidate = n + 1
    if candidate <= 2:
        return 2
    if candidate % 2 == 0:
        candidate += 1
    while not is_prime(candidate):
        candidate += 2
    return candidate


def smallest_prime_at_least(n: int) -> int:
    """Return the smallest prime ``p >= n``."""
    if n <= 2:
        return 2
    if is_prime(n):
        return n
    return next_prime(n)


def field_bits(q: int) -> int:
    """Number of bits needed to describe one ``F_q`` symbol (``ceil(lg q)``)."""
    if q < 2:
        raise ValueError(f"field size must be >= 2, got {q}")
    return max(1, math.ceil(math.log2(q)))


@dataclass(frozen=True)
class GF:
    """A prime finite field GF(q).

    The class is a lightweight value object: two ``GF`` instances with the
    same order compare equal and hash equally, so protocols can freely pass
    fields around or use them as dictionary keys.

    Scalar operations (``add``, ``mul``, ``inv`` ...) accept Python ints and
    return Python ints.  Array operations (``add_arrays`` etc.) accept numpy
    arrays of dtype ``int64`` (or ``object`` for very large fields) and are
    fully vectorised.
    """

    q: int

    def __post_init__(self) -> None:
        if self.q < 2:
            raise ValueError(f"field order must be >= 2, got {self.q}")
        if not is_prime(self.q):
            raise ValueError(f"field order must be prime, got {self.q}")

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        """The number of elements in the field."""
        return self.q

    @property
    def bits_per_symbol(self) -> int:
        """Bits required to transmit one field element."""
        return field_bits(self.q)

    @property
    def dtype(self) -> np.dtype:
        """Numpy dtype used for arrays of field elements.

        Fields that fit comfortably in int64 arithmetic (q^2 < 2^63) use
        ``int64``; larger fields fall back to Python-object arrays so that
        arbitrary-precision arithmetic is used.
        """
        if self.q * self.q < 2**62:
            return np.dtype(np.int64)
        return np.dtype(object)

    @property
    def uses_object_dtype(self) -> bool:
        """True when the field is too large for int64 arithmetic."""
        return self.dtype == np.dtype(object)

    # ------------------------------------------------------------------
    # scalar arithmetic
    # ------------------------------------------------------------------
    def normalize(self, a: int) -> int:
        """Reduce an integer into canonical range ``[0, q)``."""
        return int(a) % self.q

    def add(self, a: int, b: int) -> int:
        """Field addition."""
        return (int(a) + int(b)) % self.q

    def sub(self, a: int, b: int) -> int:
        """Field subtraction."""
        return (int(a) - int(b)) % self.q

    def neg(self, a: int) -> int:
        """Additive inverse."""
        return (-int(a)) % self.q

    def mul(self, a: int, b: int) -> int:
        """Field multiplication."""
        return (int(a) * int(b)) % self.q

    def pow(self, a: int, e: int) -> int:
        """Field exponentiation ``a**e``; negative exponents invert first."""
        a = self.normalize(a)
        if e < 0:
            a = self.inv(a)
            e = -e
        return pow(a, e, self.q)

    def inv(self, a: int) -> int:
        """Multiplicative inverse of ``a``.

        Raises
        ------
        ZeroDivisionError
            If ``a`` is zero in the field.
        """
        a = self.normalize(a)
        if a == 0:
            raise ZeroDivisionError("0 has no multiplicative inverse")
        # Fermat's little theorem: a^(q-2) = a^-1 for prime q.
        return pow(a, self.q - 2, self.q)

    def div(self, a: int, b: int) -> int:
        """Field division ``a / b``."""
        return self.mul(a, self.inv(b))

    # ------------------------------------------------------------------
    # array arithmetic
    # ------------------------------------------------------------------
    def asarray(self, values: Iterable[int] | np.ndarray) -> np.ndarray:
        """Convert ``values`` to a canonical numpy array of field elements."""
        arr = np.asarray(values, dtype=self.dtype)
        if arr.dtype == np.dtype(object):
            return np.vectorize(lambda x: int(x) % self.q, otypes=[object])(arr)
        return np.mod(arr, self.q)

    def zeros(self, shape) -> np.ndarray:
        """An all-zero array of field elements."""
        return np.zeros(shape, dtype=self.dtype)

    def ones(self, shape) -> np.ndarray:
        """An all-one array of field elements."""
        if self.uses_object_dtype:
            out = np.empty(shape, dtype=object)
            out[...] = 1
            return out
        return np.ones(shape, dtype=self.dtype)

    def add_arrays(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise field addition of two arrays."""
        return np.mod(np.add(a, b), self.q)

    def sub_arrays(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise field subtraction of two arrays."""
        return np.mod(np.subtract(a, b), self.q)

    def mul_arrays(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise field multiplication of two arrays."""
        return np.mod(np.multiply(a, b), self.q)

    def scale(self, a: np.ndarray, scalar: int) -> np.ndarray:
        """Multiply an array of field elements by a scalar."""
        return np.mod(np.multiply(a, self.normalize(scalar)), self.q)

    def dot(self, a: np.ndarray, b: np.ndarray) -> int:
        """Inner product of two vectors of field elements."""
        a = np.asarray(a)
        b = np.asarray(b)
        if a.shape != b.shape:
            raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
        if self.uses_object_dtype:
            total = 0
            for x, y in zip(a.ravel().tolist(), b.ravel().tolist()):
                total = (total + int(x) * int(y)) % self.q
            return total
        # Guard against int64 overflow by reducing via Python ints when the
        # accumulated dot product could exceed 2^63.
        max_terms = a.size
        if max_terms * (self.q - 1) ** 2 >= 2**62:
            total = 0
            for x, y in zip(a.ravel().tolist(), b.ravel().tolist()):
                total = (total + int(x) * int(y)) % self.q
            return total
        return int(np.mod(np.dot(a, b), self.q))

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Matrix product over the field."""
        a = np.asarray(a)
        b = np.asarray(b)
        if self.uses_object_dtype or (
            max(a.shape[-1], 1) * (self.q - 1) ** 2 >= 2**62
        ):
            # Slow exact path for very large fields.
            a2 = np.atleast_2d(a)
            b2 = np.atleast_2d(b)
            rows, inner = a2.shape
            inner2, cols = b2.shape
            if inner != inner2:
                raise ValueError(f"shape mismatch: {a.shape} @ {b.shape}")
            out = np.empty((rows, cols), dtype=object)
            for i in range(rows):
                for j in range(cols):
                    total = 0
                    for t in range(inner):
                        total = (total + int(a2[i, t]) * int(b2[t, j])) % self.q
                    out[i, j] = total
            return out
        return np.mod(a @ b, self.q)

    def random_elements(self, rng: np.random.Generator, shape) -> np.ndarray:
        """Uniformly random field elements with the given shape."""
        if self.uses_object_dtype:
            flat_count = int(np.prod(shape)) if shape else 1
            bits = self.q.bit_length()
            values = []
            while len(values) < flat_count:
                # Rejection sampling from [0, 2^bits) to stay uniform.
                candidate = int.from_bytes(rng.bytes((bits + 7) // 8), "big")
                candidate &= (1 << bits) - 1
                if candidate < self.q:
                    values.append(candidate)
            out = np.empty(flat_count, dtype=object)
            out[:] = values
            return out.reshape(shape)
        return rng.integers(0, self.q, size=shape, dtype=np.int64)

    def random_nonzero(self, rng: np.random.Generator) -> int:
        """A uniformly random non-zero field element."""
        if self.q == 2:
            return 1
        if self.uses_object_dtype:
            while True:
                value = int(self.random_elements(rng, ()))
                if value != 0:
                    return value
        return int(rng.integers(1, self.q))

    # ------------------------------------------------------------------
    # niceties
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GF({self.q})"

    def __contains__(self, value: int) -> bool:
        try:
            v = int(value)
        except (TypeError, ValueError):
            return False
        return 0 <= v < self.q


@lru_cache(maxsize=None)
def _cached_field(q: int) -> GF:
    return GF(q)


def get_field(q: int) -> GF:
    """Return a cached ``GF(q)`` instance (fields are immutable)."""
    return _cached_field(q)


#: The binary field, by far the most common choice in the paper.
GF2 = get_field(2)
