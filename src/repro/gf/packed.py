"""Batched GF(2) elimination: all nodes' echelon bases as stacked uint64 arrays.

:class:`~repro.gf.gf2.GF2Basis` maintains one node's received span as Python
integer bit masks — perfect for a single node, but a whole-network coded
round then costs ``n`` Python-level ``insert`` / ``random_combination`` calls.
This module stores *every* node's basis in one stacked ``uint64`` array with
per-node rank / pivot-table / sorted-order vectors, so the three steps of a
network-coded round become a handful of numpy passes:

1. **compose** — one random (or pre-committed) pick matrix combined against
   all bases at once (:meth:`GF2BasisBatch.compose_random` /
   :meth:`GF2BasisBatch.combine_sorted`);
2. **insert** — word-parallel XOR elimination of one incoming vector per
   node, executed in lockstep across the network
   (:meth:`GF2BasisBatch.insert_batch`), with vectorised innovative-flag
   extraction;
3. **decode readiness** — incremental coefficient-rank counters via stacked
   projection bases (:meth:`GF2BasisBatch.coefficient_ranks`), plus a final
   vectorised Gauss-Jordan :meth:`GF2BasisBatch.decode_payload_masks_batch`
   producing every node's payload masks at once.

The batch is *bit-exact* with the per-node implementation: feeding the same
insert sequence to a :class:`GF2Basis` and to one row of the batch yields the
same basis rows, the same innovative flags, the same coefficient ranks and
the same decoded payloads (hypothesis-tested in ``tests/test_gf_packed.py``).
That is what lets the coded kernels replay the object engines' rng streams
verbatim — a composed combination is the XOR of the *same* basis rows in the
same sorted order the per-node code uses.

Saturation short-circuit: when a basis' rank reaches ``span_cap`` (by default
the ambient ``length``, i.e. genuine saturation; kernels that know all
traffic lives in a ``k``-dimensional source span pass ``span_cap=k``),
further inserts skip elimination entirely — every incoming vector must
already be in the span.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "GF2BasisBatch",
    "PICK_REFILL_BYTES",
    "masks_to_packed",
    "packed_to_mask",
    "packed_to_masks",
]

#: Bytes drawn per rng refill of a compose pick-bit buffer.  One generator
#: call is amortised over many composes; the refill size and consumption
#: order are part of the cross-engine determinism contract (the scalar
#: :class:`~repro.coding.subspace.Subspace` replays the same schedule).
PICK_REFILL_BYTES = 512


_U32 = np.uint64(0xFFFFFFFF)


def _word_bit_length(words: np.ndarray) -> np.ndarray:
    """Vectorised ``int.bit_length`` for a uint64 array (0 for zero words).

    ``frexp`` of an exactly-representable positive integer returns its bit
    length as the exponent; both 32-bit halves are < 2^53, so the conversion
    to float64 is exact.
    """
    hi = (words >> np.uint64(32)).astype(np.float64)
    lo = (words & _U32).astype(np.float64)
    return np.where(hi > 0, np.frexp(hi)[1] + 32, np.frexp(lo)[1])


def _leading_bits(vectors: np.ndarray) -> np.ndarray:
    """Highest set bit index of each packed row (-1 for all-zero rows)."""
    m, words = vectors.shape
    nonzero = vectors != 0
    any_nonzero = nonzero.any(axis=1)
    # argmax over the reversed word axis finds the highest non-zero word.
    top_word = words - 1 - np.argmax(nonzero[:, ::-1], axis=1)
    top = vectors[np.arange(m), top_word]
    lead = top_word * 64 + _word_bit_length(top) - 1
    return np.where(any_nonzero, lead, -1)


def _lowest_bits(vectors: np.ndarray) -> np.ndarray:
    """Lowest set bit index of each packed row (-1 for all-zero rows)."""
    m, words = vectors.shape
    nonzero = vectors != 0
    any_nonzero = nonzero.any(axis=1)
    low_word = np.argmax(nonzero, axis=1)
    w = vectors[np.arange(m), low_word]
    isolated = w & (np.uint64(0) - w)  # two's-complement lowest-bit isolation
    low = low_word * 64 + _word_bit_length(isolated) - 1
    return np.where(any_nonzero, low, -1)


def masks_to_packed(masks: Sequence[int], words: int) -> np.ndarray:
    """Pack Python integer bit masks into an ``(m, words)`` uint64 array."""
    if not masks:
        return np.zeros((0, words), dtype=np.uint64)
    nbytes = words * 8
    buffer = b"".join(int(mask).to_bytes(nbytes, "little") for mask in masks)
    return (
        np.frombuffer(buffer, dtype="<u8").reshape(len(masks), words).copy()
    )


def packed_to_mask(row: np.ndarray) -> int:
    """One packed uint64 row back to a Python integer bit mask."""
    return int.from_bytes(np.ascontiguousarray(row, dtype="<u8").tobytes(), "little")


def packed_to_masks(rows: np.ndarray) -> list[int]:
    """Each row of an ``(m, words)`` packed array as a Python integer mask."""
    data = np.ascontiguousarray(rows, dtype="<u8").tobytes()
    stride = rows.shape[1] * 8
    return [
        int.from_bytes(data[i * stride : (i + 1) * stride], "little")
        for i in range(rows.shape[0])
    ]


class GF2BasisBatch:
    """``n`` independent :class:`~repro.gf.gf2.GF2Basis` instances, stacked.

    Parameters
    ----------
    n:
        Number of bases (one per network node).
    length:
        Ambient dimension shared by all bases.
    span_cap:
        Upper bound on any basis' reachable rank.  Defaults to ``length``
        (always sound).  A caller that *knows* all inserted vectors lie in a
        ``c``-dimensional subspace (e.g. RLNC traffic generated from ``c``
        source vectors) may pass ``c`` so saturated bases skip elimination.

    The storage layout:

    * ``rows`` — ``(n, words, capacity)`` uint64 (word-major, so the
      select-and-XOR passes reduce over the contiguous trailing axis);
      column ``j`` of basis ``u`` is the ``j``-th *inserted*
      (post-reduction) basis row, bit-identical to the ``j``-th value added
      to ``GF2Basis._rows``.
    * ``ranks`` — per-basis rank.
    * pivot table — per basis, leading-bit -> row index (or -1).
    * sorted order — per basis, row index -> descending-leading-bit position,
      maintained incrementally so composing against ``basis_masks()`` order
      (what the per-node code does) is a gather, not a sort.
    """

    def __init__(self, n: int, length: int, *, span_cap: int | None = None):
        if n < 0:
            raise ValueError(f"batch size must be non-negative, got {n}")
        if length < 0:
            raise ValueError(f"vector length must be non-negative, got {length}")
        self.n = n
        self.length = length
        self.words = max(1, (length + 63) // 64)
        self.span_cap = length if span_cap is None else min(int(span_cap), length)
        self._capacity = max(1, min(self.span_cap, 16))
        # Transposed storage: reducing over the trailing (contiguous) row
        # axis is what lets numpy SIMD-vectorise the select-and-XOR passes.
        self.rows = np.zeros((n, self.words, self._capacity), dtype=np.uint64)
        self._rank = np.zeros(n, dtype=np.int64)
        self._pivot_row = np.full((n, max(1, length)), -1, dtype=np.int64)
        #: Leading bit of each stored row (-1 for unused slots): the pivot
        #: positions the reduction pass tests the incoming vectors against.
        self._lead = np.full((n, self._capacity), -1, dtype=np.int64)
        #: row index -> position in descending-leading-bit order (valid for
        #: row indices < rank; other entries are garbage and masked on use).
        self._pos = np.zeros((n, self._capacity), dtype=np.int64)
        #: Per-basis buffered compose pick bits (value, bit count).
        self._pick_buffer = [0] * n
        self._pick_bits = [0] * n
        self._projections: dict[int, "GF2BasisBatch"] = {}

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    @property
    def ranks(self) -> np.ndarray:
        """Per-basis rank (a live read-only view; do not mutate)."""
        return self._rank

    def _grow(self, needed: int) -> None:
        capacity = self._capacity
        while capacity < needed:
            capacity = min(max(capacity * 2, needed), self.span_cap)
        if capacity == self._capacity:
            return
        extra = capacity - self._capacity
        self.rows = np.concatenate(
            [self.rows, np.zeros((self.n, self.words, extra), dtype=np.uint64)], axis=2
        )
        self._lead = np.concatenate(
            [self._lead, np.full((self.n, extra), -1, dtype=np.int64)], axis=1
        )
        self._pos = np.concatenate(
            [self._pos, np.zeros((self.n, extra), dtype=np.int64)], axis=1
        )
        self._capacity = capacity

    def _truncated(self, vectors: np.ndarray, k: int) -> np.ndarray:
        """The low-``k``-bit projection of packed rows, in ``ceil(k/64)`` words."""
        words_k = max(1, (k + 63) // 64)
        out = vectors[:, :words_k].copy()
        rem = k & 63
        if rem:
            out[:, words_k - 1] &= np.uint64((1 << rem) - 1)
        elif k == 0:
            out[:] = 0
        return out

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def insert_batch(self, node_ids: np.ndarray, vectors: np.ndarray) -> np.ndarray:
        """Insert one vector per listed basis, in lockstep; return innovative flags.

        ``vectors`` is ``(len(node_ids), words)`` uint64.  Exactly replicates
        ``GF2Basis.insert`` per (node, vector) pair: the mutually-reduced
        invariant makes this two vectorised passes —

        1. *reduce*: the pivot rows to XOR into each vector are selected by
           the vector's bits at its basis' pivot positions (rows carry no
           foreign pivot bits, so no reduction chain exists), and
        2. *back-eliminate*: each surviving vector's new leading bit is
           cleared from the rows that carry it

        — with no data-dependent inner loop.

        ``node_ids`` *may* repeat: repeated entries insert into the same
        basis in listed order (how a round's whole inbox is delivered in one
        call).  Full reduction yields the canonical residual — it depends
        only on the span and pivot set, not on the row representatives — so
        one shared pass 1 against the pre-call basis is exact, and a later
        duplicate only needs fixing up against the rows its own basis gained
        *within* this call (a short wave loop over collision depth).
        """
        node_ids = np.asarray(node_ids, dtype=np.int64)
        m = node_ids.size
        innovative = np.zeros(m, dtype=bool)
        if m == 0:
            return innovative
        # Saturation short-circuit: a full-rank basis cannot grow, so the
        # incoming vector necessarily reduces to zero.
        open_sel = np.flatnonzero(self._rank[node_ids] < self.span_cap)
        if open_sel.size == 0:
            return innovative
        nodes = node_ids[open_sel]
        v = vectors[open_sel].astype(np.uint64, copy=True)
        width = int(self._rank[nodes].max())
        if width:
            # Pass 1 — reduce: select each basis' rows whose pivot bit is set
            # in the incoming vector, XOR them all in at once.  When the
            # batch covers the whole network in uid order (a common delivery
            # shape), row access is a view, not a large gather.
            whole = nodes.size == self.n and bool((nodes == np.arange(self.n)).all())
            leads = self._lead[:, :width] if whole else self._lead[nodes, :width]
            rows = self.rows[:, :, :width] if whole else self.rows[nodes][:, :, :width]
            valid = leads >= 0
            safe = np.where(valid, leads, 0)
            a = np.arange(nodes.size)
            bits = (
                v[a[:, None], safe >> 6] >> (safe & 63).astype(np.uint64)
            ) & np.uint64(1)
            picked = (bits.astype(bool) & valid).astype(np.uint64)
            if picked.any():
                # Multiply-then-reduce over the contiguous row axis: the
                # branch-free form numpy vectorises best.
                v ^= np.bitwise_xor.reduce(rows * picked[:, None, :], axis=2)
        lead = _leading_bits(v)
        pending = np.flatnonzero(lead >= 0)
        start_rank = self._rank[nodes].copy()
        while pending.size:
            # First listed occurrence per basis appends this wave; later
            # duplicates are reduced against every row their basis gained in
            # this call (those rows are mutually reduced with the whole
            # basis, so one pass restores the canonical residual) and
            # re-enter the next wave.  Wave count = max per-basis number of
            # innovative vectors, not inbox depth.
            _, first = np.unique(nodes[pending], return_index=True)
            if first.size == pending.size:
                ready = pending
                rest = pending[:0]
            else:
                mask = np.zeros(pending.size, dtype=bool)
                mask[first] = True
                ready, rest = pending[mask], pending[~mask]
            # Defensive cap clamp (mirrors the scalar short-circuit; a true
            # span_cap makes residuals vanish before this can trigger).
            fits = self._rank[nodes[ready]] < self.span_cap
            ready = ready[fits]
            if ready.size:
                self._append_rows(nodes[ready], v[ready], lead[ready])
                innovative[open_sel[ready]] = True
            if rest.size == 0:
                break
            rest_nodes = nodes[rest]
            low = start_rank[rest]
            high = self._rank[rest_nodes]
            added_width = int((high - low).max())
            if added_width:
                slots = low[:, None] + np.arange(added_width)[None, :]
                in_window = slots < high[:, None]
                safe_slots = np.where(in_window, slots, 0)
                added_leads = self._lead[rest_nodes[:, None], safe_slots]
                safe_leads = np.where(in_window, added_leads, 0)
                hit = (
                    v[rest[:, None], safe_leads >> 6]
                    >> (safe_leads & 63).astype(np.uint64)
                ) & np.uint64(1)
                picked = (hit.astype(bool) & in_window).astype(np.uint64)
                if picked.any():
                    window = self.rows[
                        rest_nodes[:, None, None],
                        np.arange(self.words)[None, :, None],
                        safe_slots[:, None, :],
                    ]
                    v[rest] ^= np.bitwise_xor.reduce(
                        window * picked[:, None, :], axis=2
                    )
            lead[rest] = _leading_bits(v[rest])
            pending = rest[lead[rest] >= 0]
        return innovative

    def _append_rows(self, nodes: np.ndarray, v: np.ndarray, lead: np.ndarray) -> None:
        """Store fully-reduced rows as new basis rows (one per listed node)."""
        r = self._rank[nodes]
        width = int(r.max())
        slots = np.arange(width)[None, :] if width else None
        if width:
            # Pass 2 — back-eliminate: clear each new pivot bit from the rows
            # that carry it, preserving the mutually-reduced invariant.  Only
            # the word holding the pivot bit is gathered.
            carrier_word = self.rows[nodes[:, None], (lead >> 6)[:, None], slots]
            carrier = (carrier_word >> (lead & 63).astype(np.uint64)[:, None]) & np.uint64(1)
            hits = carrier.astype(bool) & (slots < r[:, None])
            hit_rows, hit_cols = np.nonzero(hits)
            if hit_rows.size:
                self.rows[nodes[hit_rows], :, hit_cols] ^= v[hit_rows]
        if width + 1 > self._capacity:
            self._grow(width + 1)
        self.rows[nodes, :, r] = v
        self._pivot_row[nodes, lead] = r
        # Sorted-order maintenance: the new row's descending-lead position is
        # the number of existing leads above it; rows at or below that
        # position shift down by one.
        if width:
            position = (
                (self._lead[nodes, :width] > lead[:, None]) & (slots < r[:, None])
            ).sum(axis=1)
        else:
            position = np.zeros(nodes.size, dtype=np.int64)
        self._lead[nodes, r] = lead
        if width:
            # Only row indices < rank hold meaningful positions; the shift
            # never needs to touch slots beyond the current maximum rank.
            pos_rows = self._pos[nodes, :width]
            self._pos[nodes, :width] = pos_rows + (pos_rows >= position[:, None])
        self._pos[nodes, r] = position
        self._rank[nodes] = r + 1
        for k, projection in self._projections.items():
            projection.insert_batch(nodes, self._truncated(v, k))

    def lift_masks(self, per_node_masks: Sequence[Sequence[int]]) -> None:
        """Replay per-node mask sequences (e.g. existing ``GF2Basis`` rows).

        Entry ``u`` of ``per_node_masks`` is inserted into basis ``u`` in
        order; used to lift already-built per-node bases into the batch.
        """
        if len(per_node_masks) != self.n:
            raise ValueError(f"need {self.n} mask sequences, got {len(per_node_masks)}")
        depth = max((len(masks) for masks in per_node_masks), default=0)
        for j in range(depth):
            # repro: allow[REP401] loop is over basis depth (<= rank), each pass batches all n nodes
            nodes = np.array(
                [u for u, masks in enumerate(per_node_masks) if len(masks) > j],
                dtype=np.int64,
            )
            vectors = masks_to_packed(
                [per_node_masks[u][j] for u in nodes.tolist()], self.words
            )
            self.insert_batch(nodes, vectors)

    # ------------------------------------------------------------------
    # composition
    # ------------------------------------------------------------------
    def combine_sorted(
        self, picks_sorted: np.ndarray, node_ids: np.ndarray | None = None
    ) -> np.ndarray:
        """XOR-combine each basis' rows selected by a sorted-order pick matrix.

        ``picks_sorted[u, s]`` selects the basis row at descending-leading-bit
        position ``s`` — the order ``GF2Basis.basis_masks()`` returns, i.e.
        the order both ``random_combination_mask`` and
        ``combination_mask_with`` apply coefficients in.  Entries at
        positions >= rank are ignored.  The result is always ``(n, words)``;
        when ``node_ids`` is given only those rows are computed (rows of
        unlisted bases stay zero) — what lets a kernel combine lazily for
        just the senders whose message anyone still needs.
        """
        combined = np.zeros((self.n, self.words), dtype=np.uint64)
        if node_ids is None:
            ranks = self._rank
            pos_all = self._pos
            rows_all = self.rows
            out = combined
        else:
            node_ids = np.asarray(node_ids, dtype=np.int64)
            ranks = self._rank[node_ids]
            pos_all = self._pos[node_ids]
            rows_all = self.rows[node_ids]
            picks_sorted = picks_sorted[node_ids]
            out = np.zeros((node_ids.size, self.words), dtype=np.uint64)
        max_rank = int(ranks.max()) if ranks.size else 0
        if max_rank == 0:
            return combined
        width = picks_sorted.shape[1]
        if width < max_rank:
            raise ValueError(f"pick matrix width {width} < max rank {max_rank}")
        # Map picks from sorted positions onto insertion-order rows.
        pos = np.minimum(pos_all[:, :max_rank], width - 1)
        picked = np.take_along_axis(
            np.ascontiguousarray(picks_sorted) != 0, pos, axis=1
        )
        picked &= np.arange(max_rank)[None, :] < ranks[:, None]
        out[:] = np.bitwise_xor.reduce(
            rows_all[:, :, :max_rank] * picked.astype(np.uint64)[:, None, :], axis=2
        )
        if node_ids is not None:
            combined[node_ids] = out
        return combined

    def draw_random_picks(
        self,
        rngs: Sequence[np.random.Generator],
        node_ids: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw every (listed) basis' random non-zero pick vector at once.

        Replays ``Subspace.draw_pick_mask`` bit-for-bit: pick bits come from
        a per-basis buffer refilled with ``rng.bytes(PICK_REFILL_BYTES)``
        (one generator call amortised over many composes), with the all-zero
        draw resampled — basis rows are independent, so the combination is
        zero iff no row is picked.  Returns ``(active, picks)``; feed the
        picks to :meth:`combine_sorted` — possibly lazily and for a subset,
        the XOR work is independent of the rng stream.
        """
        ranks = self._rank
        active = np.zeros(self.n, dtype=bool)
        max_rank = int(ranks.max()) if self.n else 0
        picks = np.zeros((self.n, max(1, max_rank)), dtype=np.uint8)
        if max_rank == 0:
            return active, picks
        uids = np.flatnonzero(ranks > 0) if node_ids is None else np.asarray(node_ids)
        ranks_list = ranks.tolist()
        buffers = self._pick_buffer
        counts = self._pick_bits
        refill_bits = 8 * PICK_REFILL_BYTES
        width_bytes = (max_rank + 7) // 8
        drawn_uids: list[int] = []
        drawn: list[bytes] = []
        for uid in uids.tolist():
            r = ranks_list[uid]
            if r == 0:
                continue
            buffer = buffers[uid]
            bits = counts[uid]
            low = (1 << r) - 1
            while True:
                while bits < r:
                    refill = int.from_bytes(rngs[uid].bytes(PICK_REFILL_BYTES), "little")
                    buffer |= refill << bits
                    bits += refill_bits
                pick = buffer & low
                buffer >>= r
                bits -= r
                if pick:
                    break
            buffers[uid] = buffer
            counts[uid] = bits
            drawn_uids.append(uid)
            drawn.append(pick.to_bytes(width_bytes, "little"))
            active[uid] = True
        if drawn_uids:
            rows = np.unpackbits(
                np.frombuffer(b"".join(drawn), dtype=np.uint8).reshape(
                    len(drawn), width_bytes
                ),
                axis=1,
                count=max_rank,
                bitorder="little",
            )
            picks[drawn_uids] = rows
        return active, picks

    def compose_random(
        self,
        rngs: Sequence[np.random.Generator],
        node_ids: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw and combine every basis' random non-zero combination at once.

        ``(active, combined)``: ``active[u]`` is False for empty (or
        unlisted) bases, whose ``combined`` rows are zero.
        """
        active, picks = self.draw_random_picks(rngs, node_ids)
        if not active.any():
            return active, np.zeros((self.n, self.words), dtype=np.uint64)
        combined = self.combine_sorted(picks, node_ids)
        combined[~active] = 0
        return active, combined

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def coefficient_ranks(self, k: int) -> np.ndarray:
        """Rank of every basis projected onto its first ``k`` coordinates.

        Incremental exactly like ``GF2Basis.coefficient_rank``: the stacked
        projection for each queried ``k`` is materialised once (replaying the
        stored rows in insertion order) and fed one masked row per subsequent
        innovative insert.
        """
        if k <= 0:
            return np.zeros(self.n, dtype=np.int64)
        if k >= self.length:
            return self._rank.copy()
        projection = self._projections.get(k)
        if projection is None:
            projection = GF2BasisBatch(self.n, k)
            for j in range(int(self._rank.max()) if self.n else 0):
                # repro: allow[REP401] replay is per depth level; every insert batches all live nodes
                nodes = np.flatnonzero(self._rank > j)
                projection.insert_batch(
                    nodes, self._truncated(self.rows[nodes, :, j], k)
                )
            self._projections[k] = projection
        return projection._rank

    def row_masks(self, uid: int) -> list[int]:
        """Basis ``uid``'s rows as Python integer masks, in insertion order."""
        r = int(self._rank[uid])
        return packed_to_masks(self.rows[uid, :, :r].T)

    def basis_masks(self, uid: int) -> list[int]:
        """Basis ``uid``'s rows in descending-leading-bit order (as ints)."""
        r = int(self._rank[uid])
        order = np.argsort(self._pos[uid, :r], kind="stable")
        return packed_to_masks(self.rows[uid][:, order].T)

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------
    def decode_payload_masks_batch(
        self, k: int, node_ids: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised Gauss-Jordan decode of the listed bases at once.

        Returns ``(ok, payloads)``: ``ok[i]`` is True iff basis
        ``node_ids[i]``'s coefficient block (its first ``k`` coordinates)
        reached full rank, and ``payloads[i, d]`` is then the packed payload
        (coordinates ``k..length-1``) of the span's combination whose
        coefficient part is ``e_d`` — bit-identical to
        ``GF2Basis.decode_payload_masks``, including its insertion-order row
        scan and its early stop at ``k`` pivots.
        """
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        node_ids = (
            np.arange(self.n, dtype=np.int64)
            if node_ids is None
            else np.asarray(node_ids, dtype=np.int64)
        )
        m = node_ids.size
        payload_words = max(1, (max(0, self.length - k) + 63) // 64)
        if k == 0:
            return np.ones(m, dtype=bool), np.zeros((m, 0, payload_words), np.uint64)
        # Pivot rows are stored by their pivot bit, which is exactly the
        # dimension order the decoded payloads come out in.
        pivot_rows = np.zeros((m, k, self.words), dtype=np.uint64)
        pivot_exists = np.zeros((m, k), dtype=bool)
        counts = np.zeros(m, dtype=np.int64)
        ranks = self._rank[node_ids]
        max_rank = int(ranks.max()) if m else 0
        for j in range(max_rank):
            act = np.flatnonzero((ranks > j) & (counts < k))
            if act.size == 0:
                continue
            vec = np.ascontiguousarray(self.rows[node_ids[act], :, j])
            # Reduce by the existing pivot rows.  Pivot rows are mutually
            # reduced (no pivot row carries another pivot's bit), so the
            # per-node sequential loop of the scalar code collapses to one
            # masked XOR-reduce.
            selectors = self._coefficient_bits(vec, k) & pivot_exists[act]
            if selectors.any():
                vec ^= np.bitwise_xor.reduce(
                    pivot_rows[act] * selectors.astype(np.uint64)[:, :, None],
                    axis=1,
                )
            coeff = self._truncated(vec, k)
            pivot = _lowest_bits(coeff)
            good = pivot >= 0
            if not good.any():
                continue
            act, vec, pivot = act[good], vec[good], pivot[good]
            # Back-eliminate: clear the new pivot bit from existing pivot rows.
            word = (pivot >> 6)[:, None, None]
            shift = (pivot & 63).astype(np.uint64)[:, None]
            carrier = (
                np.take_along_axis(pivot_rows[act], word, axis=2)[:, :, 0] >> shift
            ) & np.uint64(1)
            hit_rows, hit_cols = np.nonzero(carrier.astype(bool) & pivot_exists[act])
            if hit_rows.size:
                pivot_rows[act[hit_rows], hit_cols] ^= vec[hit_rows]
            pivot_rows[act, pivot] = vec
            pivot_exists[act, pivot] = True
            counts[act] += 1
        ok = counts >= k
        payloads = self._shift_right(pivot_rows.reshape(m * k, self.words), k)
        return ok, payloads[:, :payload_words].reshape(m, k, payload_words)

    def _coefficient_bits(self, vectors: np.ndarray, k: int) -> np.ndarray:
        """The low ``k`` bits of each packed row as a boolean ``(m, k)`` matrix."""
        m = vectors.shape[0]
        words_k = max(1, (k + 63) // 64)
        bits = np.unpackbits(
            np.ascontiguousarray(vectors[:, :words_k]).view(np.uint8).reshape(m, -1),
            axis=1,
            count=k,
            bitorder="little",
        )
        return bits.astype(bool)

    def _shift_right(self, vectors: np.ndarray, k: int) -> np.ndarray:
        """Right-shift packed rows by ``k`` bits (dropping the low block)."""
        word_shift, bit_shift = divmod(k, 64)
        m, words = vectors.shape
        tail = vectors[:, word_shift:]
        if tail.shape[1] == 0:
            return np.zeros((m, 1), dtype=np.uint64)
        if bit_shift == 0:
            return tail.copy()
        carry = np.zeros_like(tail)
        carry[:, :-1] = tail[:, 1:] << np.uint64(64 - bit_shift)
        return (tail >> np.uint64(bit_shift)) | carry
