"""Bit-packed GF(2) linear algebra fast path.

For ``q = 2`` (the common case in the paper — "replace linear combinations
by XORs", Section 5.1) Gaussian elimination over generic field arrays is
much slower than necessary.  This module stores each GF(2) vector as a
Python integer bit mask and implements an incremental XOR-echelon basis,
which is what the coding layer's subspace maintenance actually needs: every
received coded vector is either reduced to zero (no new information) or
inserted as a new basis row.

The representation is deliberately simple: a vector of length ``n`` is an
``int`` whose bit ``i`` is the ``i``-th coordinate.  All operations are
O(n/64) thanks to Python's big-int XOR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "pack_bits",
    "unpack_bits",
    "GF2Basis",
]


def pack_bits(bits: Sequence[int] | np.ndarray) -> int:
    """Pack a 0/1 sequence (coordinate 0 first) into an integer mask."""
    mask = 0
    for i, bit in enumerate(np.asarray(bits).ravel().tolist()):
        if int(bit) & 1:
            mask |= 1 << i
    return mask


def unpack_bits(mask: int, length: int) -> np.ndarray:
    """Unpack an integer mask into a length-``length`` 0/1 numpy vector."""
    out = np.zeros(length, dtype=np.int64)
    remaining = mask
    index = 0
    while remaining and index < length:
        if remaining & 1:
            out[index] = 1
        remaining >>= 1
        index += 1
    return out


@dataclass
class GF2Basis:
    """An incrementally-maintained echelon basis of a GF(2) subspace.

    Rows are stored as integer bit masks in echelon form keyed by their
    leading (highest set) bit, so insertion and membership tests are
    O(rank * length/64).

    This mirrors exactly what a network-coding node does with its received
    messages: keep a basis of the span, detect whether a new message is
    innovative, and decode by back-substitution once the span is full.
    """

    length: int
    _rows: dict[int, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # insertion / reduction
    # ------------------------------------------------------------------
    def _reduce(self, mask: int) -> int:
        """Reduce ``mask`` against the current basis rows."""
        while mask:
            lead = mask.bit_length() - 1
            row = self._rows.get(lead)
            if row is None:
                return mask
            mask ^= row
        return 0

    def insert(self, vector: int | Sequence[int] | np.ndarray) -> bool:
        """Insert a vector; return True iff it was innovative (increased rank)."""
        mask = vector if isinstance(vector, int) else pack_bits(vector)
        reduced = self._reduce(mask)
        if reduced == 0:
            return False
        self._rows[reduced.bit_length() - 1] = reduced
        return True

    def contains(self, vector: int | Sequence[int] | np.ndarray) -> bool:
        """True iff the vector lies in the span of the basis."""
        mask = vector if isinstance(vector, int) else pack_bits(vector)
        return self._reduce(mask) == 0

    def extend(self, vectors: Iterable[int | Sequence[int] | np.ndarray]) -> int:
        """Insert many vectors; return how many were innovative."""
        added = 0
        for v in vectors:
            if self.insert(v):
                added += 1
        return added

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """Dimension of the spanned subspace."""
        return len(self._rows)

    def basis_masks(self) -> list[int]:
        """The basis rows as integer masks, highest leading bit first."""
        return [self._rows[lead] for lead in sorted(self._rows, reverse=True)]

    def basis_matrix(self) -> np.ndarray:
        """The basis as a 0/1 numpy matrix with one row per basis vector."""
        masks = self.basis_masks()
        out = np.zeros((len(masks), self.length), dtype=np.int64)
        for i, mask in enumerate(masks):
            out[i] = unpack_bits(mask, self.length)
        return out

    def senses(self, direction: int | Sequence[int] | np.ndarray) -> bool:
        """True iff some basis vector is *not* orthogonal to ``direction``.

        This is the "sensing" relation of Definition 5.1 specialised to
        GF(2): orthogonality is parity of the AND of the two masks.
        """
        mask = direction if isinstance(direction, int) else pack_bits(direction)
        for row in self._rows.values():
            if bin(row & mask).count("1") % 2 == 1:
                return True
        return False

    def reduced_echelon_matrix(self) -> np.ndarray:
        """Fully reduced (Gauss-Jordan) basis matrix, used for decoding."""
        masks = self.basis_masks()
        # Back-substitute so each leading bit appears in exactly one row.
        for i in range(len(masks)):
            lead = masks[i].bit_length() - 1
            for j in range(len(masks)):
                if i != j and (masks[j] >> lead) & 1:
                    masks[j] ^= masks[i]
        out = np.zeros((len(masks), self.length), dtype=np.int64)
        for i, mask in enumerate(masks):
            out[i] = unpack_bits(mask, self.length)
        return out

    def copy(self) -> "GF2Basis":
        """An independent copy of this basis."""
        clone = GF2Basis(self.length)
        clone._rows = dict(self._rows)
        return clone
