"""Bit-packed GF(2) linear algebra fast path.

For ``q = 2`` (the common case in the paper — "replace linear combinations
by XORs", Section 5.1) Gaussian elimination over generic field arrays is
much slower than necessary.  This module stores each GF(2) vector as a
Python integer bit mask and implements an incremental XOR-echelon basis,
which is what the coding layer's subspace maintenance actually needs: every
received coded vector is either reduced to zero (no new information) or
inserted as a new basis row.

The representation is deliberately simple: a vector of length ``n`` is an
``int`` whose bit ``i`` is the ``i``-th coordinate.  All operations are
O(n/64) thanks to Python's big-int XOR.

This module is the bottom layer of the *mask-native fast path*: the coding
layer (:mod:`repro.coding.subspace`, :mod:`repro.coding.rlnc`) keeps a coded
vector as a single integer mask all the way from ``compose`` to ``deliver``,
so ``pack_bits`` / ``unpack_bits`` only run at genuine array boundaries
(and are vectorised via ``np.packbits`` / ``np.unpackbits`` for those).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "pack_bits",
    "unpack_bits",
    "GF2Basis",
]


def pack_bits(bits: Sequence[int] | np.ndarray) -> int:
    """Pack a 0/1 sequence (coordinate 0 first) into an integer mask.

    Vectorised through ``np.packbits``; entries are reduced mod 2 so any
    integer sequence is a valid input.
    """
    arr = np.asarray(bits).ravel()
    if arr.size == 0:
        return 0
    if arr.dtype == np.dtype(object):
        # Arbitrary-precision entries (very large fields): reduce in Python.
        arr = np.array([int(b) & 1 for b in arr.tolist()], dtype=np.uint8)
    else:
        arr = (arr.astype(np.int64, copy=False) & 1).astype(np.uint8)
    return int.from_bytes(np.packbits(arr, bitorder="little").tobytes(), "little")


def unpack_bits(mask: int, length: int) -> np.ndarray:
    """Unpack an integer mask into a length-``length`` 0/1 numpy vector.

    Vectorised through ``np.unpackbits``; bits beyond ``length`` are ignored.
    """
    if length <= 0:
        return np.zeros(max(0, length), dtype=np.int64)
    mask = int(mask) & ((1 << length) - 1)
    data = np.frombuffer(mask.to_bytes((length + 7) // 8, "little"), dtype=np.uint8)
    return np.unpackbits(data, count=length, bitorder="little").astype(np.int64)


@dataclass
class GF2Basis:
    """An incrementally-maintained echelon basis of a GF(2) subspace.

    Rows are stored as integer bit masks keyed by their leading (highest
    set) bit and kept *mutually reduced* (Gauss-Jordan maintained: no row
    carries another row's leading bit).  That invariant turns reduction into
    a single fixed pass — the pivot rows to XOR are exactly the incoming
    mask's pivot bits, with no data-dependent reduction chain — at the cost
    of back-eliminating each new pivot from the existing rows once per
    innovative insert.  It is also what makes the whole-network batched twin
    (:class:`repro.gf.packed.GF2BasisBatch`) two vectorised passes per
    insert.

    This mirrors exactly what a network-coding node does with its received
    messages: keep a basis of the span, detect whether a new message is
    innovative, and decode by back-substitution once the span is full.

    Coefficient-block queries (the rank of the span projected onto the first
    ``k`` coordinates, which drives ``can_decode``) are maintained
    *incrementally*: the first query for a given ``k`` materialises a
    projection basis, and every subsequent insertion feeds it one masked row,
    so repeated ``coefficient_rank`` calls cost O(rank) instead of rebuilding
    a throwaway basis each time.
    """

    length: int
    _rows: dict[int, int] = field(default_factory=dict)
    _projections: dict[int, "GF2Basis"] = field(default_factory=dict, repr=False)
    #: Union of the leading bits of all rows (one bit per pivot).
    _pivot_mask: int = 0
    #: Row leads in descending order, negated for ascending bisect — keeps
    #: ``basis_masks`` (the per-compose hot call) sort-free.
    _sorted_leads_neg: list[int] = field(default_factory=list, repr=False)

    # ------------------------------------------------------------------
    # insertion / reduction
    # ------------------------------------------------------------------
    def _reduce(self, mask: int) -> int:
        """Fully reduce ``mask`` against the (mutually reduced) basis rows.

        Rows carry no pivot bit other than their own, so the set of pivot
        rows to XOR is fixed by the *incoming* mask's pivot bits — one pass,
        no data-dependent reduction chain.
        """
        hits = mask & self._pivot_mask
        rows = self._rows
        while hits:
            low = hits & -hits
            mask ^= rows[low.bit_length() - 1]
            hits ^= low
        return mask

    def insert(self, vector: int | Sequence[int] | np.ndarray) -> bool:
        """Insert a vector; return True iff it was innovative (increased rank)."""
        if len(self._rows) >= self.length:
            # Saturation short-circuit: a full-rank basis spans the whole
            # ambient space, so every vector reduces to zero — skip the
            # elimination entirely.
            return False
        mask = int(vector) if isinstance(vector, (int, np.integer)) else pack_bits(vector)
        reduced = self._reduce(mask)
        if reduced == 0:
            return False
        lead = reduced.bit_length() - 1
        # Back-eliminate the new pivot from existing rows, preserving the
        # invariant that every pivot bit appears in exactly one row.
        bit = 1 << lead
        for other_lead, row in self._rows.items():
            if row & bit:
                self._rows[other_lead] = row ^ reduced
        self._rows[lead] = reduced
        self._pivot_mask |= bit
        bisect.insort(self._sorted_leads_neg, -lead)
        # Keep cached coefficient-block projections in sync: the span grows by
        # exactly this row, so each projection grows by its masked image.
        for k, projection in self._projections.items():
            projection.insert(reduced & ((1 << k) - 1))
        return True

    def contains(self, vector: int | Sequence[int] | np.ndarray) -> bool:
        """True iff the vector lies in the span of the basis."""
        mask = int(vector) if isinstance(vector, (int, np.integer)) else pack_bits(vector)
        return self._reduce(mask) == 0

    def extend(self, vectors: Iterable[int | Sequence[int] | np.ndarray]) -> int:
        """Insert many vectors; return how many were innovative."""
        added = 0
        for v in vectors:
            if self.insert(v):
                added += 1
        return added

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """Dimension of the spanned subspace."""
        return len(self._rows)

    def basis_masks(self) -> list[int]:
        """The basis rows as integer masks, highest leading bit first."""
        rows = self._rows
        return [rows[-neg] for neg in self._sorted_leads_neg]

    def rows_in_insertion_order(self) -> list[int]:
        """The basis rows as integer masks, in the order they were inserted.

        This is the replay order that reconstructs this exact basis (each row
        has a distinct leading bit, so re-inserting them in order stores each
        unchanged) — what :meth:`repro.gf.packed.GF2BasisBatch.lift_masks`
        consumes when lifting per-node bases into a batch.
        """
        return list(self._rows.values())

    @classmethod
    def from_rows(cls, length: int, rows_in_insertion_order: Iterable[int]) -> "GF2Basis":
        """Rebuild a basis from previously-extracted reduced rows.

        The rows must be valid mutually-reduced rows (distinct leading bits,
        no row carrying another row's lead), e.g. the output of
        :meth:`rows_in_insertion_order` or one basis of a
        :class:`~repro.gf.packed.GF2BasisBatch`; they are stored verbatim.
        """
        basis = cls(length)
        rows = basis._rows
        pivot_mask = 0
        for mask in rows_in_insertion_order:
            mask = int(mask)
            if mask == 0:
                raise ValueError("basis rows must be non-zero")
            lead = mask.bit_length() - 1
            if lead >= length or lead in rows:
                raise ValueError("rows are not valid echelon rows")
            rows[lead] = mask
            pivot_mask |= 1 << lead
        basis._pivot_mask = pivot_mask
        basis._sorted_leads_neg = sorted(-lead for lead in rows)
        return basis

    def basis_matrix(self) -> np.ndarray:
        """The basis as a 0/1 numpy matrix with one row per basis vector."""
        masks = self.basis_masks()
        out = np.zeros((len(masks), self.length), dtype=np.int64)
        for i, mask in enumerate(masks):
            out[i] = unpack_bits(mask, self.length)
        return out

    def senses(self, direction: int | Sequence[int] | np.ndarray) -> bool:
        """True iff some basis vector is *not* orthogonal to ``direction``.

        This is the "sensing" relation of Definition 5.1 specialised to
        GF(2): orthogonality is parity of the AND of the two masks.
        """
        mask = int(direction) if isinstance(direction, (int, np.integer)) else pack_bits(direction)
        for row in self._rows.values():
            if (row & mask).bit_count() & 1:
                return True
        return False

    def coefficient_rank(self, k: int) -> int:
        """Rank of the span projected onto the first ``k`` coordinates.

        Maintained incrementally: the projection basis for each queried ``k``
        is cached and updated on every subsequent :meth:`insert`.
        """
        if k <= 0 or self.rank == 0:
            return 0
        if k >= self.length:
            return self.rank
        projection = self._projections.get(k)
        if projection is None:
            projection = GF2Basis(k)
            low = (1 << k) - 1
            for row in self._rows.values():
                projection.insert(row & low)
            self._projections[k] = projection
        return projection.rank

    def decode_payload_masks(self, k: int) -> list[int] | None:
        """Gauss-Jordan on the coefficient block, returning the payload masks.

        The rows are augmented ``[coefficients | payload]`` vectors with the
        first ``k`` bits being the coefficient block.  When that block has
        full rank ``k``, returns, for each dimension ``i``, the payload bits
        (mask shifted down by ``k``) of the combination whose coefficient
        part is exactly ``e_i``; otherwise None.
        """
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        if k == 0:
            return []
        low = (1 << k) - 1
        pivots: dict[int, int] = {}
        for mask in self._rows.values():
            for bit, pivot_row in pivots.items():
                if (mask >> bit) & 1:
                    mask ^= pivot_row
            coeff = mask & low
            if coeff == 0:
                continue
            bit = (coeff & -coeff).bit_length() - 1
            for other_bit in pivots:
                if (pivots[other_bit] >> bit) & 1:
                    pivots[other_bit] ^= mask
            pivots[bit] = mask
            if len(pivots) == k:
                break
        if len(pivots) < k:
            return None
        return [pivots[i] >> k for i in range(k)]

    def reduced_echelon_matrix(self) -> np.ndarray:
        """Fully reduced (Gauss-Jordan) basis matrix, used for decoding."""
        masks = self.basis_masks()
        # Back-substitute so each leading bit appears in exactly one row.
        for i in range(len(masks)):
            lead = masks[i].bit_length() - 1
            for j in range(len(masks)):
                if i != j and (masks[j] >> lead) & 1:
                    masks[j] ^= masks[i]
        out = np.zeros((len(masks), self.length), dtype=np.int64)
        for i, mask in enumerate(masks):
            out[i] = unpack_bits(mask, self.length)
        return out

    def copy(self) -> "GF2Basis":
        """An independent copy of this basis."""
        clone = GF2Basis(self.length)
        clone._rows = dict(self._rows)
        clone._projections = {k: p.copy() for k, p in self._projections.items()}
        clone._pivot_mask = self._pivot_mask
        clone._sorted_leads_neg = list(self._sorted_leads_neg)
        return clone
