"""Finite-field linear algebra substrate.

Everything the network-coding layer needs: prime fields ``GF(q)``, vector
packing of bit payloads, Gaussian elimination / rank / solving, and a
bit-packed GF(2) fast path for the common XOR case.
"""

from .field import (
    GF,
    GF2,
    field_bits,
    get_field,
    is_prime,
    next_prime,
    smallest_prime_at_least,
)
from .gf2 import GF2Basis, pack_bits, unpack_bits
from .packed import GF2BasisBatch, masks_to_packed, packed_to_mask, packed_to_masks
from .matrix import (
    RrefResult,
    identity,
    inverse,
    is_invertible,
    null_space_basis,
    random_invertible_matrix,
    random_matrix,
    rank,
    row_space_basis,
    rref,
    solve,
    vandermonde,
)
from .vectors import (
    bits_to_vector,
    concat_vectors,
    int_to_vector,
    is_zero_vector,
    linear_combination,
    symbols_needed,
    unit_vector,
    vector_to_bits,
    vector_to_int,
    vectors_equal,
)

__all__ = [
    "GF",
    "GF2",
    "GF2Basis",
    "GF2BasisBatch",
    "RrefResult",
    "bits_to_vector",
    "concat_vectors",
    "field_bits",
    "get_field",
    "identity",
    "int_to_vector",
    "inverse",
    "is_invertible",
    "is_prime",
    "is_zero_vector",
    "linear_combination",
    "masks_to_packed",
    "next_prime",
    "null_space_basis",
    "pack_bits",
    "packed_to_mask",
    "packed_to_masks",
    "random_invertible_matrix",
    "random_matrix",
    "rank",
    "row_space_basis",
    "rref",
    "smallest_prime_at_least",
    "solve",
    "symbols_needed",
    "unit_vector",
    "unpack_bits",
    "vandermonde",
    "vector_to_bits",
    "vector_to_int",
    "vectors_equal",
]
