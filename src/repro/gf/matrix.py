"""Matrix algebra over prime fields.

Provides the Gaussian-elimination machinery the network-coding algorithms
rely on: reduced row echelon form, rank, solving linear systems, inverses,
and random matrices.  All routines operate on numpy arrays of canonical
field elements (integers in ``[0, q)``), with the field passed explicitly.

The decoder of Section 5.1 reduces a stack of received coded vectors to RREF
and reads the original tokens off the identity block; ``rref`` and
``solve`` below implement exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .field import GF

__all__ = [
    "rref",
    "rank",
    "row_space_basis",
    "null_space_basis",
    "solve",
    "inverse",
    "is_invertible",
    "random_matrix",
    "random_invertible_matrix",
    "identity",
    "vandermonde",
    "RrefResult",
]


@dataclass(frozen=True)
class RrefResult:
    """Result of a reduced-row-echelon-form computation.

    Attributes
    ----------
    matrix:
        The matrix in RREF, same shape as the input.
    pivot_columns:
        Tuple of column indices containing pivots, in row order.
    rank:
        Number of pivots (== number of non-zero rows).
    """

    matrix: np.ndarray
    pivot_columns: tuple[int, ...]
    rank: int


def _as_field_matrix(field: GF, matrix: np.ndarray | Sequence[Sequence[int]]) -> np.ndarray:
    arr = field.asarray(matrix)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {arr.shape}")
    return arr.copy()


def rref(field: GF, matrix: np.ndarray | Sequence[Sequence[int]]) -> RrefResult:
    """Compute the reduced row echelon form of ``matrix`` over ``field``.

    Runs standard Gauss-Jordan elimination with exact field arithmetic.
    """
    a = _as_field_matrix(field, matrix)
    rows, cols = a.shape
    pivot_cols: list[int] = []
    pivot_row = 0
    for col in range(cols):
        if pivot_row >= rows:
            break
        # Find a row with a non-zero entry in this column at or below pivot_row.
        pivot_candidates = [r for r in range(pivot_row, rows) if int(a[r, col]) != 0]
        if not pivot_candidates:
            continue
        chosen = pivot_candidates[0]
        if chosen != pivot_row:
            a[[pivot_row, chosen]] = a[[chosen, pivot_row]]
        # Normalize the pivot row so the pivot is 1.
        pivot_value = int(a[pivot_row, col])
        if pivot_value != 1:
            a[pivot_row] = field.scale(a[pivot_row], field.inv(pivot_value))
        # Eliminate the column from every other row.
        for r in range(rows):
            if r == pivot_row:
                continue
            factor = int(a[r, col])
            if factor != 0:
                a[r] = field.sub_arrays(a[r], field.scale(a[pivot_row], factor))
        pivot_cols.append(col)
        pivot_row += 1
    return RrefResult(matrix=a, pivot_columns=tuple(pivot_cols), rank=len(pivot_cols))


def rank(field: GF, matrix: np.ndarray | Sequence[Sequence[int]]) -> int:
    """Rank of ``matrix`` over ``field``."""
    arr = np.asarray(matrix)
    if arr.size == 0:
        return 0
    return rref(field, arr).rank


def row_space_basis(field: GF, matrix: np.ndarray | Sequence[Sequence[int]]) -> np.ndarray:
    """A canonical basis (RREF non-zero rows) of the row space of ``matrix``."""
    arr = np.asarray(matrix)
    if arr.size == 0:
        return field.zeros((0, arr.shape[-1] if arr.ndim == 2 else 0))
    result = rref(field, arr)
    return result.matrix[: result.rank].copy()


def null_space_basis(field: GF, matrix: np.ndarray | Sequence[Sequence[int]]) -> np.ndarray:
    """A basis of the (right) null space ``{x : M x = 0}`` over ``field``."""
    a = _as_field_matrix(field, matrix)
    rows, cols = a.shape
    result = rref(field, a)
    pivots = set(result.pivot_columns)
    free_cols = [c for c in range(cols) if c not in pivots]
    if not free_cols:
        return field.zeros((0, cols))
    basis = field.zeros((len(free_cols), cols))
    pivot_list = list(result.pivot_columns)
    for i, free in enumerate(free_cols):
        basis[i, free] = 1
        for row_idx, pivot_col in enumerate(pivot_list):
            coeff = int(result.matrix[row_idx, free])
            if coeff != 0:
                basis[i, pivot_col] = field.neg(coeff)
    return basis


def solve(
    field: GF,
    matrix: np.ndarray | Sequence[Sequence[int]],
    rhs: np.ndarray | Sequence[int],
) -> np.ndarray | None:
    """Solve ``M x = rhs`` over the field; return one solution or None.

    ``rhs`` may be a vector or a matrix of stacked right-hand-side columns.
    """
    a = _as_field_matrix(field, matrix)
    b = field.asarray(rhs)
    vector_rhs = b.ndim == 1
    if vector_rhs:
        b = b.reshape(-1, 1)
    if b.shape[0] != a.shape[0]:
        raise ValueError(f"incompatible shapes {a.shape} and {b.shape}")
    augmented = np.concatenate([a, b], axis=1)
    result = rref(field, augmented)
    n_cols = a.shape[1]
    # Inconsistent if a pivot lands in the RHS block.
    if any(p >= n_cols for p in result.pivot_columns):
        return None
    solution = field.zeros((n_cols, b.shape[1]))
    for row_idx, pivot_col in enumerate(result.pivot_columns):
        solution[pivot_col] = result.matrix[row_idx, n_cols:]
    if vector_rhs:
        return solution[:, 0]
    return solution


def identity(field: GF, n: int) -> np.ndarray:
    """The ``n x n`` identity matrix over ``field``."""
    eye = field.zeros((n, n))
    for i in range(n):
        eye[i, i] = 1
    return eye


def is_invertible(field: GF, matrix: np.ndarray | Sequence[Sequence[int]]) -> bool:
    """True iff ``matrix`` is square and has full rank over ``field``."""
    a = _as_field_matrix(field, matrix)
    if a.shape[0] != a.shape[1]:
        return False
    return rank(field, a) == a.shape[0]


def inverse(field: GF, matrix: np.ndarray | Sequence[Sequence[int]]) -> np.ndarray:
    """Matrix inverse over the field.

    Raises
    ------
    ValueError
        If the matrix is not square or is singular.
    """
    a = _as_field_matrix(field, matrix)
    n, m = a.shape
    if n != m:
        raise ValueError(f"cannot invert a non-square matrix of shape {a.shape}")
    augmented = np.concatenate([a, identity(field, n)], axis=1)
    result = rref(field, augmented)
    if result.rank < n or any(p >= n for p in result.pivot_columns[:n]):
        raise ValueError("matrix is singular over the field")
    return result.matrix[:, n:].copy()


def random_matrix(field: GF, rng: np.random.Generator, rows: int, cols: int) -> np.ndarray:
    """A uniformly random ``rows x cols`` matrix over the field."""
    return field.random_elements(rng, (rows, cols))


def random_invertible_matrix(field: GF, rng: np.random.Generator, n: int) -> np.ndarray:
    """A uniformly-random-ish invertible ``n x n`` matrix (rejection sampling)."""
    while True:
        candidate = random_matrix(field, rng, n, n)
        if is_invertible(field, candidate):
            return candidate


def vandermonde(field: GF, points: Sequence[int], cols: int) -> np.ndarray:
    """Vandermonde matrix ``V[i, j] = points[i]**j`` over the field.

    Useful for constructing deterministic coefficient schedules (Section 6):
    any ``k`` rows of a Vandermonde matrix over distinct points are linearly
    independent when the field is large enough.
    """
    pts = [field.normalize(p) for p in points]
    out = field.zeros((len(pts), cols))
    for i, p in enumerate(pts):
        value = 1
        for j in range(cols):
            out[i, j] = value
            value = field.mul(value, p)
    return out
