"""repro — reproduction of Haeupler & Karger (PODC 2011).

"Faster Information Dissemination in Dynamic Networks via Network Coding."

The package is organised as:

* :mod:`repro.gf` — finite-field linear algebra substrate;
* :mod:`repro.network` — the dynamic network model (topologies, adversaries,
  stability, patching);
* :mod:`repro.tokens` — tokens, placements, message envelopes with bit-level
  size accounting;
* :mod:`repro.coding` — random linear network coding and its derandomization;
* :mod:`repro.algorithms` — every dissemination protocol in the paper plus
  the token-forwarding baselines;
* :mod:`repro.simulation` — the synchronous round executor and experiment
  harness;
* :mod:`repro.analysis` — closed-form predicted round complexities for every
  theorem, used by the benchmarks.

Quickstart::

    from repro import (
        ProtocolConfig, MessageBudget, IndexedBroadcastNode,
        RandomConnectedAdversary, one_token_per_node, run_dissemination,
    )
    import numpy as np

    n = 32
    config = ProtocolConfig(n=n, k=n, token_bits=8, budget=MessageBudget(b=n + 16))
    placement = one_token_per_node(n, 8, np.random.default_rng(0))
    result = run_dissemination(
        IndexedBroadcastNode, config, placement, RandomConnectedAdversary(seed=1)
    )
    print(result.rounds, result.correct)
"""

from .algorithms import (
    CentralizedCodedNode,
    CountingOutcome,
    DeterministicIndexedBroadcastNode,
    GreedyForwardNode,
    IndexedBroadcastNode,
    NaiveCodedNode,
    PipelinedTokenForwardingNode,
    PriorityForwardNode,
    ProtocolConfig,
    ProtocolNode,
    RandomForwardNode,
    TokenForwardingNode,
    TStablePatchNode,
    count_nodes_via_doubling,
    deterministic_broadcast_config,
    make_tstable_factory,
)
from .coding import DeterministicSchedule, Generation, GenerationState, Subspace
from .gf import GF, GF2, get_field
from .network import (
    Adversary,
    BottleneckAdversary,
    PathShuffleAdversary,
    RandomConnectedAdversary,
    RandomTreeAdversary,
    RotatingStarAdversary,
    StaticAdversary,
    TokenIsolationAdversary,
    TStableAdversary,
    make_adversary,
)
from .simulation import (
    Measurement,
    RunMetrics,
    RunResult,
    fit_power_law,
    format_table,
    measure,
    run_dissemination,
    standard_instance,
)
from .tokens import (
    MessageBudget,
    Token,
    TokenId,
    TokenPlacement,
    make_tokens,
    one_token_per_node,
    place_tokens,
)

__version__ = "1.1.0"

__all__ = [
    "Adversary",
    "BottleneckAdversary",
    "CentralizedCodedNode",
    "CountingOutcome",
    "DeterministicIndexedBroadcastNode",
    "DeterministicSchedule",
    "GF",
    "GF2",
    "Generation",
    "GenerationState",
    "GreedyForwardNode",
    "IndexedBroadcastNode",
    "Measurement",
    "MessageBudget",
    "NaiveCodedNode",
    "PathShuffleAdversary",
    "PipelinedTokenForwardingNode",
    "PriorityForwardNode",
    "ProtocolConfig",
    "ProtocolNode",
    "RandomConnectedAdversary",
    "RandomForwardNode",
    "RandomTreeAdversary",
    "RotatingStarAdversary",
    "RunMetrics",
    "RunResult",
    "StaticAdversary",
    "Subspace",
    "TStableAdversary",
    "TStablePatchNode",
    "Token",
    "TokenForwardingNode",
    "TokenId",
    "TokenIsolationAdversary",
    "TokenPlacement",
    "count_nodes_via_doubling",
    "deterministic_broadcast_config",
    "fit_power_law",
    "format_table",
    "get_field",
    "make_adversary",
    "make_tokens",
    "make_tstable_factory",
    "measure",
    "one_token_per_node",
    "place_tokens",
    "run_dissemination",
    "standard_instance",
    "__version__",
]
