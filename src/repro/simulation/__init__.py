"""Simulation engine: round executor, metrics, experiment harness."""

from .experiments import (
    Measurement,
    SweepCache,
    SweepPoint,
    SweepTask,
    fit_power_law,
    format_table,
    measure,
    ratio_table,
    run_sweep_task,
    standard_instance,
    sweep,
    sweep_tasks,
)
from .metrics import RunMetrics
from .runner import RunResult, build_nodes, run_dissemination

__all__ = [
    "Measurement",
    "RunMetrics",
    "RunResult",
    "SweepCache",
    "SweepPoint",
    "SweepTask",
    "build_nodes",
    "fit_power_law",
    "format_table",
    "measure",
    "ratio_table",
    "run_dissemination",
    "run_sweep_task",
    "standard_instance",
    "sweep",
    "sweep_tasks",
]
