"""Simulation engine: round executor, metrics, experiment harness."""

from .experiments import (
    Measurement,
    SweepPoint,
    fit_power_law,
    format_table,
    measure,
    ratio_table,
    standard_instance,
    sweep,
)
from .metrics import RunMetrics
from .runner import RunResult, build_nodes, run_dissemination

__all__ = [
    "Measurement",
    "RunMetrics",
    "RunResult",
    "SweepPoint",
    "build_nodes",
    "fit_power_law",
    "format_table",
    "measure",
    "ratio_table",
    "run_dissemination",
    "standard_instance",
    "sweep",
]
