"""Simulation engine: round executors (kernel/mask/legacy), metrics, harness."""

from .experiments import (
    Measurement,
    SweepCache,
    SweepPoint,
    SweepTask,
    fit_power_law,
    format_table,
    measure,
    ratio_table,
    run_sweep_task,
    standard_instance,
    sweep,
    sweep_tasks,
)
from .kernels import RoundKernel, kernel_for, register_kernel
from .metrics import RunMetrics
from .runner import RunResult, build_nodes, run_dissemination

__all__ = [
    "Measurement",
    "RoundKernel",
    "RunMetrics",
    "RunResult",
    "SweepCache",
    "SweepPoint",
    "SweepTask",
    "build_nodes",
    "fit_power_law",
    "format_table",
    "kernel_for",
    "measure",
    "register_kernel",
    "ratio_table",
    "run_dissemination",
    "run_sweep_task",
    "standard_instance",
    "sweep",
    "sweep_tasks",
]
