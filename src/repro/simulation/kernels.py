"""Vectorised kernel engine: whole-network rounds as packed numpy array ops.

The mask engine (PR 2) removed the per-round graph and snapshot overhead but
still executes O(n) Python-object calls per round: one ``compose`` and one
``deliver`` per node, per-bit neighbour iteration during delivery, one
``_learn_token`` per received token.  For protocols whose per-node state is
small and regular, that Python dispatch *is* the remaining cost.

This module adds a third execution engine in which a protocol ships a
:class:`RoundKernel`: whole-network state lives in packed numpy arrays — an
``(n, ceil(k/64))`` ``uint64`` knowledge matrix, send/size/delivered arrays
— and one round is

1. ``compose_all`` — every node's broadcast selected at once,
2. masked adjacency propagation — one fancy-index gather over the
   topology's CSR neighbour arrays plus one ``np.bitwise_or.reduceat``,
3. ``deliver_all`` — the whole network's knowledge updated in a handful of
   array operations,

with no per-node Python objects on the hot path.  The engine drives
adversaries (through lazy :class:`~repro.network.adversary.NodeStateView`
sequences), budget accounting, metrics, and incremental completion exactly
as the mask engine does: kernel and mask runs report byte-identical
:class:`~repro.simulation.metrics.RunMetrics` for identical seeds (the node
rng streams come from the same ``rng.spawn`` order, and every random draw
is performed against the same per-node generator in the same order).

Kernels ship for the forwarding family here and for the coding family in
:mod:`repro.simulation.coded_kernels`:

* :class:`TokenForwardingKernel` / :class:`PipelinedTokenForwardingKernel`
  — fully vectorised: token selection, delivery and phase commits are
  packed-array operations;
* :class:`RandomForwardKernel` — per-node ``rng.choice`` draws are kept
  (bit-exact stream compatibility) but state is integer bit masks and all
  metrics bookkeeping is vectorised;
* :class:`IndexedBroadcastKernel` / :class:`NaiveCodedKernel` /
  :class:`GreedyForwardKernel` — the network-coded protocols, whose
  subspaces live in one batched GF(2) elimination core
  (:class:`~repro.gf.packed.GF2BasisBatch`) with no per-node
  :class:`~repro.coding.subspace.Subspace` objects on the hot path.

A finished run is materialised back into ordinary protocol nodes by
:meth:`RoundKernel.to_nodes`, so ``RunResult.nodes``, the correctness check
and post-hoc inspection keep working unchanged.

Custom protocols can register their own kernels with
:func:`register_kernel`; ``run_dissemination(engine="auto")`` picks the
kernel engine whenever the factory is a registered node class, the
configuration is supported, and the adversary is not omniscient
(``sees_messages`` adversaries must inspect per-node message objects,
which the kernel engine deliberately never builds).
"""

from __future__ import annotations

import abc
from collections.abc import Sequence as _SequenceABC
from typing import Iterator, Mapping, Sequence

import numpy as np

from ..algorithms.base import ProtocolConfig, ProtocolNode
from ..algorithms.random_forward import RandomForwardNode
from ..algorithms.token_forwarding import (
    PipelinedTokenForwardingNode,
    TokenForwardingNode,
    tokens_per_message,
)
from ..network.adversary import Adversary, NodeStateView
from ..network.faults import StateView
from ..network.topology import TopologyValidationCache, _iter_bits
from ..obs.profiler import NULL_PROFILER
from ..tokens.message import MessageSizeExceeded, TokenForwardMessage
from ..tokens.token import TokenId, TokenPlacement
from .metrics import RunMetrics

__all__ = [
    "KERNEL_REGISTRY",
    "KernelUnsupported",
    "RoundKernel",
    "TokenForwardingKernel",
    "PipelinedTokenForwardingKernel",
    "RandomForwardKernel",
    "IndexedBroadcastKernel",
    "NaiveCodedKernel",
    "GreedyForwardKernel",
    "kernel_for",
    "register_kernel",
    "run_kernel_rounds",
]


class KernelUnsupported(Exception):
    """Raised by a kernel constructor when the built nodes cannot be lifted.

    ``kernel_for`` screens on the *configuration*; some preconditions are
    only visible on the constructed node objects (e.g. a coding state forced
    off the mask-native pipeline).  Under ``engine="auto"`` the runner
    catches this and falls back to the mask engine; an explicit
    ``engine="kernel"`` surfaces it as a ``ValueError``.
    """


# ----------------------------------------------------------------------
# packed-row helpers
# ----------------------------------------------------------------------


def _packed_width(k: int) -> int:
    """Words per packed knowledge row (at least one, so shapes stay 2-D)."""
    return max(1, (k + 63) // 64)


def _full_row(k: int, width: int) -> np.ndarray:
    """A packed row with exactly bits ``0..k-1`` set."""
    full = np.zeros(width, dtype=np.uint64)
    whole, rem = divmod(k, 64)
    full[:whole] = ~np.uint64(0)
    if rem:
        full[whole] = np.uint64((1 << rem) - 1)
    return full


def _row_bits(row: np.ndarray) -> Iterator[int]:
    """Yield the set bit positions of one packed uint64 row, ascending."""
    return _iter_bits(
        int.from_bytes(np.ascontiguousarray(row, dtype="<u8").tobytes(), "little")
    )


def _popcount_rows(matrix: np.ndarray) -> np.ndarray:
    return np.bitwise_count(matrix).sum(axis=1, dtype=np.int64)


def _select_lowest_bits(
    pending: np.ndarray, batch: int, costs: np.ndarray | None
) -> tuple[np.ndarray, np.ndarray | None]:
    """Select the up-to-``batch`` lowest set bits of every packed row.

    Returns the selection as a packed matrix of the same shape and, when
    ``costs`` (one entry per bit index) is given, the per-row cost sum of
    the selected bits.  This is the whole-network twin of the per-node
    "smallest pending tokens" prefix scan, batch-independent: unpack, rank
    each row's set bits with a running cumsum, keep ranks ``<= batch``,
    repack — a fixed handful of O(n * k) vectorised passes.
    """
    n, width = pending.shape
    bits = np.unpackbits(
        pending.view(np.uint8).reshape(n, -1), axis=1, bitorder="little"
    )
    ranks = np.cumsum(bits, axis=1, dtype=np.int32)
    keep = (bits != 0) & (ranks <= batch)
    selection = (
        np.packbits(keep, axis=1, bitorder="little").view(np.uint64).reshape(n, width)
    )
    sizes = None
    if costs is not None:
        k = costs.shape[0]
        sizes = np.where(keep[:, :k], costs, 0).sum(axis=1)
    return selection, sizes


def _neighbor_or(send: np.ndarray, indices: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-node OR of the neighbours' packed send rows (the propagation step).

    One gather plus one ``reduceat``.  A validated (connected, n >= 2)
    topology has no empty neighbour segments, but the *effective* CSR a
    fault plan edits (crashed endpoints and lost edges removed) can leave
    some.  ``reduceat`` needs every start index in-bounds, so the gathered
    rows get one zero pad row: trailing empty segments (start ==
    ``indices.size``) reduce over the pad — clamping the start instead
    would truncate the preceding segment and drop its last neighbour.
    Interior empty segments (``reduceat`` returns the single element at
    the start, a real row) are zeroed explicitly.
    """
    if indices.size == 0:
        return np.zeros_like(send)
    rows = np.concatenate(
        (send[indices], np.zeros((1, send.shape[1]), dtype=send.dtype))
    )
    inbox = np.bitwise_or.reduceat(rows, indptr[:-1], axis=0)
    empty = np.diff(indptr) == 0
    if empty.any():
        inbox[empty] = 0
    return inbox


class _KernelStateViews(_SequenceABC):
    """Lazy per-round state-view sequence handed to adaptive adversaries.

    Views are built on demand, so oblivious adversaries (which never read
    node state) cost zero per-node work per round, while adaptive ones see
    exactly the accessors the mask engine provides.
    """

    __slots__ = ("_kernel",)

    def __init__(self, kernel: "RoundKernel"):
        self._kernel = kernel

    def __len__(self) -> int:
        return self._kernel.n

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self._kernel.n))]
        n = self._kernel.n
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(index)
        return self._kernel.state_view(index)


class _KernelMessageViews(_SequenceABC):
    """Lazy per-round message sequence for omniscient adversaries.

    Built only when ``adversary.sees_messages`` and the kernel opts in via
    ``supports_message_views``: each access materialises one node's wire
    message object on demand (``None`` for silent nodes), so adversaries
    that inspect a handful of messages cost a handful of constructions —
    not n Message objects per round.
    """

    __slots__ = ("_kernel", "_round", "_active")

    def __init__(self, kernel: "RoundKernel", round_index: int, active: np.ndarray):
        self._kernel = kernel
        self._round = round_index
        self._active = active

    def __len__(self) -> int:
        return self._kernel.n

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self._kernel.n))]
        n = self._kernel.n
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(index)
        if not self._active[index]:
            return None
        return self._kernel.wire_message(index, self._round)


# ----------------------------------------------------------------------
# the kernel contract and registry
# ----------------------------------------------------------------------


class RoundKernel(abc.ABC):
    """Whole-network packed state plus the three per-round hooks.

    A kernel is constructed from the freshly built (and mask-enabled) node
    objects, lifts their initial state into packed arrays, executes rounds
    through :meth:`compose_all` / :meth:`deliver_all`, and finally writes
    the terminal state back into the same node objects via
    :meth:`to_nodes`.
    """

    #: Message class name used in budget-violation errors.
    message_name = "Message"
    #: The node class this kernel implements (set by :func:`register_kernel`).
    node_class: type | None = None
    #: Whether :meth:`wire_message` can materialise this round's per-node
    #: message objects (keeps omniscient adversaries kernel-eligible).
    supports_message_views = False
    #: Whether the kernel can hand a per-round
    #: :class:`~repro.network.faults.StateView` (knowledge counts + coded
    #: ranks) to state-aware fault strategies.  The base class already
    #: exposes both columns, so every kernel supports this by default; a
    #: kernel whose counts/ranks are not faithful mid-round must opt out.
    supports_state_views = True

    def __init__(
        self,
        config: ProtocolConfig,
        placement: TokenPlacement,
        token_index: Mapping[TokenId, int],
        nodes: Sequence[ProtocolNode],
    ):
        self.config = config
        self.n = config.n
        self.token_index = token_index
        by_id = placement.by_id()
        #: Placement tokens in bit-index order (token ids sort ascending).
        self.tokens = [by_id[tid] for tid in sorted(token_index)]
        self.k = len(self.tokens)
        self._counts_cache: np.ndarray | None = None
        #: Phase profiler; the engine loop swaps in the trace recorder's
        #: profiler when tracing with a clock (inert by default, so spans
        #: on kernel hot paths cost one no-op context enter).
        self.profiler = NULL_PROFILER

    # ------------------------------------------------------------------
    @classmethod
    def supports(cls, config: ProtocolConfig) -> bool:
        """Whether this kernel implements the protocol under ``config``."""
        return True

    @abc.abstractmethod
    def compose_all(self, round_index: int) -> tuple[np.ndarray, np.ndarray]:
        """Select every node's round broadcast at once.

        Returns ``(active, sizes)``: a boolean array marking nodes that
        broadcast (False = silence) and the per-node message sizes in bits
        (zero for silent nodes).  The composed payloads stay inside the
        kernel for :meth:`deliver_all`.
        """

    @abc.abstractmethod
    def deliver_all(
        self,
        round_index: int,
        indices: np.ndarray,
        indptr: np.ndarray,
        active: np.ndarray,
        counts: np.ndarray,
    ) -> np.ndarray:
        """Deliver the round over CSR adjacency; return per-node change flags.

        ``indices`` / ``indptr`` are the topology's CSR neighbour arrays
        (ascending neighbour uid per node — the engines' delivery order),
        ``active`` the compose flags and ``counts`` the per-node number of
        broadcasting neighbours.  The returned boolean array must be True
        exactly where the node's ``(len(known), coded_rank)`` fingerprint
        changed — the mask engine's useless-delivery criterion.
        """

    @abc.abstractmethod
    def _known_counts_now(self) -> np.ndarray:
        """Per-node ``len(known)``, freshly computed."""

    def known_counts(self) -> np.ndarray:
        """Per-node ``len(known)`` (cached until the next delivery)."""
        if self._counts_cache is None:
            self._counts_cache = self._known_counts_now()
        return self._counts_cache

    def coded_ranks(self) -> np.ndarray:
        """Per-node ``coded_rank()``, whole-network (zeros for uncoded).

        The trace recorder's rank column.  Forwarding kernels have no
        coded state — their nodes' ``coded_rank()`` is 0 — so the default
        is the zero vector; coded kernels override with their batched
        GF(2) ranks.
        """
        return np.zeros(self.n, dtype=np.int64)

    def completed_flags(self) -> np.ndarray:
        """Per-node completion: the node knows every placement token.

        The default equates ``known_counts() >= k`` with completion, which
        is exact for kernels whose nodes can only ever learn placement
        tokens.  Kernels that may also record *foreign* tokens (garbage
        decodes of mixed-generation coded traffic under faults) must
        override with a placement-bit test — a count can reach ``k``
        without covering the placement.
        """
        return self.known_counts() >= self.k

    @abc.abstractmethod
    def all_complete(self) -> bool:
        """True iff every node knows every placement token."""

    def finished_all(self) -> bool:
        """True iff every node has locally terminated (default: never)."""
        return False

    @abc.abstractmethod
    def state_view(self, uid: int) -> NodeStateView:
        """The sanitised adversary view of one node (built on demand)."""

    def state_views(self) -> Sequence[NodeStateView]:
        """Lazy sequence of this round's state views."""
        return _KernelStateViews(self)

    def wire_message(self, uid: int, round_index: int):
        """Materialise node ``uid``'s wire message for the *current* round.

        Only called between ``compose_all`` and ``deliver_all``, only for
        active nodes, and only when ``supports_message_views`` is True.
        Must rebuild exactly the Message object the node class would have
        composed (same content, same ordering), so omniscient adversaries
        see identical messages on the kernel and object engines.
        """
        raise RuntimeError(
            f"{type(self).__name__} does not build per-node message views"
        )

    def message_views(self, round_index: int, active: np.ndarray) -> Sequence:
        """Lazy sequence of this round's wire messages (None = silent)."""
        return _KernelMessageViews(self, round_index, active)

    def set_wire_overrides(self, overrides: Mapping[int, int]) -> None:
        """Substitute listed senders' wire vectors for the current round.

        The Byzantine-replay hook: ``overrides`` maps uid -> GF(2) vector
        mask; every copy the node delivers this round (and its message
        view) carries the substituted vector instead of the honest
        composition.  Only coded kernels can represent this.
        """
        raise RuntimeError(
            f"{type(self).__name__} cannot substitute wire vectors; "
            "rerun with engine='mask'"
        )

    def to_nodes(self, nodes: Sequence[ProtocolNode]) -> None:
        """Write the terminal packed state back into the node objects."""


KERNEL_REGISTRY: dict[object, type[RoundKernel]] = {}


def register_kernel(node_class: type):
    """Class decorator registering a :class:`RoundKernel` for a node class.

    Registration is by *exact* class identity: a subclass may change
    behaviour arbitrarily, so it never inherits its parent's kernel (it
    runs on the mask or legacy engine until it registers its own).
    """

    def decorator(kernel_cls: type[RoundKernel]) -> type[RoundKernel]:
        KERNEL_REGISTRY[node_class] = kernel_cls
        kernel_cls.node_class = node_class
        return kernel_cls

    return decorator


def kernel_for(factory, config: ProtocolConfig) -> type[RoundKernel] | None:
    """The registered kernel class for a protocol factory, or None.

    Only factories that *are* a registered node class resolve (closures,
    ``functools.partial`` wrappers and subclasses fall back to the mask
    engine); the kernel may further decline unsupported configurations
    through :meth:`RoundKernel.supports`.
    """
    try:
        kernel_cls = KERNEL_REGISTRY.get(factory)
    except TypeError:  # unhashable factory
        return None
    if kernel_cls is None or not kernel_cls.supports(config):
        return None
    return kernel_cls


# ----------------------------------------------------------------------
# the engine loop
# ----------------------------------------------------------------------


def run_kernel_rounds(
    kernel: RoundKernel,
    config: ProtocolConfig,
    adversary: Adversary,
    metrics: RunMetrics,
    *,
    max_rounds: int,
    stop_at_completion: bool,
    record_topologies: bool,
    track_progress: bool,
    faults=None,
    trace=None,
) -> list:
    """Execute rounds on a kernel; mirrors the mask engine's round semantics.

    Per round: lazy state views -> ``choose_topology`` -> identity-cached
    validation -> ``compose_all`` -> vectorised budget/broadcast accounting
    -> CSR delivery (gather + ``reduceat``) -> vectorised useless-delivery
    and completion bookkeeping.  Returns the recorded topologies.

    ``faults`` (a :class:`~repro.network.faults.BoundFaults`) edits the
    round's CSR into its effective form — crashed endpoints and lost edges
    removed, duplicated edges repeated — before delivery, and switches the
    stop rule to *survivor* completion (population completion may be
    unreachable once a token holder crashes).  Omniscient adversaries are
    supported when the kernel opts in via ``supports_message_views``: the
    round then composes first and hands the adversary a lazy message-view
    sequence, exactly like the object engines.

    ``trace`` (a :class:`~repro.obs.trace.TraceRecorder`, already bound via
    ``begin_run``) receives one vectorised ``observe_round`` per executed
    round — whole-network count/rank arrays straight from the kernel, no
    per-node Python — and its phase profiler is installed on the kernel so
    coded internals (insert/decode) report into the same report.
    """
    n = config.n
    limit = config.budget.limit_bits
    cache = TopologyValidationCache()
    topologies: list = []
    profiler = NULL_PROFILER if trace is None else trace.profiler
    kernel.profiler = profiler

    for round_index in range(max_rounds):
        plan = faults.begin_round(round_index) if faults is not None else None
        if adversary.sees_messages:
            # Omniscient order, as the object engines run it: compose first,
            # then show the adversary the (lazily materialised) messages.
            # The state views must be materialised *before* composing: the
            # object engines capture rank/count by value at snapshot time,
            # and coded kernels mutate their group state (flood ->
            # broadcast transition) inside ``compose_all`` — a lazy view
            # read after compose would leak that transition into the
            # adversary's split.
            states = [kernel.state_view(uid) for uid in range(n)]
            with profiler.span("compose"):
                active, sizes = kernel.compose_all(round_index)
            if plan is not None and plan.substitute:
                kernel.set_wire_overrides(plan.substitute)
            messages = kernel.message_views(round_index, active)
            graph = adversary.choose_topology(round_index, n, states, messages)
            topology = cache.validated(graph, n)
        else:
            # Oblivious/adaptive order: the adversary reads state before
            # compose, so the lazy sequence costs zero for oblivious ones.
            states = kernel.state_views()
            graph = adversary.choose_topology(round_index, n, states)
            topology = cache.validated(graph, n)
            with profiler.span("compose"):
                active, sizes = kernel.compose_all(round_index)
            if plan is not None and plan.substitute:
                kernel.set_wire_overrides(plan.substitute)
        if record_topologies:
            topologies.append(topology)

        indices, indptr = topology.csr_adjacency()
        if plan is not None:
            # The adaptive strategy is consulted in here and may crash
            # nodes mid-round: ``plan.down`` is final only afterwards, so
            # the sending mask must be computed below, not before.  The
            # compose-time ``active`` mask feeds the collision rule, and a
            # wants_state strategy sees the same post-compose count/rank
            # snapshot the object engines extract.
            state = None
            if faults.wants_state:
                state = StateView(kernel.known_counts(), kernel.coded_ranks())
            with profiler.span("faults"):
                indices, indptr = plan.bind_edges(
                    indices, indptr, active=active, state=state
                )

        sending = active if plan is None else active & ~plan.down
        broadcasts = int(sending.sum())
        metrics.silent_rounds += n - broadcasts
        if broadcasts:
            sent_sizes = sizes if plan is None else np.where(sending, sizes, 0)
            max_bits = int(sent_sizes.max())
            if max_bits > limit:
                raise MessageSizeExceeded(
                    f"{kernel.message_name} is {max_bits} bits, exceeding the "
                    f"budget of {limit} bits (b={config.budget.b}, "
                    f"slack={config.budget.slack})"
                )
            metrics.broadcasts += broadcasts
            metrics.total_message_bits += int(sent_sizes.sum())
            if max_bits > metrics.max_message_bits:
                metrics.max_message_bits = max_bits

        discarded = 0
        if plan is not None:
            stats = plan.account(sending)
            metrics.dropped_deliveries += stats.dropped
            metrics.duplicated_deliveries += stats.duplicated
            metrics.corrupted_deliveries += stats.corrupted
            metrics.collided_deliveries += stats.collided
            discarded = stats.discarded
        if indices.size:
            # cumsum differences instead of reduceat: identical integers,
            # and safe on the empty segments an edited CSR can contain.
            flows = np.concatenate(
                (
                    np.zeros(1, dtype=np.int64),
                    np.cumsum(sending[indices], dtype=np.int64),
                )
            )
            counts = flows[indptr[1:]] - flows[indptr[:-1]]
        else:
            counts = np.zeros(n, dtype=np.int64)

        with profiler.span("deliver"):
            changed = kernel.deliver_all(
                round_index, indices, indptr, sending, counts
            )

        metrics.deliveries += int(counts.sum()) + discarded
        useless = (counts > 0) & ~changed
        if useless.any():
            metrics.useless_deliveries += int(counts[useless].sum())

        metrics.rounds_executed = round_index + 1

        if track_progress:
            known = kernel.known_counts()
            metrics.progress.append(
                (round_index + 1, int(known.min()), float(np.mean(known)))
            )

        if trace is not None:
            trace.observe_round(
                round_index,
                metrics,
                kernel.known_counts(),
                kernel.coded_ranks(),
                plan,
            )

        if metrics.completion_round is None and kernel.all_complete():
            metrics.completion_round = round_index + 1
        if faults is None:
            done = metrics.completion_round is not None
        else:
            if metrics.survivor_completion_round is None:
                complete = kernel.completed_flags()
                # Queried per round: adaptive strategies shrink the set.
                if bool(complete[faults.survivor_indices].all()):
                    metrics.survivor_completion_round = round_index + 1
            done = metrics.survivor_completion_round is not None

        if done:
            if stop_at_completion or kernel.finished_all():
                break

    return topologies


# ----------------------------------------------------------------------
# packed forwarding kernels
# ----------------------------------------------------------------------


class _PackedKnowledgeKernel(RoundKernel):
    """Shared plumbing for kernels whose knowledge is a packed bit matrix."""

    message_name = "TokenForwardMessage"

    def __init__(self, config, placement, token_index, nodes):
        super().__init__(config, placement, token_index, nodes)
        self.batch = tokens_per_message(config)
        self.width = _packed_width(self.k)
        self.full = _full_row(self.k, self.width)
        #: Wire cost of each token by bit index (id bits + payload bits).
        self.costs = np.array(
            [t.token_id.bits + t.size_bits for t in self.tokens], dtype=np.int64
        )
        self.known = np.zeros((self.n, self.width), dtype=np.uint64)
        for uid, node in enumerate(nodes):
            for tid in node.known:
                bit = token_index[tid]
                self.known[uid, bit >> 6] |= np.uint64(1 << (bit & 63))
        self._send: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _absorb(self, indices: np.ndarray, indptr: np.ndarray) -> np.ndarray:
        """OR the neighbours' send rows into ``known``; return change flags."""
        inbox = _neighbor_or(self._send, indices, indptr)
        new = self.known | inbox
        changed = (new != self.known).any(axis=1)
        self.known = new
        self._counts_cache = None
        return changed

    def _known_counts_now(self) -> np.ndarray:
        return _popcount_rows(self.known)

    def all_complete(self) -> bool:
        return bool((self.known == self.full).all())

    # ------------------------------------------------------------------
    def _knows(self, uid: int, token_id) -> bool:
        bit = self.token_index.get(token_id)
        if bit is None:
            return False
        return bool((int(self.known[uid, bit >> 6]) >> (bit & 63)) & 1)

    def _known_ids(self, uid: int) -> list:
        return [self.tokens[i].token_id for i in _row_bits(self.known[uid])]

    def state_view(self, uid: int) -> NodeStateView:
        counts = self.known_counts()
        return NodeStateView(
            uid=uid,
            rank=0,
            known_supplier=lambda: self._known_ids(uid),
            known_count=int(counts[uid]),
            membership=lambda token_id: self._knows(uid, token_id),
        )


@register_kernel(TokenForwardingNode)
class TokenForwardingKernel(_PackedKnowledgeKernel):
    """Phase-based flooding forwarding as packed array ops.

    Per round: one ``_select_lowest_bits`` pass picks every node's
    ``batch`` smallest known-but-undelivered tokens (identical to the
    per-node sorted-pending prefix), delivery is one gather + OR-reduce,
    and the consistent phase-boundary commit is a second selection pass
    OR-ed into the packed ``delivered`` matrix.

    A node's broadcast only changes when its pending set does, so the
    selection is cached row-wise and recomputed for *dirty* rows only
    (knowledge grew, or a phase commit touched the node) — the array twin
    of the node-level memoised ``compose``.
    """

    supports_message_views = True

    def __init__(self, config, placement, token_index, nodes):
        super().__init__(config, placement, token_index, nodes)
        self.phase_length = config.extra_int("phase_length", config.n)
        self.delivered = np.zeros_like(self.known)
        self._sizes = np.zeros(self.n, dtype=np.int64)
        self._active = np.zeros(self.n, dtype=bool)
        self._send = np.zeros_like(self.known)
        self._dirty = np.ones(self.n, dtype=bool)

    def compose_all(self, round_index):
        rows = np.flatnonzero(self._dirty)
        if rows.size:
            pending = self.known[rows] & ~self.delivered[rows]
            selection, sizes = _select_lowest_bits(pending, self.batch, self.costs)
            self._send[rows] = selection
            self._sizes[rows] = sizes
            self._active[rows] = pending.any(axis=1)
            self._dirty[rows] = False
        return self._active, self._sizes

    def wire_message(self, uid, round_index):
        # The selection row's ascending bit order is exactly the node's
        # sorted-pending prefix order.
        return TokenForwardMessage(
            sender=uid,
            tokens=tuple(self.tokens[i] for i in _row_bits(self._send[uid])),
        )

    def deliver_all(self, round_index, indices, indptr, active, counts):
        changed = self._absorb(indices, indptr)
        self._dirty |= changed
        if (round_index + 1) % self.phase_length == 0:
            commit, _ = _select_lowest_bits(
                self.known & ~self.delivered, self.batch, None
            )
            self.delivered |= commit
            self._dirty |= commit.any(axis=1)
        return changed

    def to_nodes(self, nodes):
        for uid, node in enumerate(nodes):
            known = {
                self.tokens[i].token_id: self.tokens[i]
                for i in _row_bits(self.known[uid])
            }
            delivered = {
                self.tokens[i].token_id for i in _row_bits(self.delivered[uid])
            }
            node.known.clear()
            node.known.update(known)
            node.delivered = delivered
            node._sorted_known = [
                token for token in known.values() if token.token_id not in delivered
            ]
            node._invalidate_compose_cache()


@register_kernel(PipelinedTokenForwardingNode)
class PipelinedTokenForwardingKernel(_PackedKnowledgeKernel):
    """Pipelined sweep forwarding with an ``(n, k)`` send-count matrix.

    Every node's "fewest-sends-first, then smallest id" candidate order is
    one ``argpartition`` over the key matrix ``send_count * k + index``
    (exactly the per-node sort key, flattened into a single integer), so
    composing the whole network is O(n k) with no Python per node.
    """

    _BIG = np.int64(1) << np.int64(62)
    supports_message_views = True

    def __init__(self, config, placement, token_index, nodes):
        super().__init__(config, placement, token_index, nodes)
        self.send_counts = np.zeros((self.n, max(1, self.k)), dtype=np.int64)
        self._cols = np.arange(max(1, self.k), dtype=np.int64)
        self._view_chosen: np.ndarray | None = None
        self._view_valid: np.ndarray | None = None

    def compose_all(self, round_index):
        active = self.known.any(axis=1)
        self._send = np.zeros_like(self.known)
        sizes = np.zeros(self.n, dtype=np.int64)
        self._view_chosen = None
        self._view_valid = None
        if self.k == 0 or not active.any():
            return active, sizes
        known_bool = (
            np.unpackbits(
                self.known.view(np.uint8).reshape(self.n, -1),
                axis=1,
                count=self.k,
                bitorder="little",
            )
            .astype(bool)
        )
        keys = np.where(
            known_bool, self.send_counts[:, : self.k] * self.k + self._cols[: self.k], self._BIG
        )
        take = min(self.batch, self.k)
        part = np.argpartition(keys, take - 1, axis=1)[:, :take]
        part_keys = np.take_along_axis(keys, part, axis=1)
        order = np.argsort(part_keys, axis=1)
        chosen = np.take_along_axis(part, order, axis=1)
        chosen_keys = np.take_along_axis(part_keys, order, axis=1)
        valid = chosen_keys < self._BIG
        sizes = np.where(valid, self.costs[chosen], 0).sum(axis=1)
        rows = np.broadcast_to(np.arange(self.n)[:, None], chosen.shape)
        r, c = rows[valid], chosen[valid]
        # (r, c) pairs are unique (distinct columns per row), so plain fancy
        # increments are safe; bit scatter needs or.at (several chosen bits
        # can land in the same packed word of the same row).
        self.send_counts[r, c] += 1
        np.bitwise_or.at(
            self._send,
            (r, c >> 6),
            np.uint64(1) << (c & np.int64(63)).astype(np.uint64),
        )
        self._view_chosen = chosen
        self._view_valid = valid
        return active, sizes

    def wire_message(self, uid, round_index):
        # The node composes in (send_count, id) key order — exactly the
        # key-sorted ``chosen`` row, NOT ascending id, so the view is
        # rebuilt from the per-round selection arrays.
        if self._view_chosen is None:
            return TokenForwardMessage(sender=uid, tokens=())
        row = self._view_chosen[uid]
        keep = self._view_valid[uid]
        return TokenForwardMessage(
            sender=uid,
            tokens=tuple(self.tokens[int(c)] for c, ok in zip(row, keep) if ok),
        )

    def deliver_all(self, round_index, indices, indptr, active, counts):
        return self._absorb(indices, indptr)

    def to_nodes(self, nodes):
        for uid, node in enumerate(nodes):
            bits = list(_row_bits(self.known[uid]))
            node.known.clear()
            node.known.update(
                {self.tokens[i].token_id: self.tokens[i] for i in bits}
            )
            counts_row = self.send_counts[uid]
            node._send_counts = {
                self.tokens[i].token_id: int(counts_row[i])
                for i in bits
                if counts_row[i] > 0
            }
            buckets: dict[int, list] = {}
            for i in bits:  # ascending id order within each bucket
                buckets.setdefault(int(counts_row[i]), []).append(self.tokens[i])
            node._buckets = buckets


# ----------------------------------------------------------------------
# random forwarding kernel
# ----------------------------------------------------------------------


@register_kernel(RandomForwardNode)
class RandomForwardKernel(RoundKernel):
    """Random forwarding with integer-mask state and vectorised accounting.

    The protocol's randomness (``rng.choice`` over the node's tokens in
    insertion order) must replay the exact per-node generator streams of
    the object engines, so composition keeps one small draw per informed
    node; everything else — knowledge (per-node int bit masks plus
    insertion-order index lists), sizes, delivery counting, completion —
    avoids Message/Token objects entirely.
    """

    message_name = "TokenForwardMessage"
    supports_message_views = True

    def __init__(self, config, placement, token_index, nodes):
        super().__init__(config, placement, token_index, nodes)
        self.batch = tokens_per_message(config)
        self.rngs = [node.rng for node in nodes]
        self.costs = [t.token_id.bits + t.size_bits for t in self.tokens]
        self.full = (1 << self.k) - 1
        self.known_int: list[int] = []
        self.order: list[list[int]] = []
        for node in nodes:
            indexes = [token_index[tid] for tid in node.known]  # insertion order
            mask = 0
            for i in indexes:
                mask |= 1 << i
            self.order.append(indexes)
            self.known_int.append(mask)
        self._incomplete = {
            uid for uid in range(self.n) if self.known_int[uid] != self.full
        }
        self._chosen: list[list[int] | None] = [None] * self.n

    def compose_all(self, round_index):
        active = np.zeros(self.n, dtype=bool)
        sizes = np.zeros(self.n, dtype=np.int64)
        chosen_lists: list[list[int] | None] = [None] * self.n
        costs = self.costs
        batch = self.batch
        for uid in range(self.n):
            order = self.order[uid]
            count = len(order)
            if count == 0:
                continue
            if count <= batch:
                chosen = order[:]  # copy: receivers append to order in-place
            else:
                picks = self.rngs[uid].choice(count, size=batch, replace=False)
                chosen = [order[int(i)] for i in picks]
            chosen_lists[uid] = chosen
            active[uid] = True
            sizes[uid] = sum(costs[i] for i in chosen)
        self._chosen = chosen_lists
        return active, sizes

    def wire_message(self, uid, round_index):
        chosen = self._chosen[uid]
        if chosen is None:
            return None
        # ``chosen`` preserves the node's pick order (insertion-order
        # indexing plus the same rng.choice draw), so the message matches
        # the object engines token-for-token.
        return TokenForwardMessage(
            sender=uid, tokens=tuple(self.tokens[i] for i in chosen)
        )

    def deliver_all(self, round_index, indices, indptr, active, counts):
        changed = np.zeros(self.n, dtype=bool)
        chosen = self._chosen
        for uid in range(self.n):
            start, stop = int(indptr[uid]), int(indptr[uid + 1])
            if start == stop:
                continue
            mask = self.known_int[uid]
            before = mask
            order = self.order[uid]
            for v in indices[start:stop]:
                tokens = chosen[v]
                if tokens is None:
                    continue
                for i in tokens:
                    if not (mask >> i) & 1:
                        mask |= 1 << i
                        order.append(i)
            if mask != before:
                self.known_int[uid] = mask
                changed[uid] = True
        self._counts_cache = None
        return changed

    def _known_counts_now(self) -> np.ndarray:
        return np.fromiter(
            (len(order) for order in self.order), dtype=np.int64, count=self.n
        )

    def all_complete(self) -> bool:
        full = self.full
        known = self.known_int
        self._incomplete = {uid for uid in self._incomplete if known[uid] != full}
        return not self._incomplete

    def state_view(self, uid: int) -> NodeStateView:
        order = self.order[uid]
        return NodeStateView(
            uid=uid,
            rank=0,
            known_supplier=lambda: [self.tokens[i].token_id for i in order],
            known_count=len(order),
            membership=lambda token_id: self._knows(uid, token_id),
        )

    def _knows(self, uid: int, token_id) -> bool:
        bit = self.token_index.get(token_id)
        return bit is not None and bool((self.known_int[uid] >> bit) & 1)

    def to_nodes(self, nodes):
        for uid, node in enumerate(nodes):
            node.known.clear()
            for i in self.order[uid]:  # preserve learn order: compose draws
                token = self.tokens[i]  # index the dict-ordered token list
                node.known[token.token_id] = token


# ----------------------------------------------------------------------
# coded kernels (registered on import; see coded_kernels.py)
# ----------------------------------------------------------------------

# The network-coding kernels ride the batched GF(2) elimination core of
# repro.gf.packed and live in their own module; importing it here registers
# them and keeps the historical import path
# ``repro.simulation.kernels.IndexedBroadcastKernel`` working.
from .coded_kernels import (  # noqa: E402  (registration import)
    GreedyForwardKernel,
    IndexedBroadcastKernel,
    NaiveCodedKernel,
)
