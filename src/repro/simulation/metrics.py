"""Metrics collected by the simulation runner."""

from __future__ import annotations

from dataclasses import dataclass, field, fields

__all__ = ["RunMetrics"]


@dataclass
class RunMetrics:
    """Counters accumulated over one dissemination run.

    Attributes
    ----------
    rounds_executed:
        Total number of rounds the simulator ran.
    completion_round:
        First round (1-based count of completed rounds) after which every node
        knew every token; ``None`` if the run hit its round limit first.
    broadcasts:
        Number of non-silent broadcasts performed.
    silent_rounds:
        Number of (node, round) pairs in which a node chose to send nothing.
    total_message_bits:
        Sum of the bit sizes of all broadcast messages.
    max_message_bits:
        Largest single message observed.
    deliveries:
        Total number of (message, receiver) deliveries.
    useless_deliveries:
        Deliveries that did not change the receiver's knowledge (a direct
        measure of the "wasted broadcasts" the paper's Section 5.2 discusses);
        only protocols that report knowledge growth make this meaningful.
    dropped_deliveries:
        Deliveries erased by per-edge loss faults (would have happened
        otherwise: live sender, live receiver).
    duplicated_deliveries:
        Extra copies injected by per-edge duplication faults.
    corrupted_deliveries:
        Delivered copies whose content a Byzantine sender substituted
        (counted whether the receiver's span guard discarded them or
        accepted an in-span replay).
    collided_deliveries:
        Copies erased by radio-collision rounds: the receiver heard two or
        more simultaneous senders and the radio rule silenced these
        deliveries on the air.
    survivors:
        Number of honest nodes never scheduled to crash (fake quorum
        members excluded); ``None`` on benign runs.
    completed_survivors:
        How many survivors knew every token when the run ended; ``None``
        on benign runs.
    survivor_completion_round:
        First round after which every survivor knew every token (the
        faulted twin of ``completion_round``, which still demands the whole
        population — crashed nodes included — and so may never trigger).
    recoveries:
        Number of crash–recovery intervals whose node actually rejoined
        within the executed window; ``None`` on benign runs.
    reconvergence_rounds:
        Rounds between the last observed rejoin and the survivor
        completion round — how long the population needed to re-absorb the
        stale-state node; ``None`` when nothing recovered or the survivors
        never completed.
    fake_nodes:
        Number of fake quorum members a :class:`~repro.network.faults.QuorumModel`
        declared (they are excluded from every survivor figure above);
        ``None`` when no quorum model was active.
    progress:
        Optional per-round record of the minimum / mean number of known
        tokens across nodes (populated when progress tracking is enabled).
    """

    rounds_executed: int = 0
    completion_round: int | None = None
    broadcasts: int = 0
    silent_rounds: int = 0
    total_message_bits: int = 0
    max_message_bits: int = 0
    deliveries: int = 0
    useless_deliveries: int = 0
    dropped_deliveries: int = 0
    duplicated_deliveries: int = 0
    corrupted_deliveries: int = 0
    collided_deliveries: int = 0
    survivors: int | None = None
    completed_survivors: int | None = None
    survivor_completion_round: int | None = None
    recoveries: int | None = None
    reconvergence_rounds: int | None = None
    fake_nodes: int | None = None
    progress: list[tuple[int, int, float]] = field(default_factory=list)

    @property
    def completed(self) -> bool:
        """True iff all nodes learned all tokens within the round limit."""
        return self.completion_round is not None

    @property
    def average_message_bits(self) -> float:
        """Mean size of a broadcast message."""
        if self.broadcasts == 0:
            return 0.0
        return self.total_message_bits / self.broadcasts

    @property
    def waste_fraction(self) -> float:
        """Fraction of deliveries that taught the receiver nothing."""
        if self.deliveries == 0:
            return 0.0
        return self.useless_deliveries / self.deliveries

    @property
    def surviving_completion_rate(self) -> float | None:
        """Fraction of never-crashed nodes that learned everything.

        ``None`` on benign runs (no fault axis), where ``completed`` is the
        population-wide answer — and when there are no survivors at all
        (every node scheduled to crash): a rate over an empty population is
        undefined, not 0.0, so averaged sweep outputs can tell "no
        survivors" apart from "no survivor completed".
        """
        if not self.survivors:
            return None
        return (self.completed_survivors or 0) / self.survivors

    def record_broadcast(self, size_bits: int) -> None:
        """Account one broadcast of the given size."""
        self.broadcasts += 1
        self.total_message_bits += size_bits
        if size_bits > self.max_message_bits:
            self.max_message_bits = size_bits

    def record_silence(self) -> None:
        """Account one node staying silent for one round."""
        self.silent_rounds += 1

    def to_dict(self) -> dict:
        """Every field plus the derived properties, as JSON-safe values.

        Field coverage is by introspection, so a counter added to the
        dataclass lands here automatically; the derived read-only
        properties ride along under their property names.  ``progress``
        tuples become lists (JSON round-trips them as lists anyway).
        """
        data = {name.name: getattr(self, name.name) for name in fields(self)}
        data["progress"] = [list(entry) for entry in self.progress]
        data["completed"] = self.completed
        data["average_message_bits"] = self.average_message_bits
        data["waste_fraction"] = self.waste_fraction
        data["surviving_completion_rate"] = self.surviving_completion_rate
        return data

    def summary(self) -> dict:
        """A plain-dict summary convenient for printing in benchmarks."""
        data = self.to_dict()
        summary = {
            "rounds": data["rounds_executed"],
            "completion_round": data["completion_round"],
            "completed": data["completed"],
            "broadcasts": data["broadcasts"],
            "avg_message_bits": round(data["average_message_bits"], 1),
            "max_message_bits": data["max_message_bits"],
            "waste_fraction": round(data["waste_fraction"], 3),
        }
        if data["survivors"] is not None:
            rate = data["surviving_completion_rate"]
            summary.update(
                {
                    "survivors": data["survivors"],
                    "survivor_completion_round": data["survivor_completion_round"],
                    "surviving_completion_rate": round(rate, 3) if rate is not None else None,
                    "dropped": data["dropped_deliveries"],
                    "duplicated": data["duplicated_deliveries"],
                    "corrupted": data["corrupted_deliveries"],
                    "collided": data["collided_deliveries"],
                    "recoveries": data["recoveries"],
                    "reconvergence_rounds": data["reconvergence_rounds"],
                }
            )
        if data["fake_nodes"] is not None:
            summary["fake_nodes"] = data["fake_nodes"]
        return summary
