"""Metrics collected by the simulation runner."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RunMetrics"]


@dataclass
class RunMetrics:
    """Counters accumulated over one dissemination run.

    Attributes
    ----------
    rounds_executed:
        Total number of rounds the simulator ran.
    completion_round:
        First round (1-based count of completed rounds) after which every node
        knew every token; ``None`` if the run hit its round limit first.
    broadcasts:
        Number of non-silent broadcasts performed.
    silent_rounds:
        Number of (node, round) pairs in which a node chose to send nothing.
    total_message_bits:
        Sum of the bit sizes of all broadcast messages.
    max_message_bits:
        Largest single message observed.
    deliveries:
        Total number of (message, receiver) deliveries.
    useless_deliveries:
        Deliveries that did not change the receiver's knowledge (a direct
        measure of the "wasted broadcasts" the paper's Section 5.2 discusses);
        only protocols that report knowledge growth make this meaningful.
    progress:
        Optional per-round record of the minimum / mean number of known
        tokens across nodes (populated when progress tracking is enabled).
    """

    rounds_executed: int = 0
    completion_round: int | None = None
    broadcasts: int = 0
    silent_rounds: int = 0
    total_message_bits: int = 0
    max_message_bits: int = 0
    deliveries: int = 0
    useless_deliveries: int = 0
    progress: list[tuple[int, int, float]] = field(default_factory=list)

    @property
    def completed(self) -> bool:
        """True iff all nodes learned all tokens within the round limit."""
        return self.completion_round is not None

    @property
    def average_message_bits(self) -> float:
        """Mean size of a broadcast message."""
        if self.broadcasts == 0:
            return 0.0
        return self.total_message_bits / self.broadcasts

    @property
    def waste_fraction(self) -> float:
        """Fraction of deliveries that taught the receiver nothing."""
        if self.deliveries == 0:
            return 0.0
        return self.useless_deliveries / self.deliveries

    def record_broadcast(self, size_bits: int) -> None:
        """Account one broadcast of the given size."""
        self.broadcasts += 1
        self.total_message_bits += size_bits
        if size_bits > self.max_message_bits:
            self.max_message_bits = size_bits

    def record_silence(self) -> None:
        """Account one node staying silent for one round."""
        self.silent_rounds += 1

    def summary(self) -> dict:
        """A plain-dict summary convenient for printing in benchmarks."""
        return {
            "rounds": self.rounds_executed,
            "completion_round": self.completion_round,
            "completed": self.completed,
            "broadcasts": self.broadcasts,
            "avg_message_bits": round(self.average_message_bits, 1),
            "max_message_bits": self.max_message_bits,
            "waste_fraction": round(self.waste_fraction, 3),
        }
