"""Experiment harness: repeated runs, parameter sweeps, scaling fits.

The paper's claims are asymptotic; the benchmarks validate them by sweeping
a parameter (``n``, ``b``, ``T``, ...), averaging completion rounds over a
few seeds, and fitting power laws / comparing ratios.  This module holds
the shared machinery so each benchmark file stays declarative.

Two sweep execution modes are provided:

* :func:`sweep` — the classic callable-per-point runner, optionally fanned
  out over a process pool when the runner is picklable;
* :func:`sweep_tasks` — a declarative, fully picklable description
  (:class:`SweepTask`) of each point that always parallelises cleanly and
  can be memoised in a :class:`SweepCache` (a JSON file keyed by factory,
  configuration, adversary and seeds).

Per-point seeding is self-contained in both modes, so serial and parallel
execution produce bit-identical :class:`Measurement` values.
"""

from __future__ import annotations

import hashlib
import json
import math
import pickle
import statistics
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from ..algorithms.base import ProtocolConfig, ProtocolFactory
from ..network.adversary import Adversary
from ..tokens.message import MessageBudget
from ..tokens.token import TokenPlacement, make_tokens, one_token_per_node, place_tokens
from .runner import RunResult, run_dissemination

__all__ = [
    "Measurement",
    "SweepPoint",
    "SweepTask",
    "SweepCache",
    "measure",
    "standard_instance",
    "sweep",
    "sweep_tasks",
    "run_sweep_task",
    "fit_power_law",
    "ratio_table",
    "format_table",
]


@dataclass(frozen=True)
class Measurement:
    """Aggregated completion statistics over repeated seeded runs."""

    rounds_mean: float
    rounds_std: float
    rounds_min: int
    rounds_max: int
    completed_fraction: float
    bits_mean: float
    repetitions: int

    @property
    def all_completed(self) -> bool:
        """True iff every repetition disseminated all tokens."""
        return self.completed_fraction >= 1.0


@dataclass(frozen=True)
class SweepPoint:
    """One point of a parameter sweep."""

    parameters: Mapping[str, object]
    measurement: Measurement


def standard_instance(
    n: int,
    k: int | None,
    token_bits: int,
    seed: int = 0,
    copies: int = 1,
) -> TokenPlacement:
    """The canonical problem instance used across benchmarks.

    ``k = None`` (or ``k == n``) gives the paper's favourite case of one
    token per node; otherwise ``k`` tokens are created at the first ``k``
    nodes (an adversarial concentration that stresses gathering).
    """
    rng = np.random.default_rng(seed)
    if k is None or k == n:
        return one_token_per_node(n, token_bits, rng)
    k = min(k, n)
    tokens = make_tokens(k, token_bits, rng, origins=list(range(k)))
    return place_tokens(tokens, n, rng, copies=copies, at_origin=True)


def measure(
    factory: ProtocolFactory,
    config: ProtocolConfig,
    placement: TokenPlacement,
    adversary_factory: Callable[[], Adversary],
    *,
    repetitions: int = 3,
    base_seed: int = 1,
    max_rounds: int | None = None,
) -> Measurement:
    """Run ``repetitions`` seeded executions and aggregate completion rounds."""
    rounds: list[int] = []
    bits: list[int] = []
    completed = 0
    for rep in range(repetitions):
        result: RunResult = run_dissemination(
            factory,
            config,
            placement,
            adversary_factory(),
            seed=base_seed + rep * 1009,
            max_rounds=max_rounds,
        )
        rounds.append(result.rounds)
        bits.append(result.metrics.total_message_bits)
        if result.completed:
            completed += 1
    return Measurement(
        rounds_mean=float(statistics.mean(rounds)),
        rounds_std=float(statistics.pstdev(rounds)) if len(rounds) > 1 else 0.0,
        rounds_min=min(rounds),
        rounds_max=max(rounds),
        completed_fraction=completed / repetitions,
        bits_mean=float(statistics.mean(bits)),
        repetitions=repetitions,
    )


def sweep(
    points: Iterable[Mapping[str, object]],
    runner: Callable[[Mapping[str, object]], Measurement],
    *,
    max_workers: int | None = None,
) -> list[SweepPoint]:
    """Evaluate ``runner`` at every parameter point.

    With ``max_workers > 1`` the points are fanned out over a process pool
    (results keep the input order, and each point seeds its own randomness,
    so the measurements are identical to a serial run).  A runner that
    cannot be pickled — e.g. a lambda closing over local state — falls back
    to the serial path with a warning; use :func:`sweep_tasks` for sweeps
    that must parallelise.
    """
    point_list = [dict(p) for p in points]
    if max_workers is not None and max_workers > 1 and len(point_list) > 1:
        try:
            pickle.dumps(runner)
            picklable = True
        except Exception:
            picklable = False
            warnings.warn(
                "sweep(): runner is not picklable; running serially. "
                "Use sweep_tasks() for guaranteed parallel execution.",
                RuntimeWarning,
                stacklevel=2,
            )
        if picklable:
            with ProcessPoolExecutor(max_workers=max_workers) as executor:
                measurements = list(executor.map(runner, point_list))
            return [
                SweepPoint(parameters=parameters, measurement=measurement)
                for parameters, measurement in zip(point_list, measurements)
            ]
    return [
        SweepPoint(parameters=parameters, measurement=runner(parameters))
        for parameters in point_list
    ]


@dataclass(frozen=True)
class SweepTask:
    """A fully declarative (and picklable) description of one sweep point.

    The task pins everything a worker process needs: the protocol factory,
    the shared configuration, the adversary, and every seed involved — the
    instance seed that places the tokens and the base seed that drives the
    repetitions.  Running the same task twice (in any process) therefore
    yields the same :class:`Measurement`, which is also what makes the
    results cacheable.
    """

    factory: ProtocolFactory
    config: ProtocolConfig
    adversary_factory: Callable[[], Adversary]
    parameters: Mapping[str, object] = field(default_factory=dict)
    instance_k: int | None = None
    instance_seed: int = 0
    copies: int = 1
    repetitions: int = 3
    base_seed: int = 1
    max_rounds: int | None = None

    @staticmethod
    def _identity_digest(obj: object) -> str:
        """An identity string for a task component that never collides silently.

        Pickle is content-faithful where repr is not: classes and top-level
        functions pickle by reference (stable across runs), ``partial``
        pickles with its bound arguments, and configs pickle with their full
        ``extra`` payloads (``repr`` would truncate large numpy arrays into
        identical '...' strings).  Unpicklable objects (lambdas, closures)
        fall back to ``repr``, whose embedded object address makes the key
        unstable — such tasks simply never hit the cache, which is safe,
        rather than sharing a truncated key, which would serve wrong
        measurements.
        """
        try:
            return hashlib.sha256(pickle.dumps(obj)).hexdigest()
        except Exception:
            return repr(obj)

    def cache_key(self) -> str:
        """A stable digest of everything that determines the measurement.

        ``parameters`` is display metadata and deliberately excluded.  The
        package version is salted in so behaviour-changing releases (which
        shift RNG streams and round counts even for identical tasks)
        invalidate previously cached measurements; bump
        ``repro.__version__`` when protocol behaviour changes.
        """
        from .. import __version__

        material = "|".join(
            [
                __version__,
                self._identity_digest(self.factory),
                self._identity_digest(self.config),
                self._identity_digest(self.adversary_factory),
                str(self.instance_k),
                str(self.instance_seed),
                str(self.copies),
                str(self.repetitions),
                str(self.base_seed),
                str(self.max_rounds),
            ]
        )
        return hashlib.sha256(material.encode()).hexdigest()


def run_sweep_task(task: SweepTask) -> Measurement:
    """Execute one :class:`SweepTask` (the unit of work sent to a worker)."""
    placement = standard_instance(
        task.config.n,
        task.instance_k if task.instance_k is not None else task.config.k,
        task.config.token_bits,
        seed=task.instance_seed,
        copies=task.copies,
    )
    return measure(
        task.factory,
        task.config,
        placement,
        task.adversary_factory,
        repetitions=task.repetitions,
        base_seed=task.base_seed,
        max_rounds=task.max_rounds,
    )


class SweepCache:
    """A JSON-file-backed memo of sweep measurements.

    Entries are keyed by :meth:`SweepTask.cache_key` — a digest of (factory,
    config, adversary, seeds) — so re-running a benchmark only recomputes
    points whose definition changed.  The file is human-readable JSON, one
    entry per key, safe to delete at any time.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._entries: dict[str, dict] = {}
        if self.path.exists():
            try:
                self._entries = json.loads(self.path.read_text())
            except (OSError, json.JSONDecodeError):
                self._entries = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Measurement | None:
        """The cached measurement for ``key``, or None."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        try:
            return Measurement(**entry)
        except TypeError:
            return None

    def put(self, key: str, measurement: Measurement) -> None:
        """Record a measurement (call :meth:`save` to persist)."""
        self._entries[key] = asdict(measurement)

    def save(self) -> None:
        """Write the cache file atomically."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(self._entries, indent=1, sort_keys=True))
        tmp.replace(self.path)


def sweep_tasks(
    tasks: Sequence[SweepTask],
    *,
    max_workers: int | None = None,
    cache: SweepCache | str | Path | None = None,
) -> list[SweepPoint]:
    """Evaluate declarative sweep tasks, optionally in parallel and cached.

    Parameters
    ----------
    tasks:
        The points to evaluate.  Order is preserved in the result.
    max_workers:
        ``None`` or ``<= 1`` runs serially; larger values fan the uncached
        tasks out over a :class:`~concurrent.futures.ProcessPoolExecutor`.
        Each task is fully self-seeded, so the measurements are identical
        either way.
    cache:
        A :class:`SweepCache` (or a path to create one) consulted before
        running and updated (and saved) afterwards.
    """
    if cache is not None and not isinstance(cache, SweepCache):
        cache = SweepCache(cache)

    measurements: list[Measurement | None] = [None] * len(tasks)
    pending: list[int] = []
    for index, task in enumerate(tasks):
        if cache is not None:
            hit = cache.get(task.cache_key())
            if hit is not None:
                measurements[index] = hit
                continue
        pending.append(index)

    if pending:
        if max_workers is not None and max_workers > 1 and len(pending) > 1:
            with ProcessPoolExecutor(max_workers=max_workers) as executor:
                computed = list(executor.map(run_sweep_task, [tasks[i] for i in pending]))
        else:
            computed = [run_sweep_task(tasks[i]) for i in pending]
        for index, measurement in zip(pending, computed):
            measurements[index] = measurement
            if cache is not None:
                cache.put(tasks[index].cache_key(), measurement)
        if cache is not None:
            cache.save()

    return [
        SweepPoint(parameters=dict(task.parameters), measurement=measurement)
        for task, measurement in zip(tasks, measurements)
    ]


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float]:
    """Fit ``y ~ c * x^alpha`` by least squares in log-log space.

    Returns ``(alpha, c)``.  Used to check scaling exponents, e.g. that
    token-forwarding rounds grow ~quadratically in ``n`` while coded rounds
    grow ~quadratically/ log n, or that rounds fall ~quadratically in ``b``.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two (x, y) pairs of equal length")
    log_x = np.log(np.asarray(xs, dtype=float))
    log_y = np.log(np.asarray(ys, dtype=float))
    alpha, log_c = np.polyfit(log_x, log_y, 1)
    return float(alpha), float(math.exp(log_c))


def ratio_table(
    sweep_points: Sequence[SweepPoint],
    baseline_points: Sequence[SweepPoint],
) -> list[dict]:
    """Combine two sweeps over the same parameters into speedup ratios."""
    rows = []
    for ours, base in zip(sweep_points, baseline_points):
        if ours.parameters != base.parameters:
            raise ValueError("sweeps are not aligned on the same parameter points")
        speedup = (
            base.measurement.rounds_mean / ours.measurement.rounds_mean
            if ours.measurement.rounds_mean
            else float("inf")
        )
        row = dict(ours.parameters)
        row["rounds"] = ours.measurement.rounds_mean
        row["baseline_rounds"] = base.measurement.rounds_mean
        row["speedup"] = round(speedup, 2)
        rows.append(row)
    return rows


def format_table(rows: Sequence[Mapping[str, object]], title: str = "") -> str:
    """Render a list of dict rows as a fixed-width text table for bench output."""
    if not rows:
        return f"{title}\n(no data)"
    columns = list(rows[0].keys())
    widths = {
        col: max(len(str(col)), *(len(str(row.get(col, ""))) for row in rows))
        for col in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(col).ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[col] for col in columns))
    for row in rows:
        lines.append(
            " | ".join(str(row.get(col, "")).ljust(widths[col]) for col in columns)
        )
    return "\n".join(lines)
