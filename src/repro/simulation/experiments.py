"""Experiment harness: repeated runs, parameter sweeps, scaling fits.

The paper's claims are asymptotic; the benchmarks validate them by sweeping
a parameter (``n``, ``b``, ``T``, ...), averaging completion rounds over a
few seeds, and fitting power laws / comparing ratios.  This module holds
the shared machinery so each benchmark file stays declarative.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from ..algorithms.base import ProtocolConfig, ProtocolFactory
from ..network.adversary import Adversary
from ..tokens.message import MessageBudget
from ..tokens.token import TokenPlacement, make_tokens, one_token_per_node, place_tokens
from .runner import RunResult, run_dissemination

__all__ = [
    "Measurement",
    "SweepPoint",
    "measure",
    "standard_instance",
    "sweep",
    "fit_power_law",
    "ratio_table",
    "format_table",
]


@dataclass(frozen=True)
class Measurement:
    """Aggregated completion statistics over repeated seeded runs."""

    rounds_mean: float
    rounds_std: float
    rounds_min: int
    rounds_max: int
    completed_fraction: float
    bits_mean: float
    repetitions: int

    @property
    def all_completed(self) -> bool:
        """True iff every repetition disseminated all tokens."""
        return self.completed_fraction >= 1.0


@dataclass(frozen=True)
class SweepPoint:
    """One point of a parameter sweep."""

    parameters: Mapping[str, object]
    measurement: Measurement


def standard_instance(
    n: int,
    k: int | None,
    token_bits: int,
    seed: int = 0,
    copies: int = 1,
) -> TokenPlacement:
    """The canonical problem instance used across benchmarks.

    ``k = None`` (or ``k == n``) gives the paper's favourite case of one
    token per node; otherwise ``k`` tokens are created at the first ``k``
    nodes (an adversarial concentration that stresses gathering).
    """
    rng = np.random.default_rng(seed)
    if k is None or k == n:
        return one_token_per_node(n, token_bits, rng)
    k = min(k, n)
    tokens = make_tokens(k, token_bits, rng, origins=list(range(k)))
    return place_tokens(tokens, n, rng, copies=copies, at_origin=True)


def measure(
    factory: ProtocolFactory,
    config: ProtocolConfig,
    placement: TokenPlacement,
    adversary_factory: Callable[[], Adversary],
    *,
    repetitions: int = 3,
    base_seed: int = 1,
    max_rounds: int | None = None,
) -> Measurement:
    """Run ``repetitions`` seeded executions and aggregate completion rounds."""
    rounds: list[int] = []
    bits: list[int] = []
    completed = 0
    for rep in range(repetitions):
        result: RunResult = run_dissemination(
            factory,
            config,
            placement,
            adversary_factory(),
            seed=base_seed + rep * 1009,
            max_rounds=max_rounds,
        )
        rounds.append(result.rounds)
        bits.append(result.metrics.total_message_bits)
        if result.completed:
            completed += 1
    return Measurement(
        rounds_mean=float(statistics.mean(rounds)),
        rounds_std=float(statistics.pstdev(rounds)) if len(rounds) > 1 else 0.0,
        rounds_min=min(rounds),
        rounds_max=max(rounds),
        completed_fraction=completed / repetitions,
        bits_mean=float(statistics.mean(bits)),
        repetitions=repetitions,
    )


def sweep(
    points: Iterable[Mapping[str, object]],
    runner: Callable[[Mapping[str, object]], Measurement],
) -> list[SweepPoint]:
    """Evaluate ``runner`` at every parameter point."""
    results = []
    for parameters in points:
        results.append(SweepPoint(parameters=dict(parameters), measurement=runner(parameters)))
    return results


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float]:
    """Fit ``y ~ c * x^alpha`` by least squares in log-log space.

    Returns ``(alpha, c)``.  Used to check scaling exponents, e.g. that
    token-forwarding rounds grow ~quadratically in ``n`` while coded rounds
    grow ~quadratically/ log n, or that rounds fall ~quadratically in ``b``.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two (x, y) pairs of equal length")
    log_x = np.log(np.asarray(xs, dtype=float))
    log_y = np.log(np.asarray(ys, dtype=float))
    alpha, log_c = np.polyfit(log_x, log_y, 1)
    return float(alpha), float(math.exp(log_c))


def ratio_table(
    sweep_points: Sequence[SweepPoint],
    baseline_points: Sequence[SweepPoint],
) -> list[dict]:
    """Combine two sweeps over the same parameters into speedup ratios."""
    rows = []
    for ours, base in zip(sweep_points, baseline_points):
        if ours.parameters != base.parameters:
            raise ValueError("sweeps are not aligned on the same parameter points")
        speedup = (
            base.measurement.rounds_mean / ours.measurement.rounds_mean
            if ours.measurement.rounds_mean
            else float("inf")
        )
        row = dict(ours.parameters)
        row["rounds"] = ours.measurement.rounds_mean
        row["baseline_rounds"] = base.measurement.rounds_mean
        row["speedup"] = round(speedup, 2)
        rows.append(row)
    return rows


def format_table(rows: Sequence[Mapping[str, object]], title: str = "") -> str:
    """Render a list of dict rows as a fixed-width text table for bench output."""
    if not rows:
        return f"{title}\n(no data)"
    columns = list(rows[0].keys())
    widths = {
        col: max(len(str(col)), *(len(str(row.get(col, ""))) for row in rows))
        for col in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(col).ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[col] for col in columns))
    for row in rows:
        lines.append(
            " | ".join(str(row.get(col, "")).ljust(widths[col]) for col in columns)
        )
    return "\n".join(lines)
