"""The synchronous round executor for the dynamic network model.

One round (Section 4.1), for an adaptive adversary:

1. each node's sanitised state is snapshotted;
2. the adversary fixes the connected topology ``G(t)`` from the snapshot;
3. each node composes its O(b)-bit broadcast message *without knowing its
   neighbours*;
4. every node receives the messages of its ``G(t)``-neighbours.

Omniscient adversaries (``sees_messages``) are instead shown the composed
messages before choosing the topology, which models "knowing all the
randomness in advance" operationally (Section 6).

The runner also enforces the message budget, tracks metrics, detects
completion (every node can output every token), and verifies payload
correctness at the end.

Three execution engines implement the identical round semantics:

* **kernel** (default whenever the protocol ships a
  :class:`~repro.simulation.kernels.RoundKernel`) — whole-network state
  lives in packed numpy arrays and one round is ``compose_all`` -> masked
  adjacency propagation (CSR gather + ``bitwise_or.reduceat``) ->
  ``deliver_all``, with no per-node Python objects on the hot path; the
  final state is materialised back into ordinary nodes.  See
  :mod:`repro.simulation.kernels`.
* **mask** — topologies are mask-native
  :class:`~repro.network.topology.Topology` objects validated once per
  distinct object (identity-cached, so static and T-stable adversaries are
  checked once per topology instead of once per round); node state
  snapshots are lazy views; per-node knowledge is an incrementally-
  maintained integer ``knowledge_mask`` so the completion check, progress
  tracking and useless-delivery fingerprints are O(1)-O(n) mask
  operations; and delivery reads cached per-node neighbour tuples.
* **legacy** — the original ``networkx``/frozenset data flow (fresh graph
  validation every round, eager frozenset snapshots, O(n*k) set-inclusion
  completion check).  Kept for custom protocols whose ``known_token_ids``
  overrides opt them out of mask tracking, and as the measured baseline of
  ``benchmarks/bench_e16_round_engine.py``.

Under ``engine="auto"`` the most specialised applicable engine wins:
kernel when the factory is a registered node class, the configuration is
supported and the adversary is not omniscient; else mask when every node
supports knowledge-mask tracking; else legacy.  All engines deliver each
node's inbox in ascending neighbour-uid order and produce identical
metrics for identical seeds (verified by tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import networkx as nx
import numpy as np

from ..algorithms.base import ProtocolConfig, ProtocolFactory, ProtocolNode
from ..network.adversary import Adversary
from ..network.faults import BoundFaults, FaultModel, SpanGuard, StateView
from ..network.graphs import validate_topology
from ..network.topology import Topology, TopologyValidationCache
from ..obs.profiler import NULL_PROFILER
from ..obs.trace import TraceRecorder
from ..tokens.message import Message
from ..tokens.token import TokenPlacement
from . import kernels
from .metrics import RunMetrics

__all__ = ["RunResult", "run_dissemination", "build_nodes"]


@dataclass
class RunResult:
    """Outcome of one dissemination run.

    Attributes
    ----------
    metrics:
        Aggregated counters (rounds, bits, completion round, ...).
    nodes:
        The final node objects (useful for post-hoc inspection in tests).
    correct:
        True iff at completion every node output every token with the right
        payload.  ``None`` when the run did not complete within its limit.
    topologies:
        The recorded topology sequence (only if ``record_topologies``):
        :class:`~repro.network.topology.Topology` objects on the kernel and
        mask engines, ``networkx`` graphs on the legacy engine.  Both
        satisfy the stability checkers in :mod:`repro.network.stability`.
    engine:
        Which execution engine actually ran: ``"kernel"``, ``"mask"`` or
        ``"legacy"`` (resolves the ``engine="auto"`` choice for callers).
    """

    metrics: RunMetrics
    nodes: list[ProtocolNode]
    correct: bool | None
    topologies: list = field(default_factory=list)
    engine: str = ""

    @property
    def rounds(self) -> int:
        """Rounds until completion (falls back to rounds executed)."""
        if self.metrics.completion_round is not None:
            return self.metrics.completion_round
        return self.metrics.rounds_executed

    @property
    def completed(self) -> bool:
        """True iff the run disseminated everything within its round limit."""
        return self.metrics.completed


def build_nodes(
    factory: ProtocolFactory,
    config: ProtocolConfig,
    placement: TokenPlacement,
    rng: np.random.Generator,
) -> list[ProtocolNode]:
    """Instantiate and set up one protocol node per network participant.

    Node randomness comes from ``rng.spawn``-ed child generators —
    statistically independent streams derived through NumPy's SeedSequence
    spawning, replacing the earlier ``default_rng(rng.integers(0, 2**63 - 1))``
    re-seeding (which drew from a documented-exclusive upper bound and keyed
    children off a single 63-bit draw).  Seed-compat: runs seeded under the
    old scheme reproduce different (still deterministic) executions.
    """
    nodes: list[ProtocolNode] = []
    for uid, node_rng in enumerate(rng.spawn(config.n)):
        node = factory(uid, config, node_rng)
        node.setup(placement.tokens_at(uid))
        nodes.append(node)
    return nodes


def _legacy_fingerprint(node: ProtocolNode) -> tuple[int, int]:
    return (len(node.known_token_ids()), node.coded_rank())


def _coded_span_guard(nodes: Sequence[ProtocolNode]) -> SpanGuard | None:
    """The Byzantine verification oracle, when the protocol supports one.

    Only protocols with a shared static generation (indexed broadcast on
    the mask-native GF(2) pipeline) expose a source span receivers can
    verify against; for everything else Byzantine traffic is unverifiable
    and the fault plan discards it wholesale.
    """
    node0 = nodes[0] if nodes else None
    generation = getattr(node0, "generation", None)
    state = getattr(node0, "state", None)
    if generation is None or state is None:
        return None
    if not all(getattr(node.state, "_mask_native", False) for node in nodes):
        return None
    sources: list[int] = []
    for node in nodes:
        sources.extend(node.state.subspace._gf2.rows_in_insertion_order())
    if not any(sources):
        return None
    return SpanGuard(generation.vector_length, sources)


def _substitute_wire(nodes, outgoing, overrides) -> None:
    """Replace Byzantine senders' composed messages on the wire (replay mode)."""
    for uid, mask in overrides.items():
        if outgoing[uid] is not None:
            outgoing[uid] = nodes[uid].generation.message_from_mask(uid, mask)


def _nx_csr(nx_view, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Ascending-neighbour CSR adjacency of a legacy networkx round graph."""
    neighbour_lists = [sorted(nx_view.neighbors(uid)) for uid in range(n)]
    indptr = np.zeros(n + 1, dtype=np.int64)
    for uid, neighbours in enumerate(neighbour_lists):
        indptr[uid + 1] = indptr[uid] + len(neighbours)
    indices = np.fromiter(
        (v for neighbours in neighbour_lists for v in neighbours),
        dtype=np.int64,
        count=int(indptr[-1]),
    )
    return indices, indptr


def _check_correctness(nodes: Sequence[ProtocolNode], placement: TokenPlacement) -> bool:
    expected = placement.by_id()
    for node in nodes:
        decoded = node.decoded_tokens()
        for token_id, token in expected.items():
            got = decoded.get(token_id)
            if got is None or got.payload != token.payload:
                return False
    return True


def run_dissemination(
    factory: ProtocolFactory,
    config: ProtocolConfig,
    placement: TokenPlacement,
    adversary: Adversary,
    *,
    seed: int = 0,
    max_rounds: int | None = None,
    stop_at_completion: bool = True,
    record_topologies: bool = False,
    track_progress: bool = False,
    engine: str = "auto",
    faults: FaultModel | None = None,
    trace: TraceRecorder | None = None,
) -> RunResult:
    """Run one complete dissemination execution and return its result.

    Parameters
    ----------
    factory:
        Builds a protocol node given (uid, config, rng).
    config:
        Shared problem parameters.
    placement:
        The adversarially-chosen initial token placement.
    adversary:
        The topology-controlling adversary.
    seed:
        Master seed; node randomness and any runner randomness derive from it.
    max_rounds:
        Hard round limit; defaults to a generous multiple of the worst
        baseline bound ``n * k`` (so non-terminating bugs surface as a
        non-completed run rather than a hang).
    stop_at_completion:
        Stop as soon as every node knows every token (the usual measurement
        mode); set False to keep running until nodes terminate locally.
    record_topologies:
        Keep the per-round graphs (for stability checks in tests).
    track_progress:
        Record per-round (min, mean) known-token counts in the metrics.
    engine:
        ``"auto"`` (the most specialised applicable engine: kernel, else
        mask, else legacy), ``"kernel"`` (require a registered
        :class:`~repro.simulation.kernels.RoundKernel`; raises if the
        protocol has none, or if the adversary is omniscient and the kernel
        does not support message views), ``"mask"`` (require the mask fast
        path; raises if a node opts out), or ``"legacy"`` (force the
        original nx/frozenset data flow).
    faults:
        Optional :class:`~repro.network.faults.FaultModel` — the hostile
        axis orthogonal to ``adversary``: per-edge loss/duplication,
        crash–recovery intervals and permanent crashes, scheduled
        partitions, adaptive :class:`~repro.network.faults.FaultStrategy`
        adversaries (including protocol-state-aware ``wants_state``
        strategies), Byzantine coded senders, radio-collision rounds and
        fake quorum membership.  Fault randomness comes from one
        ``rng.spawn``-ed stream drawn after node construction, so a benign
        model leaves the run bit-identical to ``faults=None``.  Under
        faults the stop rule, the reported correctness and the survivor
        metrics are computed over the never-permanently-crashed honest
        population (recovering nodes included, fake quorum members
        excluded), queried per round because adaptive strategies may claim
        victims mid-run.  A :class:`~repro.network.faults.QuorumModel`
        additionally requires its fake nodes to hold no placement tokens.
    trace:
        Optional :class:`~repro.obs.trace.TraceRecorder` collecting one
        columnar record per executed round (per-node knowledge counts and
        coded ranks, fault events, per-round counter deltas) plus — when
        the recorder carries a clock — wall-clock phase timings.  Tracing
        never changes the execution: every engine produces bit-identical
        ``RunMetrics`` with and without a recorder attached, and the
        recorded trace *content* is byte-identical across engines.
    """
    if engine not in ("auto", "mask", "legacy", "kernel"):
        raise ValueError(
            f"engine must be 'auto', 'mask', 'legacy' or 'kernel', got {engine!r}"
        )
    adversary.reset()
    rng = np.random.default_rng(seed)
    nodes = build_nodes(factory, config, placement, rng)
    all_token_ids = placement.all_ids()
    metrics = RunMetrics()
    topologies: list = []

    # Fault binding happens after node construction and only for an active
    # model, so the node rng streams — and benign runs entirely — stay
    # bit-identical to the faultless code path.
    bound: BoundFaults | None = None
    if faults is not None and faults.active:
        bound = faults.bind(config.n, rng.spawn(1)[0])
        if bound.wants_guard:
            bound.attach_guard(_coded_span_guard(nodes))
        if faults.quorum is not None:
            # Fake quorum members never originate honest tokens: a
            # placement seeding one would let a non-member hold knowledge
            # the honest quorum is then measured against.
            for uid in faults.quorum.fake:
                if placement.tokens_at(uid):
                    raise ValueError(
                        f"fake quorum node {uid} holds placement tokens; "
                        "fake members must never originate honest tokens"
                    )

    if max_rounds is None:
        max_rounds = 20 * config.n * max(1, config.k) + 200

    # Fast-path setup: a stable token-id -> bit-index mapping shared by all
    # nodes.  Nodes whose class overrides known_token_ids() decline tracking,
    # which drops the whole run to the legacy engine under "auto".
    token_index = {tid: i for i, tid in enumerate(sorted(all_token_ids))}
    mask_ready = all(node.enable_mask_tracking(token_index) for node in nodes)
    if engine == "mask" and not mask_ready:
        raise ValueError(
            "engine='mask' requires every node to support knowledge-mask "
            "tracking (a node class overriding known_token_ids() opted out)"
        )

    # Kernel engine dispatch: the factory must *be* a registered node class
    # (exact identity, so subclasses never inherit a kernel), the kernel must
    # support this configuration, and the adversary must not demand to see
    # per-node message objects the kernel engine never builds.
    kernel_cls = kernels.kernel_for(factory, config)
    wants_state = bound is not None and bound.wants_state
    if engine == "kernel":
        if kernel_cls is None:
            raise ValueError(
                "engine='kernel' requires the protocol factory to be a node "
                "class with a registered RoundKernel (see "
                "repro.simulation.kernels.register_kernel)"
            )
        if adversary.sees_messages and not kernel_cls.supports_message_views:
            raise ValueError(
                f"{kernel_cls.__name__} does not build per-node message "
                "views, so omniscient (sees_messages) adversaries are not "
                "supported; use engine='mask'"
            )
        if wants_state and not kernel_cls.supports_state_views:
            raise ValueError(
                f"{kernel_cls.__name__} does not expose per-round state "
                "views, so state-aware (wants_state) fault strategies are "
                "not supported; use engine='mask'"
            )
        if not mask_ready:
            raise ValueError(
                "engine='kernel' requires every node to support knowledge-mask "
                "tracking"
            )
    use_kernel = engine == "kernel" or (
        engine == "auto"
        and kernel_cls is not None
        and mask_ready
        and (not adversary.sees_messages or kernel_cls.supports_message_views)
        and (not wants_state or kernel_cls.supports_state_views)
    )
    kernel = None
    if use_kernel:
        try:
            kernel = kernel_cls(config, placement, token_index, nodes)
        except kernels.KernelUnsupported as exc:
            # Node-level preconditions can only be checked post-construction;
            # auto falls back to the mask engine, an explicit request fails.
            if engine == "kernel":
                raise ValueError(str(exc)) from exc
    profiler = NULL_PROFILER if trace is None else trace.profiler
    if kernel is not None:
        if trace is not None:
            trace.begin_run(
                config=config,
                seed=seed,
                engine="kernel",
                factory=factory,
                faults=faults,
            )
        topologies = kernels.run_kernel_rounds(
            kernel,
            config,
            adversary,
            metrics,
            max_rounds=max_rounds,
            stop_at_completion=stop_at_completion,
            record_topologies=record_topologies,
            track_progress=track_progress,
            faults=bound,
            trace=trace,
        )
        if bound is not None:
            complete = kernel.completed_flags()
            metrics.survivors = int(bound.survivor_indices.size)
            metrics.completed_survivors = int(
                complete[bound.survivor_indices].sum()
            )
            metrics.recoveries, metrics.reconvergence_rounds = (
                bound.recovery_metrics(
                    metrics.rounds_executed, metrics.survivor_completion_round
                )
            )
            if bound.model.quorum is not None:
                metrics.fake_nodes = len(bound.model.quorum.fake)
        with profiler.span("materialise"):
            kernel.to_nodes(nodes)
        if bound is None:
            correct = (
                _check_correctness(nodes, placement)
                if metrics.completion_round is not None
                else None
            )
        else:
            survivors = [nodes[i] for i in bound.survivor_indices.tolist()]
            correct = (
                _check_correctness(survivors, placement)
                if metrics.survivor_completion_round is not None
                else None
            )
        return RunResult(
            metrics=metrics,
            nodes=nodes,
            correct=correct,
            topologies=topologies,
            engine="kernel",
        )

    use_mask = mask_ready and engine != "legacy"
    full_mask = (1 << len(token_index)) - 1
    incomplete = set(range(config.n)) if use_mask else set()
    if use_mask:
        incomplete = {uid for uid in incomplete if nodes[uid].knowledge_mask() != full_mask}

    # Single-slot identity-keyed validation cache (shared helper with the
    # kernel engine): static and T-stable topologies are validated once per
    # object instead of once per round; mutable nx graphs are re-validated
    # every time, exactly as the legacy engine treats them.
    validation_cache = TopologyValidationCache()

    def _round_views(graph) -> tuple[Topology | None, nx.Graph | None]:
        """Validate the round graph once, in the active engine's representation."""
        if use_mask:
            return validation_cache.validated(graph, config.n), None
        # Legacy engine: full networkx validation every round.
        nx_view = graph.to_nx() if isinstance(graph, Topology) else graph
        validate_topology(nx_view, config.n)
        return None, nx_view

    # Optional shared coordinator hook (see algorithms/tstable.py): a single
    # object shared by all nodes that may observe the round topology.  This is
    # the documented structured-simulation shortcut for the patch-sharing
    # algorithm; ordinary protocols have no coordinator.  It consumes the
    # ``networkx`` projection (cached per Topology object, so T-stable blocks
    # materialise it once; on the legacy engine it is the adversary's own
    # graph, the same object ``after_round`` sees).
    coordinator = getattr(nodes[0], "shared_coordinator", None) if nodes else None

    if trace is not None:
        trace.begin_run(
            config=config,
            seed=seed,
            engine="mask" if use_mask else "legacy",
            factory=factory,
            faults=faults,
        )

    for round_index in range(max_rounds):
        plan = bound.begin_round(round_index) if bound is not None else None
        states = [node.state_view() for node in nodes]
        if not use_mask:
            # Legacy data flow: eager frozenset snapshots, as the seed
            # implementation materialised them.
            for state in states:
                state.known_token_ids

        if adversary.sees_messages:
            with profiler.span("compose"):
                outgoing = [node.compose(round_index) for node in nodes]
            if plan is not None and plan.substitute:
                _substitute_wire(nodes, outgoing, plan.substitute)
            graph = adversary.choose_topology(round_index, config.n, states, outgoing)
            topology, nx_view = _round_views(graph)
            if coordinator is not None:
                coordinator.on_topology(
                    round_index, topology.to_nx() if use_mask else nx_view, nodes
                )
        else:
            graph = adversary.choose_topology(round_index, config.n, states)
            topology, nx_view = _round_views(graph)
            if coordinator is not None:
                coordinator.on_topology(
                    round_index, topology.to_nx() if use_mask else nx_view, nodes
                )
            with profiler.span("compose"):
                outgoing = [node.compose(round_index) for node in nodes]
            if plan is not None and plan.substitute:
                _substitute_wire(nodes, outgoing, plan.substitute)

        if record_topologies:
            topologies.append(topology if use_mask else nx_view)

        eff_indices: np.ndarray | None = None
        eff_indptr: np.ndarray | None = None
        active: np.ndarray | None = None
        if plan is not None:
            if use_mask:
                base_indices, base_indptr = topology.csr_adjacency()
            else:
                base_indices, base_indptr = _nx_csr(nx_view, config.n)
            # Compose already ran, so the transmission mask exists before
            # the faults are drawn — collisions need to know who occupies
            # the air, and a wants_state strategy sees the same
            # post-compose snapshot the trace layer extracts.
            active = np.fromiter(
                (message is not None for message in outgoing),
                dtype=bool,
                count=config.n,
            )
            state = None
            if bound.wants_state:
                state = StateView(
                    np.fromiter(
                        (
                            (
                                len(node.known)
                                if use_mask
                                else len(node.known_token_ids())
                            )
                            for node in nodes
                        ),
                        dtype=np.int64,
                        count=config.n,
                    ),
                    np.fromiter(
                        (node.coded_rank() for node in nodes),
                        dtype=np.int64,
                        count=config.n,
                    ),
                )
            # The adaptive strategy is consulted in here and may crash
            # nodes mid-round: ``plan.down`` is final only afterwards, so
            # the accounting below must wait for this call — the same
            # ordering the kernel engine uses.
            with profiler.span("faults"):
                eff_indices, eff_indptr = plan.bind_edges(
                    base_indices, base_indptr, active=active, state=state
                )

        # Budget enforcement and broadcast accounting.  A crashed node's
        # radio is off: it still composes (identical rng consumption keeps
        # engine parity) but transmits nothing and counts as silent.
        for uid, message in enumerate(outgoing):
            if message is None or (plan is not None and plan.down[uid]):
                metrics.record_silence()
                continue
            if not isinstance(message, Message):
                raise TypeError(
                    f"protocol composed a non-Message object: {type(message)!r}"
                )
            config.budget.check(message)
            metrics.record_broadcast(message.size_bits)

        # Delivery: each node receives its neighbours' messages, in ascending
        # neighbour-uid order on both engines.
        if plan is not None:
            # Faulted delivery runs over the plan's effective CSR — shared
            # verbatim with the kernel engine, which is what keeps faulted
            # metrics byte-identical across all three engines.
            sending = active & ~plan.down
            stats = plan.account(sending)
            metrics.dropped_deliveries += stats.dropped
            metrics.duplicated_deliveries += stats.duplicated
            metrics.corrupted_deliveries += stats.corrupted
            metrics.collided_deliveries += stats.collided
            metrics.deliveries += stats.discarded
            with profiler.span("deliver"):
                for uid, node in enumerate(nodes):
                    start, stop = int(eff_indptr[uid]), int(eff_indptr[uid + 1])
                    inbox = [
                        outgoing[v]
                        for v in eff_indices[start:stop].tolist()
                        if outgoing[v] is not None
                    ]
                    if inbox:
                        before = (
                            (len(node.known), node.coded_rank())
                            if use_mask
                            else _legacy_fingerprint(node)
                        )
                        node.deliver(round_index, inbox)
                        metrics.deliveries += len(inbox)
                        after = (
                            (len(node.known), node.coded_rank())
                            if use_mask
                            else _legacy_fingerprint(node)
                        )
                        if after == before:
                            metrics.useless_deliveries += len(inbox)
                    else:
                        node.deliver(round_index, inbox)
        elif use_mask:
            # The neighbour tuples are cached on the Topology object, so a
            # static or T-stable topology pays the per-bit mask iteration
            # once per object/block instead of once per round.
            with profiler.span("deliver"):
                for uid, node in enumerate(nodes):
                    inbox = [
                        message
                        for message in map(
                            outgoing.__getitem__, topology.neighbors_tuple(uid)
                        )
                        if message is not None
                    ]
                    if inbox:
                        before = (len(node.known), node.coded_rank())
                        node.deliver(round_index, inbox)
                        metrics.deliveries += len(inbox)
                        if (len(node.known), node.coded_rank()) == before:
                            metrics.useless_deliveries += len(inbox)
                    else:
                        node.deliver(round_index, inbox)
        else:
            with profiler.span("deliver"):
                for uid, node in enumerate(nodes):
                    inbox = [
                        outgoing[neighbour]
                        for neighbour in sorted(nx_view.neighbors(uid))
                        if outgoing[neighbour] is not None
                    ]
                    # The fingerprint (a coded_rank() call) is only needed
                    # for nodes that actually receive messages this round;
                    # deliver() only mutates the receiving node, so taking
                    # it lazily right before the call is equivalent to the
                    # old eager pass.
                    if inbox:
                        before = _legacy_fingerprint(node)
                        node.deliver(round_index, inbox)
                        metrics.deliveries += len(inbox)
                        if _legacy_fingerprint(node) == before:
                            metrics.useless_deliveries += len(inbox)
                    else:
                        node.deliver(round_index, inbox)

        if coordinator is not None:
            coordinator.after_round(
                round_index,
                topology.to_nx() if use_mask else nx_view,
                nodes,
            )

        metrics.rounds_executed = round_index + 1

        if track_progress:
            counts = (
                [len(node.known) for node in nodes]
                if use_mask
                else [len(node.known_token_ids()) for node in nodes]
            )
            metrics.progress.append(
                (round_index + 1, min(counts), float(np.mean(counts)))
            )

        if trace is not None:
            trace.observe_round(
                round_index,
                metrics,
                np.fromiter(
                    (
                        (len(node.known) if use_mask else len(node.known_token_ids()))
                        for node in nodes
                    ),
                    dtype=np.int64,
                    count=config.n,
                ),
                np.fromiter(
                    (node.coded_rank() for node in nodes),
                    dtype=np.int64,
                    count=config.n,
                ),
                plan,
            )

        if metrics.completion_round is None:
            if use_mask:
                # Incremental completion: only nodes still missing tokens are
                # re-examined, each with one O(k/64) mask comparison.
                for uid in [u for u in incomplete if nodes[u].knowledge_mask() == full_mask]:
                    incomplete.discard(uid)
                if not incomplete:
                    metrics.completion_round = round_index + 1
            else:
                if all(all_token_ids <= node.known_token_ids() for node in nodes):
                    metrics.completion_round = round_index + 1

        if bound is None:
            done = metrics.completion_round is not None
        else:
            # Under crash faults the whole population may never complete;
            # the faulted stop rule is survivor completion (identical to
            # population completion when nothing crashes).  The survivor
            # set is queried per round: adaptive strategies shrink it.
            if metrics.survivor_completion_round is None:
                survivor_uids = bound.survivor_indices.tolist()
                if use_mask:
                    survivors_done = all(
                        nodes[u].knowledge_mask() == full_mask for u in survivor_uids
                    )
                else:
                    survivors_done = all(
                        all_token_ids <= nodes[u].known_token_ids()
                        for u in survivor_uids
                    )
                if survivors_done:
                    metrics.survivor_completion_round = round_index + 1
            done = metrics.survivor_completion_round is not None

        if done:
            if stop_at_completion or all(node.finished() for node in nodes):
                break

    correct: bool | None = None
    if bound is None:
        if metrics.completion_round is not None:
            correct = _check_correctness(nodes, placement)
    else:
        survivor_uids = bound.survivor_indices.tolist()
        metrics.survivors = len(survivor_uids)
        if use_mask:
            metrics.completed_survivors = sum(
                1 for u in survivor_uids if nodes[u].knowledge_mask() == full_mask
            )
        else:
            metrics.completed_survivors = sum(
                1 for u in survivor_uids if all_token_ids <= nodes[u].known_token_ids()
            )
        metrics.recoveries, metrics.reconvergence_rounds = bound.recovery_metrics(
            metrics.rounds_executed, metrics.survivor_completion_round
        )
        if bound.model.quorum is not None:
            metrics.fake_nodes = len(bound.model.quorum.fake)
        if metrics.survivor_completion_round is not None:
            correct = _check_correctness(
                [nodes[u] for u in survivor_uids], placement
            )
    return RunResult(
        metrics=metrics,
        nodes=nodes,
        correct=correct,
        topologies=topologies,
        engine="mask" if use_mask else "legacy",
    )
