"""The synchronous round executor for the dynamic network model.

One round (Section 4.1), for an adaptive adversary:

1. each node's sanitised state is snapshotted;
2. the adversary fixes the connected topology ``G(t)`` from the snapshot;
3. each node composes its O(b)-bit broadcast message *without knowing its
   neighbours*;
4. every node receives the messages of its ``G(t)``-neighbours.

Omniscient adversaries (``sees_messages``) are instead shown the composed
messages before choosing the topology, which models "knowing all the
randomness in advance" operationally (Section 6).

The runner also enforces the message budget, tracks metrics, detects
completion (every node can output every token), and verifies payload
correctness at the end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import networkx as nx
import numpy as np

from ..algorithms.base import ProtocolConfig, ProtocolFactory, ProtocolNode
from ..network.adversary import Adversary
from ..network.graphs import validate_topology
from ..tokens.message import Message
from ..tokens.token import TokenPlacement
from .metrics import RunMetrics

__all__ = ["RunResult", "run_dissemination", "build_nodes"]


@dataclass
class RunResult:
    """Outcome of one dissemination run.

    Attributes
    ----------
    metrics:
        Aggregated counters (rounds, bits, completion round, ...).
    nodes:
        The final node objects (useful for post-hoc inspection in tests).
    correct:
        True iff at completion every node output every token with the right
        payload.  ``None`` when the run did not complete within its limit.
    topologies:
        The recorded topology sequence (only if ``record_topologies``).
    """

    metrics: RunMetrics
    nodes: list[ProtocolNode]
    correct: bool | None
    topologies: list[nx.Graph] = field(default_factory=list)

    @property
    def rounds(self) -> int:
        """Rounds until completion (falls back to rounds executed)."""
        if self.metrics.completion_round is not None:
            return self.metrics.completion_round
        return self.metrics.rounds_executed

    @property
    def completed(self) -> bool:
        """True iff the run disseminated everything within its round limit."""
        return self.metrics.completed


def build_nodes(
    factory: ProtocolFactory,
    config: ProtocolConfig,
    placement: TokenPlacement,
    rng: np.random.Generator,
) -> list[ProtocolNode]:
    """Instantiate and set up one protocol node per network participant."""
    nodes: list[ProtocolNode] = []
    for uid in range(config.n):
        node_rng = np.random.default_rng(rng.integers(0, 2**63 - 1))
        node = factory(uid, config, node_rng)
        node.setup(placement.tokens_at(uid))
        nodes.append(node)
    return nodes


def _knowledge_fingerprint(node: ProtocolNode) -> tuple[int, int]:
    return (len(node.known_token_ids()), node.coded_rank())


def _check_correctness(nodes: Sequence[ProtocolNode], placement: TokenPlacement) -> bool:
    expected = placement.by_id()
    for node in nodes:
        decoded = node.decoded_tokens()
        for token_id, token in expected.items():
            got = decoded.get(token_id)
            if got is None or got.payload != token.payload:
                return False
    return True


def run_dissemination(
    factory: ProtocolFactory,
    config: ProtocolConfig,
    placement: TokenPlacement,
    adversary: Adversary,
    *,
    seed: int = 0,
    max_rounds: int | None = None,
    stop_at_completion: bool = True,
    record_topologies: bool = False,
    track_progress: bool = False,
) -> RunResult:
    """Run one complete dissemination execution and return its result.

    Parameters
    ----------
    factory:
        Builds a protocol node given (uid, config, rng).
    config:
        Shared problem parameters.
    placement:
        The adversarially-chosen initial token placement.
    adversary:
        The topology-controlling adversary.
    seed:
        Master seed; node randomness and any runner randomness derive from it.
    max_rounds:
        Hard round limit; defaults to a generous multiple of the worst
        baseline bound ``n * k`` (so non-terminating bugs surface as a
        non-completed run rather than a hang).
    stop_at_completion:
        Stop as soon as every node knows every token (the usual measurement
        mode); set False to keep running until nodes terminate locally.
    record_topologies:
        Keep the per-round graphs (for stability checks in tests).
    track_progress:
        Record per-round (min, mean) known-token counts in the metrics.
    """
    adversary.reset()
    rng = np.random.default_rng(seed)
    nodes = build_nodes(factory, config, placement, rng)
    all_token_ids = placement.all_ids()
    metrics = RunMetrics()
    topologies: list[nx.Graph] = []

    if max_rounds is None:
        max_rounds = 20 * config.n * max(1, config.k) + 200

    # Optional shared coordinator hook (see algorithms/tstable.py): a single
    # object shared by all nodes that may observe the round topology.  This is
    # the documented structured-simulation shortcut for the patch-sharing
    # algorithm; ordinary protocols have no coordinator.
    coordinator = getattr(nodes[0], "shared_coordinator", None) if nodes else None

    for round_index in range(max_rounds):
        states = [node.state_view() for node in nodes]

        if adversary.sees_messages:
            outgoing = [node.compose(round_index) for node in nodes]
            graph = adversary.choose_topology(round_index, config.n, states, outgoing)
        else:
            graph = adversary.choose_topology(round_index, config.n, states)
            if coordinator is not None:
                coordinator.on_topology(round_index, graph, nodes)
            outgoing = [node.compose(round_index) for node in nodes]
        validate_topology(graph, config.n)
        if adversary.sees_messages and coordinator is not None:
            coordinator.on_topology(round_index, graph, nodes)
        if record_topologies:
            topologies.append(graph)

        # Budget enforcement and broadcast accounting.
        for message in outgoing:
            if message is None:
                metrics.record_silence()
                continue
            if not isinstance(message, Message):
                raise TypeError(
                    f"protocol composed a non-Message object: {type(message)!r}"
                )
            config.budget.check(message)
            metrics.record_broadcast(message.size_bits)

        # Delivery: each node receives its neighbours' messages.
        fingerprints = [_knowledge_fingerprint(node) for node in nodes]
        for uid, node in enumerate(nodes):
            inbox = [
                outgoing[neighbour]
                for neighbour in graph.neighbors(uid)
                if outgoing[neighbour] is not None
            ]
            node.deliver(round_index, inbox)
            metrics.deliveries += len(inbox)
            if inbox and _knowledge_fingerprint(node) == fingerprints[uid]:
                metrics.useless_deliveries += len(inbox)

        if coordinator is not None:
            coordinator.after_round(round_index, graph, nodes)

        metrics.rounds_executed = round_index + 1

        if track_progress:
            counts = [len(node.known_token_ids()) for node in nodes]
            metrics.progress.append(
                (round_index + 1, min(counts), float(np.mean(counts)))
            )

        if metrics.completion_round is None:
            if all(all_token_ids <= node.known_token_ids() for node in nodes):
                metrics.completion_round = round_index + 1

        if metrics.completion_round is not None:
            if stop_at_completion or all(node.finished() for node in nodes):
                break

    correct: bool | None = None
    if metrics.completion_round is not None:
        correct = _check_correctness(nodes, placement)
    return RunResult(metrics=metrics, nodes=nodes, correct=correct, topologies=topologies)
