"""Coded-protocol round kernels riding the batched GF(2) elimination core.

PR 3's kernel engine removed the per-node Python dispatch for the forwarding
family; this module does the same for the network-coding family.  All nodes'
received subspaces live in one :class:`~repro.gf.packed.GF2BasisBatch` — a
stacked ``(n, rank, words)`` uint64 echelon array — and one coded round is
three numpy passes: batched random-combination compose, slot-lockstep XOR
elimination of the delivered vectors, and vectorised decode-readiness.  No
live :class:`~repro.coding.subspace.Subspace` objects exist on the hot path;
:meth:`RoundKernel.to_nodes` materialises them (and the decoded tokens) back
into the protocol nodes at the end of the run.

Three kernels ship here:

* :class:`IndexedBroadcastKernel` — pure RLNC indexed broadcast (Lemma 5.3),
  covering both the randomized protocol and the deterministic pre-committed
  coefficient schedule of Corollary 6.2 over GF(2) (a deterministic row is
  *easier* to batch than an rng draw: parities come straight from the
  schedule, with no zero-resampling).
* :class:`NaiveCodedKernel` — the two-phase naive coded algorithm
  (Corollary 7.1): the smallest-ids flood runs as packed window selections
  over the knowledge matrix, the coded broadcast rides the batch.
* :class:`GreedyForwardKernel` — the gather / elect / broadcast loop of
  Theorem 7.3: random forwarding keeps per-node rng draws (bit-exact stream
  compatibility) over integer-mask knowledge, leader election is a
  vectorised max-flood, and the leader's block broadcast rides the batch.

Equivalence contract: for identical seeds these kernels produce
byte-identical :class:`~repro.simulation.metrics.RunMetrics` with the mask
and legacy engines — every rng draw happens against the same per-node
generator in the same order, composed masks are XORs of bit-identical basis
rows in the same order, and innovative/decode flags replicate the per-node
``Subspace`` semantics exactly (``tests/test_coded_kernels.py``).

The multi-phase kernels do *not* assume the phases stay globally
consistent.  Under crash–recovery, partition or adaptive-strategy faults a
node can miss part of the id flood (naive) or of the leader election
(greedy) and start a *different* generation from its peers — differing
selected windows, several self-elected leaders, possibly of different
sizes.  Both kernels mirror the object engines' per-node lazy generations
exactly: concurrent generations are grouped by their size ``k`` into one
:class:`GF2BasisBatch` per distinct ``k``, a node with no generation adopts
the one of the first coded message in its inbox
(``_generation_from_message``), and messages whose ``k`` differs from the
receiver's generation are rejected (the ``num_coefficients`` check).
Mixed-span decodes can therefore yield *foreign* tokens — wrong payloads
for placement ids, or ids outside the placement entirely — which are
learned and marked delivered just like the object ``_learn_token`` path, so
faulted runs stay byte-identical across all three engines.
"""

from __future__ import annotations

import numpy as np

from ..algorithms.blocks import block_bits, decode_block, encode_block
from ..algorithms.greedy_forward import GreedyForwardNode, resolved_phase_windows
from ..algorithms.indexed_broadcast import IndexedBroadcastNode
from ..algorithms.naive_coded import NaiveCodedNode
from ..algorithms.token_forwarding import tokens_per_message
from ..coding.rlnc import Generation
from ..gf import GF2Basis, GF2BasisBatch, masks_to_packed, packed_to_masks
from ..network.adversary import NodeStateView
from ..network.topology import _iter_bits
from ..tokens.message import ControlMessage, TokenForwardMessage
from .kernels import (
    KernelUnsupported,
    RoundKernel,
    _full_row,
    _neighbor_or,
    _packed_width,
    _popcount_rows,
    _row_bits,
    _select_lowest_bits,
    register_kernel,
)

__all__ = [
    "IndexedBroadcastKernel",
    "NaiveCodedKernel",
    "GreedyForwardKernel",
]


def _bit_lengths(values: np.ndarray) -> np.ndarray:
    """Vectorised ``max(1, int(v).bit_length())`` for small non-negative ints."""
    return np.maximum(1, np.frexp(values.astype(np.float64))[1]).astype(np.int64)


def _delivery_pairs(
    indices: np.ndarray, indptr: np.ndarray, active: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """All (receiver, active sender) pairs of one round, slot-major.

    Slot ``j`` pairs every node of degree ``> j`` with its ``j``-th CSR
    neighbour; concatenating the slots in ascending order lists each node's
    inbox in exactly the ascending-neighbour order the object engines use,
    which is the per-basis insert order
    :meth:`~repro.gf.packed.GF2BasisBatch.insert_batch` honours for repeated
    node ids — so one round's whole delivery is a single fused call.
    """
    empty = np.zeros(0, dtype=np.int64)
    if indices.size == 0:
        return empty, empty
    degrees = np.diff(indptr)
    receiver_parts: list[np.ndarray] = []
    sender_parts: list[np.ndarray] = []
    for slot in range(int(degrees.max())):
        # repro: allow[REP401] loop is per neighbour slot (<= max degree), batched over all receivers
        receivers = np.flatnonzero(degrees > slot)
        senders = indices[indptr[receivers] + slot]
        keep = active[senders]
        if keep.any():
            receiver_parts.append(receivers[keep])
            sender_parts.append(senders[keep])
    if not receiver_parts:
        return empty, empty
    return np.concatenate(receiver_parts), np.concatenate(sender_parts)


def _group_ranks(
    groups: dict[int, GF2BasisBatch], gen_of: np.ndarray, n: int
) -> np.ndarray:
    """Per-node coded rank across the concurrent generation groups."""
    ranks = np.zeros(n, dtype=np.int64)
    for k, core in groups.items():
        # repro: allow[REP401] loop is over distinct generation sizes (one except under faults)
        members = gen_of == k
        ranks[members] = core.ranks[members]
    return ranks


def _deliver_grouped(
    groups: dict[int, GF2BasisBatch],
    gen_of: np.ndarray,
    coded_send: dict[int, np.ndarray],
    receivers: np.ndarray,
    senders: np.ndarray,
    changed: np.ndarray,
) -> None:
    """Adopt orphan receivers, then insert same-generation pairs per group.

    A receiver with no generation joins the group of the *first* message in
    its inbox — the pair arrays are in the object engines' inbox order, so
    ``np.unique``'s first-occurrence index is exactly the message
    ``_generation_from_message`` would have been built from.  Pairs whose
    sender and receiver generations differ are then rejected, mirroring the
    object ``num_coefficients == state.generation.k`` check.
    """
    orphan = gen_of[receivers] == -1
    if orphan.any():
        first_receivers, first_index = np.unique(receivers, return_index=True)
        adopt = gen_of[first_receivers] == -1
        gen_of[first_receivers[adopt]] = gen_of[senders[first_index[adopt]]]
    keep = gen_of[receivers] == gen_of[senders]
    receivers, senders = receivers[keep], senders[keep]
    if not receivers.size:
        return
    pair_k = gen_of[senders]
    for k in np.unique(pair_k).tolist():
        # repro: allow[REP401] loop is over distinct generation sizes (one except under faults)
        sel = pair_k == k
        flags = groups[k].insert_batch(receivers[sel], coded_send[k][senders[sel]])
        changed[receivers[sel][flags]] = True


# ----------------------------------------------------------------------
# RLNC indexed broadcast
# ----------------------------------------------------------------------


@register_kernel(IndexedBroadcastNode)
class IndexedBroadcastKernel(RoundKernel):
    """RLNC indexed broadcast as batched GF(2) matrix ops (Lemma 5.3 / Cor 6.2).

    All per-node subspaces live in one :class:`GF2BasisBatch` with
    ``span_cap = k``: in the canonical instance every transmitted vector is a
    combination of the ``k`` consistent source vectors ``e_i || t_i``, so a
    rank-``k`` basis is saturated and late-round deliveries skip elimination
    entirely.  For the same reason the coefficient block's rank always equals
    the full rank (a combination with zero coefficient part is the zero
    vector), so decode readiness is one ``rank == k`` compare per node and
    the actual Gauss-Jordan payload extraction happens once, vectorised, in
    :meth:`to_nodes`.

    The deterministic-schedule variant (``config.extra['deterministic_schedule']``
    over GF(2)) is supported: coefficient parities come from the committed
    schedule instead of rng draws and the zero combination is *not* resampled
    (a scheduled node broadcasts whatever row it was committed to).
    """

    message_name = "CodedMessage"
    supports_message_views = True

    @classmethod
    def supports(cls, config) -> bool:
        # The batch requires GF(2).  The deterministic variant is fine — over
        # GF(2) only coefficient parities matter (the large-field pipeline of
        # Theorem 6.1 sets field_order accordingly and lands on legacy/mask).
        return config.field_order == 2

    def __init__(self, config, placement, token_index, nodes):
        super().__init__(config, placement, token_index, nodes)
        self.nodes = list(nodes)
        if not all(node.state._mask_native for node in self.nodes):
            raise KernelUnsupported(
                "IndexedBroadcastKernel requires every node's GenerationState "
                "to be on the mask-native GF(2) pipeline"
            )
        generation = self.nodes[0].generation
        self.gen_k = generation.k
        self.length = generation.vector_length
        self.message_bits = (
            generation.k
            + generation.payload_symbols
            + max(1, int(generation.generation_id).bit_length())
        )
        # Canonical-instance check: the placement tokens must occupy the
        # dimensions 0..k-1 bijectively.  That is what makes "decoded" mean
        # "knows every placement token" (and what caps every basis at rank k);
        # exotic index_of mappings fall back to the mask engine.
        index_of = config.extra.get("index_of")
        indexes = [
            int(index_of[t.token_id]) if index_of is not None else t.token_id.origin % self.gen_k
            for t in self.tokens
        ]
        if self.k != self.gen_k or sorted(indexes) != list(range(self.gen_k)):
            raise KernelUnsupported(
                "IndexedBroadcastKernel requires the canonical instance: "
                "placement tokens bijectively indexed 0..k-1"
            )
        self.schedule = config.extra.get("deterministic_schedule")
        self.rngs = [node.rng for node in self.nodes]
        self.core = GF2BasisBatch(self.n, self.length, span_cap=self.gen_k)
        self.core.lift_masks(
            [node.state.subspace._gf2.rows_in_insertion_order() for node in self.nodes]
        )
        self.decoded = np.zeros(self.n, dtype=bool)
        self.initial_counts = np.array(
            [len(node.known) for node in self.nodes], dtype=np.int64
        )
        full_mask = (1 << self.k) - 1
        self.initially_full = np.array(
            [node.knowledge_mask() == full_mask for node in self.nodes], dtype=bool
        )
        self._picks: np.ndarray | None = None
        self._send_active: np.ndarray | None = None
        self._wire: np.ndarray | None = None
        self._overrides: dict[int, int] = {}

    # ------------------------------------------------------------------
    def compose_all(self, round_index):
        # Only the rng draws / schedule reads happen here (they are what the
        # per-node streams see); the XOR-combine itself runs lazily in
        # deliver_all, restricted to senders whose message some unsaturated
        # receiver still needs.
        if self.schedule is None:
            active, picks = self.core.draw_random_picks(self.rngs)
        else:
            ranks = self.core.ranks
            active = ranks > 0
            max_rank = int(ranks.max())
            picks = np.zeros((self.n, max(1, max_rank)), dtype=np.uint8)
            for uid in np.flatnonzero(active).tolist():
                rank = int(ranks[uid])
                coefficients = self.schedule.coefficients(uid, round_index, rank)
                picks[uid, :rank] = np.fromiter(
                    (c & 1 for c in coefficients), dtype=np.uint8, count=rank
                )
        self._picks = picks
        self._send_active = active
        self._wire = None
        self._overrides = {}
        sizes = np.where(active, self.message_bits, 0)
        return active, sizes

    def set_wire_overrides(self, overrides):
        # Byzantine replay: listed senders' wire vectors are substituted for
        # this round; both deliver_all and the message views read them.
        self._overrides = dict(overrides)
        self._wire = None

    def _wire_rows(self) -> np.ndarray:
        """The full combined wire matrix for this round (cached, overridden)."""
        if self._wire is None:
            combined = self.core.combine_sorted(self._picks)
            for uid, mask in self._overrides.items():
                combined[uid] = masks_to_packed([mask], self.core.words)[0]
            self._wire = combined
        return self._wire

    def wire_message(self, uid, round_index):
        mask = packed_to_masks(self._wire_rows()[uid : uid + 1])[0]
        return self.nodes[uid].generation.message_from_mask(uid, mask)

    def deliver_all(self, round_index, indices, indptr, active, counts):
        innovative = np.zeros(self.n, dtype=bool)
        receivers, senders = _delivery_pairs(indices, indptr, self._send_active)
        if receivers.size:
            # Saturated receivers short-circuit inside the core anyway; the
            # early filter means the combine below only materialises the
            # messages someone still needs.
            open_receiver = self.core.ranks[receivers] < self.gen_k
            receivers, senders = receivers[open_receiver], senders[open_receiver]
        if receivers.size:
            if self._wire is not None:
                # Message views (or an override pass) already materialised
                # the full wire matrix; a subset combine of the same picks
                # would be bit-identical, so reuse it.
                combined = self._wire
            else:
                needed = np.unique(senders)
                # Subset combining pays a row gather; it only wins once most
                # of the network is saturated and few senders still matter.
                subset = needed if needed.size * 4 <= self.n else None
                combined = self.core.combine_sorted(self._picks, subset)
                for uid, mask in self._overrides.items():
                    combined[uid] = masks_to_packed([mask], self.core.words)[0]
            with self.profiler.span("insert"):
                flags = self.core.insert_batch(receivers, combined[senders])
            innovative[receivers[flags]] = True
        # In-span traffic: the coefficient block's rank equals the full rank,
        # so decode readiness is saturation of the span cap.
        decoded_now = (self.core.ranks >= self.gen_k) & ~self.decoded
        self.decoded |= decoded_now
        self._counts_cache = None
        return innovative | decoded_now

    # ------------------------------------------------------------------
    def _known_counts_now(self) -> np.ndarray:
        return np.where(self.decoded, self.k, self.initial_counts)

    def coded_ranks(self) -> np.ndarray:
        return np.asarray(self.core.ranks, dtype=np.int64)

    def all_complete(self) -> bool:
        return bool((self.decoded | self.initially_full).all())

    def finished_all(self) -> bool:
        return bool(self.decoded.all())

    def state_view(self, uid: int) -> NodeStateView:
        node = self.nodes[uid]
        rank = int(self.core.ranks[uid])
        if self.decoded[uid]:
            all_ids = sorted(self.token_index)
            return NodeStateView(
                uid=uid,
                rank=rank,
                known_supplier=lambda: all_ids,
                known_count=self.k,
                membership=self.token_index.__contains__,
            )
        return NodeStateView(
            uid=uid,
            rank=rank,
            known_supplier=lambda: list(node.known),
            known_count=len(node.known),
            membership=node.known.__contains__,
        )

    def to_nodes(self, nodes):
        decoded_tokens: list | None = None
        decoded_uids = np.flatnonzero(self.decoded)
        if decoded_uids.size:
            # Canonical instance: every decoded span is the same k-dimensional
            # source span, so one vectorised Gauss-Jordan serves all nodes.
            with self.profiler.span("decode"):
                ok, payloads = self.core.decode_payload_masks_batch(
                    self.gen_k, decoded_uids[:1]
                )
            if not ok[0]:
                raise RuntimeError(
                    "canonical decode failed for a node whose span reached "
                    "full rank"
                )
            decoded_tokens = []
            for payload in packed_to_masks(payloads[0]):
                decoded_tokens.extend(
                    decode_block(self.config, payload, tokens_per_block=1)
                )
        for uid, node in enumerate(nodes):
            subspace = node.state.subspace
            subspace._gf2 = GF2Basis.from_rows(self.length, self.core.row_masks(uid))
            subspace._pick_buffer = self.core._pick_buffer[uid]
            subspace._pick_bits = self.core._pick_bits[uid]
            if self.decoded[uid] and not node._decoded:
                known = node.known
                for token in decoded_tokens:
                    if token.token_id not in known:
                        known[token.token_id] = token
                node._decoded = True
            node._span_dirty = False


# ----------------------------------------------------------------------
# naive coded dissemination (Corollary 7.1)
# ----------------------------------------------------------------------


@register_kernel(NaiveCodedNode)
class NaiveCodedKernel(RoundKernel):
    """Flood-the-smallest-ids indexing + coded broadcast, batched.

    The id flood is pure packed-matrix work: a node's candidate window is the
    ``ids_per_message`` lowest set bits of ``(known | candidates) & ~delivered``
    (token bit order *is* ascending-id order), one
    :func:`~repro.simulation.kernels._select_lowest_bits` pass for the whole
    network, and delivery is one neighbour-OR.  The broadcast window groups
    nodes by their selected window: every distinct generation size ``k``
    gets one :class:`GF2BasisBatch` (``span_cap = k`` only when all its
    creators selected the *same* window — distinct same-size windows mix
    spans, where capping would drop innovative rows), nodes without a
    window adopt the generation of the first coded message they receive,
    and decode at the boundary is per node (a mixed-span decode can yield
    foreign tokens, recorded like the object ``_learn_token``).  Benign
    runs collapse to a single group — the pre-fault fast path unchanged.

    Knowledge, delivered and candidate state are materialised back into the
    nodes by :meth:`to_nodes`; the transient within-window coding state is
    not (it is dropped at the window boundary anyway).
    """

    message_name = "CodedMessage"
    supports_message_views = True

    @classmethod
    def supports(cls, config) -> bool:
        return config.field_order == 2

    def __init__(self, config, placement, token_index, nodes):
        super().__init__(config, placement, token_index, nodes)
        node0 = nodes[0]
        self.ids_per_message = node0.ids_per_message
        self.flood_rounds = node0.flood_rounds
        self.broadcast_rounds = node0.broadcast_rounds
        self.iteration_length = node0.iteration_length
        if self.flood_rounds < 1 or self.broadcast_rounds < 1:
            raise KernelUnsupported("NaiveCodedKernel requires positive phase windows")
        self.rngs = [node.rng for node in nodes]
        self.width = _packed_width(self.k)
        self.full = _full_row(self.k, self.width)
        self.known = np.zeros((self.n, self.width), dtype=np.uint64)
        self._initial_order: list[list[int]] = []
        for uid, node in enumerate(nodes):
            order = [token_index[tid] for tid in node.known]
            self._initial_order.append(order)
            for bit in order:
                self.known[uid, bit >> 6] |= np.uint64(1 << (bit & 63))
        self.delivered = np.zeros_like(self.known)
        self.cand = np.zeros_like(self.known)
        self.id_costs = np.array([t.token_id.bits for t in self.tokens], dtype=np.int64)
        self.payload_bits_per_dim = block_bits(config, tokens_per_block=1)
        self.payload_ints = [
            encode_block(config, [t], tokens_per_block=1) for t in self.tokens
        ]
        #: Tokens learned at decode boundaries, as Token objects in learn
        #: order: a mixed-span decode can produce a placement id with a
        #: wrong payload, or an id outside the placement entirely.
        self._learn_log: list[list] = [[] for _ in range(self.n)]
        self._foreign_ids: list[set] = [set() for _ in range(self.n)]
        self._any_foreign = False
        self._incomplete = {
            uid for uid in range(self.n) if not bool((self.known[uid] == self.full).all())
        }
        # Broadcast-window state (rebuilt per iteration): one batched basis
        # per distinct generation size, nodes tagged by their group's k.
        self.groups: dict[int, GF2BasisBatch] = {}
        self.group_bits: dict[int, int] = {}
        self.gen_of = np.full(self.n, -1, dtype=np.int64)
        self.window = np.zeros(self.n, dtype=bool)  # had a non-empty _selected
        self.sel_rows = np.zeros_like(self.known)
        self._flood_send: np.ndarray | None = None
        self._coded_send: dict[int, np.ndarray] = {}
        self._send_active: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _phase(self, round_index: int) -> tuple[str, int, int]:
        iteration = round_index // self.iteration_length
        offset = round_index % self.iteration_length
        if offset < self.flood_rounds:
            return "flood", offset, iteration
        return "broadcast", offset - self.flood_rounds, iteration

    def _drop_generation(self) -> None:
        self.groups = {}
        self.group_bits = {}
        self.gen_of[:] = -1
        self.window[:] = False
        self.sel_rows[:] = 0
        self._coded_send = {}

    # ------------------------------------------------------------------
    def compose_all(self, round_index):
        phase, offset, iteration = self._phase(round_index)
        if phase == "flood":
            if offset == 0:
                undelivered = self.known & ~self.delivered
                self.cand, _ = _select_lowest_bits(
                    undelivered, self.ids_per_message, None
                )
                self._drop_generation()
            window, id_bits = _select_lowest_bits(
                (self.known | self.cand) & ~self.delivered,
                self.ids_per_message,
                self.id_costs,
            )
            active = window.any(axis=1)
            window[~active] = 0
            self._flood_send = window
            self._coded_send = {}
            self._send_active = active
            return active, np.where(active, 4 + id_bits, 0)
        if offset == 0:
            self._start_broadcast(iteration)
        self._flood_send = None
        active = np.zeros(self.n, dtype=bool)
        sizes = np.zeros(self.n, dtype=np.int64)
        self._coded_send = {}
        for k in sorted(self.groups):
            # repro: allow[REP401] loop is over distinct generation sizes (one except under faults)
            members = np.flatnonzero(self.gen_of == k)
            act, combined = self.groups[k].compose_random(self.rngs, members)
            self._coded_send[k] = combined
            active |= act
            sizes[act] = self.group_bits[k]
        self._send_active = active
        return active, sizes

    def _start_broadcast(self, iteration: int) -> None:
        nonempty = self.cand.any(axis=1)
        self._drop_generation()
        if not nonempty.any():
            return
        self.window = nonempty.copy()
        self.sel_rows = np.zeros_like(self.known)
        self.sel_rows[nonempty] = self.cand[nonempty]
        uids = np.flatnonzero(nonempty)
        distinct, inverse = np.unique(
            self.cand[nonempty], axis=0, return_inverse=True
        )
        sizes_k = _popcount_rows(distinct).tolist()
        variants_per_k: dict[int, int] = {}
        for k in sizes_k:
            variants_per_k[k] = variants_per_k.get(k, 0) + 1
        generation_id = iteration + 1
        genid_bits = max(1, int(generation_id).bit_length())
        one = np.uint64(1)
        for variant, k in enumerate(sizes_k):
            # repro: allow[REP401] loop is over distinct selected windows (one except under faults)
            core = self.groups.get(k)
            if core is None:
                length = k + self.payload_bits_per_dim
                core = (
                    GF2BasisBatch(self.n, length, span_cap=k)
                    if variants_per_k[k] == 1
                    else GF2BasisBatch(self.n, length)
                )
                self.groups[k] = core
                self.group_bits[k] = k + self.payload_bits_per_dim + genid_bits
            creators = uids[inverse == variant]
            self.gen_of[creators] = k
            for i, index in enumerate(_row_bits(distinct[variant])):
                # repro: allow[REP401] once-per-iteration seeding over k selected dims, batched over holders
                shift = np.uint64(index & 63)
                holds = (self.known[creators, index >> 6] >> shift) & one
                holders = creators[holds.astype(bool)]
                if holders.size:
                    source = (1 << i) | (self.payload_ints[index] << k)
                    # repro: allow[REP401] once-per-iteration seeding over k selected dims, batched over holders
                    vectors = np.broadcast_to(
                        masks_to_packed([source], core.words),
                        (holders.size, core.words),
                    )
                    core.insert_batch(holders, vectors)

    def wire_message(self, uid, round_index):
        phase, _offset, iteration = self._phase(round_index)
        if phase == "flood":
            # Window bits ascend in token-id order — exactly the node's
            # sorted candidate prefix.
            return ControlMessage(
                sender=uid,
                fields={
                    "ids": tuple(
                        self.tokens[i].token_id
                        for i in _row_bits(self._flood_send[uid])
                    )
                },
            )
        # Broadcast phase: the batch already drew this round's combination
        # in compose_all, so the view re-wraps the cached combined row —
        # never a second rng draw.
        k = int(self.gen_of[uid])
        mask = packed_to_masks(self._coded_send[k][uid : uid + 1])[0]
        return Generation(
            k=k,
            payload_bits=self.payload_bits_per_dim,
            field_order=self.config.field_order,
            generation_id=iteration + 1,
        ).message_from_mask(uid, mask)

    # ------------------------------------------------------------------
    def deliver_all(self, round_index, indices, indptr, active, counts):
        phase, offset, _iteration = self._phase(round_index)
        if phase == "flood":
            inbox = _neighbor_or(self._flood_send, indices, indptr)
            self.cand |= inbox & ~self.delivered
            self.cand, _ = _select_lowest_bits(self.cand, self.ids_per_message, None)
            return np.zeros(self.n, dtype=bool)
        changed = np.zeros(self.n, dtype=bool)
        had_rank = _group_ranks(self.groups, self.gen_of, self.n) > 0
        receivers, senders = _delivery_pairs(indices, indptr, self._send_active)
        if receivers.size:
            with self.profiler.span("insert"):
                _deliver_grouped(
                    self.groups,
                    self.gen_of,
                    self._coded_send,
                    receivers,
                    senders,
                    changed,
                )
        if offset == self.broadcast_rounds - 1:
            known_changed = self._finish_broadcast()
            # The window boundary clears every node's coding state, so the
            # (len(known), coded_rank) fingerprint changes iff tokens were
            # learned or the pre-round rank was non-zero (it drops to 0).
            changed = known_changed | had_rank
        self._counts_cache = None
        return changed

    def _learn_decoded(self, uid: int, token) -> bool:
        """The object ``_learn_token`` + ``delivered.add``; True iff known grew."""
        bit = self.token_index.get(token.token_id)
        if bit is None:
            # Foreign id: enters known and delivered together, so it never
            # becomes a flood candidate (undelivered = known - delivered).
            if token.token_id in self._foreign_ids[uid]:
                return False
            self._foreign_ids[uid].add(token.token_id)
            self._learn_log[uid].append(token)
            self._any_foreign = True
            return True
        word, shift = bit >> 6, np.uint64(bit & 63)
        fresh = not bool((int(self.known[uid, word]) >> (bit & 63)) & 1)
        if fresh:
            self.known[uid, word] |= np.uint64(1) << shift
            self._learn_log[uid].append(token)
        self.delivered[uid, word] |= np.uint64(1) << shift
        return fresh

    def _finish_broadcast(self) -> np.ndarray:
        known_changed = np.zeros(self.n, dtype=bool)
        for k in sorted(self.groups):
            # repro: allow[REP401] loop is over distinct generation sizes (one except under faults)
            core = self.groups[k]
            members = np.flatnonzero(self.gen_of == k)
            # can_decode: full coefficient-block rank (equals the plain rank
            # for in-span traffic, so benign runs decode exactly as before).
            decodable = members[core.coefficient_ranks(k)[members] >= k]
            if not decodable.size:
                continue
            with self.profiler.span("decode"):
                ok, payloads = core.decode_payload_masks_batch(k, decodable)
            for pos, uid in enumerate(decodable.tolist()):
                # repro: allow[REP401] decode loop over boundary-decodable nodes, once per window
                if not ok[pos]:
                    continue
                for payload in packed_to_masks(payloads[pos]):
                    for token in decode_block(self.config, payload, tokens_per_block=1):
                        if self._learn_decoded(uid, token):
                            known_changed[uid] = True
        # Every window node marks the selected tokens it now holds
        # delivered (a failed or garbage decode leaves the rest flooding).
        self.delivered |= self.sel_rows & self.known
        self.cand[:] = 0
        self._drop_generation()
        return known_changed

    # ------------------------------------------------------------------
    def _known_counts_now(self) -> np.ndarray:
        counts = _popcount_rows(self.known)
        if self._any_foreign:
            counts += np.fromiter(
                (len(ids) for ids in self._foreign_ids), dtype=np.int64, count=self.n
            )
        return counts

    def coded_ranks(self) -> np.ndarray:
        return _group_ranks(self.groups, self.gen_of, self.n)

    def completed_flags(self) -> np.ndarray:
        # Placement-bit coverage: foreign tokens inflate known_counts but
        # never complete a node.
        return (self.known == self.full).all(axis=1)

    def all_complete(self) -> bool:
        full = self.full
        known = self.known
        self._incomplete = {
            uid for uid in self._incomplete if not bool((known[uid] == full).all())
        }
        return not self._incomplete

    def _knows(self, uid: int, token_id) -> bool:
        bit = self.token_index.get(token_id)
        if bit is None:
            return token_id in self._foreign_ids[uid]
        return bool((int(self.known[uid, bit >> 6]) >> (bit & 63)) & 1)

    def _known_ids(self, uid: int) -> list:
        ids = [self.tokens[i].token_id for i in _row_bits(self.known[uid])]
        ids.extend(self._foreign_ids[uid])
        return ids

    def state_view(self, uid: int) -> NodeStateView:
        counts = self.known_counts()
        k = int(self.gen_of[uid])
        rank = int(self.groups[k].ranks[uid]) if k >= 0 else 0
        return NodeStateView(
            uid=uid,
            rank=rank,
            known_supplier=lambda: self._known_ids(uid),
            known_count=int(counts[uid]),
            membership=lambda token_id: self._knows(uid, token_id),
        )

    def to_nodes(self, nodes):
        for uid, node in enumerate(nodes):
            node.known.clear()
            for i in self._initial_order[uid]:
                token = self.tokens[i]
                node.known[token.token_id] = token
            for token in self._learn_log[uid]:
                node.known[token.token_id] = token
            node.delivered = {
                self.tokens[i].token_id for i in _row_bits(self.delivered[uid])
            } | self._foreign_ids[uid]
            node._candidate_ids = {
                self.tokens[i].token_id for i in _row_bits(self.cand[uid])
            }
            node._selected = (
                [self.tokens[i].token_id for i in _row_bits(self.sel_rows[uid])]
                if self.window[uid]
                else []
            )
            node._generation_state = None


# ----------------------------------------------------------------------
# greedy-forward (Theorem 7.3)
# ----------------------------------------------------------------------


@register_kernel(GreedyForwardNode)
class GreedyForwardKernel(RoundKernel):
    """Gather / elect / broadcast greedy-forward as a phase-switched kernel.

    * **gather** — the random-forward primitive keeps one small
      ``rng.choice`` per informed node (exact per-node stream compatibility,
      like :class:`~repro.simulation.kernels.RandomForwardKernel`); knowledge
      and eligibility are integer bit masks plus insertion-order index lists.
    * **elect** — the max-``(count, uid)`` flood is one vectorised
      ``maximum.reduceat`` per round over encoded comparison keys.
    * **broadcast** — each self-elected leader's block generation is seeded
      into a :class:`GF2BasisBatch`, one per distinct generation size
      (``span_cap = #blocks`` when a size has a single leader; several
      leaders of the same size mix spans, where capping would drop
      innovative rows).  Benign runs elect exactly one leader and collapse
      to the old single-generation fast path; crash/recovery faults can
      leave stale nodes believing they won, which the object engines model
      as concurrent generations — non-leaders adopt the generation of the
      first coded message they receive and reject mismatched sizes, and a
      mixed-span decode can surface foreign or garbled tokens, recorded
      exactly like the object ``_learn_token``.

    :meth:`to_nodes` materialises knowledge, delivered sets and termination
    flags; transient mid-phase scratch (gather election state, the coding
    generation) is not materialised — it is protocol-internal and dropped at
    the next phase boundary anyway.
    """

    message_name = "CodedMessage"
    supports_message_views = True

    @classmethod
    def supports(cls, config) -> bool:
        if config.field_order != 2:
            return False
        # The phase windows must be positive for the node's own phase
        # arithmetic to be consistent (GatherState clamps independently).
        return all(window >= 1 for window in resolved_phase_windows(config))

    def __init__(self, config, placement, token_index, nodes):
        super().__init__(config, placement, token_index, nodes)
        node0 = nodes[0]
        self.gather_rounds = node0.gather_rounds
        self.elect_rounds = node0.elect_rounds
        self.broadcast_rounds = node0.broadcast_rounds
        self.iteration_length = node0.iteration_length
        self.tokens_per_block = node0.tokens_per_block
        self.block_payload_bits = node0.block_payload_bits
        self.max_blocks = node0.max_blocks
        self.batch = tokens_per_message(config)
        self.rngs = [node.rng for node in nodes]
        self.costs = [t.token_id.bits + t.size_bits for t in self.tokens]
        self.full = (1 << self.k) - 1
        self.order: list[list[int]] = []
        self.known_int: list[int] = []
        for node in nodes:
            indexes = [token_index[tid] for tid in node.known]
            mask = 0
            for i in indexes:
                mask |= 1 << i
            self.order.append(indexes)
            self.known_int.append(mask)
        self.delivered_int = [0] * self.n
        self.eligible: list[list[int]] = [list(o) for o in self.order]
        self.exhausted = np.zeros(self.n, dtype=bool)
        self.lead_count = np.full(self.n, -1, dtype=np.int64)
        self.lead_uid = np.full(self.n, -1, dtype=np.int64)
        self._incomplete = {
            uid for uid in range(self.n) if self.known_int[uid] != self.full
        }
        #: Placement bits learned with a *wrong* payload (mixed-span decode
        #: garbage) and tokens outside the placement entirely; both rare,
        #: both faithful to the object ``_learn_token``.
        self._overrides: list[dict[int, object]] = [dict() for _ in range(self.n)]
        self._foreign: list[list] = [[] for _ in range(self.n)]
        self._foreign_ids: list[set] = [set() for _ in range(self.n)]
        self._any_foreign = False
        # Broadcast-window state (rebuilt per iteration): one batched basis
        # per distinct generation size, nodes tagged by their group's k.
        self.groups: dict[int, GF2BasisBatch] = {}
        self.group_bits: dict[int, int] = {}
        self.gen_of = np.full(self.n, -1, dtype=np.int64)
        self._leader_chosen: dict[int, list[int]] = {}
        self._chosen: list[list[int] | None] = [None] * self.n
        self._coded_send: dict[int, np.ndarray] = {}
        self._send_active: np.ndarray | None = None
        self._elect_keys: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _phase(self, round_index: int) -> tuple[str, int, int]:
        iteration = round_index // self.iteration_length
        offset = round_index % self.iteration_length
        if offset < self.gather_rounds + self.elect_rounds:
            return "gather", offset, iteration
        return "broadcast", offset - self.gather_rounds - self.elect_rounds, iteration

    def _reset_gather(self) -> None:
        for uid in np.flatnonzero(~self.exhausted).tolist():
            delivered = self.delivered_int[uid]
            self.eligible[uid] = [
                i for i in self.order[uid] if not (delivered >> i) & 1
            ]
        self.lead_count[:] = -1
        self.lead_uid[:] = -1

    def _ensure_local_counts(self) -> None:
        """Seed every live node's flood state with its own (count, uid) pair."""
        live = np.flatnonzero(~self.exhausted)
        fresh = live[self.lead_count[live] < 0]
        self.lead_count[fresh] = [len(self.eligible[u]) for u in fresh.tolist()]
        self.lead_uid[fresh] = fresh

    # ------------------------------------------------------------------
    def compose_all(self, round_index):
        phase, offset, iteration = self._phase(round_index)
        n = self.n
        active = np.zeros(n, dtype=bool)
        sizes = np.zeros(n, dtype=np.int64)
        self._coded_send = {}
        self._elect_keys = None
        if phase == "gather":
            if offset == 0:
                self._reset_gather()
            if offset < self.gather_rounds:
                chosen_lists: list[list[int] | None] = [None] * n
                costs = self.costs
                batch = self.batch
                for uid in range(n):
                    if self.exhausted[uid]:
                        continue
                    eligible = self.eligible[uid]
                    count = len(eligible)
                    if count == 0:
                        continue
                    if count <= batch:
                        chosen = eligible[:]
                    else:
                        picks = self.rngs[uid].choice(count, size=batch, replace=False)
                        chosen = [eligible[int(i)] for i in picks]
                    chosen_lists[uid] = chosen
                    active[uid] = True
                    sizes[uid] = sum(costs[i] for i in chosen)
                self._chosen = chosen_lists
            else:
                # Elect flood: every live node broadcasts its current best
                # (count, leader) pair; 4 tag bits per field.
                self._ensure_local_counts()
                live = ~self.exhausted
                counts = np.maximum(self.lead_count, 0)
                leaders = np.maximum(self.lead_uid, 0)
                active = live.copy()
                sizes = np.where(
                    live, 8 + _bit_lengths(counts) + _bit_lengths(leaders), 0
                )
                self._elect_keys = np.where(
                    live, counts * n + (n - 1 - leaders), -1
                )
            self._send_active = active
            return active, sizes
        if offset == 0:
            self._start_broadcast(iteration)
        if not self.groups:
            self._send_active = active
            return active, sizes
        for k in sorted(self.groups):
            # repro: allow[REP401] loop is over distinct generation sizes (one except under faults)
            members = np.flatnonzero(self.gen_of == k)
            act, combined = self.groups[k].compose_random(self.rngs, members)
            self._coded_send[k] = combined
            active |= act
            sizes[act] = self.group_bits[k]
        self._send_active = active
        return active, sizes

    def _drop_groups(self) -> None:
        self.groups = {}
        self.group_bits = {}
        self.gen_of[:] = -1
        self._leader_chosen = {}
        self._coded_send = {}

    def _start_broadcast(self, iteration: int) -> None:
        self._drop_groups()
        live = ~self.exhausted
        self.exhausted |= live & (self.lead_count <= 0)
        live = ~self.exhausted
        self_leaders = np.flatnonzero(live & (self.lead_uid == np.arange(self.n)))
        if self_leaders.size == 0:
            return
        capacity = self.max_blocks * self.tokens_per_block
        generation_id = iteration + 1
        genid_bits = max(1, int(generation_id).bit_length())
        plans: dict[int, list[tuple[int, list[list[int]]]]] = {}
        for leader in self_leaders.tolist():
            # repro: allow[REP401] loop over self-elected leaders (one except under faults)
            pending = self.known_int[leader] & ~self.delivered_int[leader]
            chosen = []
            for i in _iter_bits(pending):
                chosen.append(i)
                if len(chosen) == capacity:
                    break
            if not chosen:
                # A leader with nothing pending starts no generation; like
                # the object node it may still adopt a neighbour's.
                continue
            blocks = [
                chosen[i : i + self.tokens_per_block]
                for i in range(0, len(chosen), self.tokens_per_block)
            ]
            plans.setdefault(len(blocks), []).append((leader, blocks))
            self._leader_chosen[leader] = chosen
        for k, leaders in plans.items():
            # repro: allow[REP401] loop is over distinct generation sizes (one except under faults)
            length = k + self.block_payload_bits
            core = (
                GF2BasisBatch(self.n, length, span_cap=k)
                if len(leaders) == 1
                else GF2BasisBatch(self.n, length)
            )
            self.groups[k] = core
            self.group_bits[k] = k + self.block_payload_bits + genid_bits
            for leader, blocks in leaders:
                self.gen_of[leader] = k
                leader_array = np.array([leader], dtype=np.int64)
                for i, block in enumerate(blocks):
                    # repro: allow[REP401] once-per-iteration seeding over the leader's blocks
                    payload = encode_block(
                        self.config,
                        [self.tokens[j] for j in block],
                        self.tokens_per_block,
                    )
                    source = (1 << i) | (payload << k)
                    core.insert_batch(
                        leader_array, masks_to_packed([source], core.words)
                    )

    def wire_message(self, uid, round_index):
        phase, offset, iteration = self._phase(round_index)
        if phase == "gather":
            if offset < self.gather_rounds:
                # ``_chosen`` preserves the node's pick order (insertion-order
                # indexing plus the same rng.choice draw).
                return TokenForwardMessage(
                    sender=uid,
                    tokens=tuple(self.tokens[i] for i in self._chosen[uid]),
                )
            return ControlMessage(
                sender=uid,
                fields={
                    "count": max(0, int(self.lead_count[uid])),
                    "leader": max(0, int(self.lead_uid[uid])),
                },
            )
        # Broadcast phase: re-wrap the combination compose_all already drew.
        k = int(self.gen_of[uid])
        mask = packed_to_masks(self._coded_send[k][uid : uid + 1])[0]
        return Generation(
            k=k,
            payload_bits=self.block_payload_bits,
            field_order=self.config.field_order,
            generation_id=iteration + 1,
        ).message_from_mask(uid, mask)

    # ------------------------------------------------------------------
    def deliver_all(self, round_index, indices, indptr, active, counts):
        phase, offset, _iteration = self._phase(round_index)
        n = self.n
        changed = np.zeros(n, dtype=bool)
        if phase == "gather":
            if offset < self.gather_rounds:
                chosen = self._chosen
                for uid in range(n):
                    if self.exhausted[uid]:
                        continue
                    start, stop = int(indptr[uid]), int(indptr[uid + 1])
                    if start == stop:
                        continue
                    mask = self.known_int[uid]
                    before = mask
                    order = self.order[uid]
                    eligible = self.eligible[uid]
                    delivered = self.delivered_int[uid]
                    for v in indices[start:stop]:
                        tokens = chosen[v]
                        if tokens is None:
                            continue
                        for i in tokens:
                            if not (mask >> i) & 1:
                                mask |= 1 << i
                                order.append(i)
                                if not (delivered >> i) & 1:
                                    eligible.append(i)
                    if mask != before:
                        self.known_int[uid] = mask
                        changed[uid] = True
                if offset == self.gather_rounds - 1:
                    # Forwarding just ended: seed the flood with own counts
                    # (after this round's learns, as the object code does).
                    self._ensure_local_counts()
            else:
                keys = self._elect_keys
                if indices.size:
                    # A -1 sentinel pad keeps reduceat in-bounds on the
                    # trailing empty segments a fault-edited CSR can contain
                    # without truncating the last non-empty segment (clamping
                    # the starts would drop its final key); interior empty
                    # segments yield a real single element, discarded by the
                    # degree > 0 filter below.
                    padded = np.concatenate(
                        (keys[indices], np.full(1, -1, dtype=keys.dtype))
                    )
                    inbox = np.maximum.reduceat(padded, indptr[:-1])
                    merge = np.flatnonzero(
                        ~self.exhausted & (np.diff(indptr) > 0) & (inbox >= 0)
                    )
                    merged = np.maximum(
                        self.lead_count[merge] * n + (n - 1 - self.lead_uid[merge]),
                        inbox[merge],
                    )
                    self.lead_count[merge] = merged // n
                    self.lead_uid[merge] = n - 1 - (merged % n)
            self._counts_cache = None
            return changed
        had_rank = (
            _group_ranks(self.groups, self.gen_of, n) > 0
        ) & ~self.exhausted
        receivers, senders = _delivery_pairs(indices, indptr, self._send_active)
        keep = ~self.exhausted[receivers]
        receivers, senders = receivers[keep], senders[keep]
        if receivers.size:
            with self.profiler.span("insert"):
                _deliver_grouped(
                    self.groups,
                    self.gen_of,
                    self._coded_send,
                    receivers,
                    senders,
                    changed,
                )
        if offset == self.broadcast_rounds - 1:
            known_changed = self._finish_broadcast()
            changed = known_changed | had_rank
        self._counts_cache = None
        return changed

    def _learn_decoded(self, uid: int, token) -> bool:
        """The object ``_learn_token`` + ``delivered.add``; True iff known grew."""
        bit = self.token_index.get(token.token_id)
        if bit is None:
            # Foreign id: enters known and delivered together, so it is
            # never eligible for gather forwarding.
            if token.token_id in self._foreign_ids[uid]:
                return False
            self._foreign_ids[uid].add(token.token_id)
            self._foreign[uid].append(token)
            self._any_foreign = True
            return True
        fresh = not ((self.known_int[uid] >> bit) & 1)
        if fresh:
            self.known_int[uid] |= 1 << bit
            self.order[uid].append(bit)
            if token.payload != self.tokens[bit].payload:
                self._overrides[uid][bit] = token
        self.delivered_int[uid] |= 1 << bit
        return fresh

    def _finish_broadcast(self) -> np.ndarray:
        known_changed = np.zeros(self.n, dtype=bool)
        for k in sorted(self.groups):
            # repro: allow[REP401] loop is over distinct generation sizes (one except under faults)
            core = self.groups[k]
            members = np.flatnonzero((self.gen_of == k) & ~self.exhausted)
            # can_decode: full coefficient-block rank (equals the plain rank
            # for in-span traffic, so benign runs decode exactly as before).
            decodable = members[core.coefficient_ranks(k)[members] >= k]
            if not decodable.size:
                continue
            with self.profiler.span("decode"):
                ok, payloads = core.decode_payload_masks_batch(k, decodable)
            for pos, uid in enumerate(decodable.tolist()):
                # repro: allow[REP401] decode loop over boundary-decodable nodes, once per window
                if not ok[pos]:
                    continue
                for payload in packed_to_masks(payloads[pos]):
                    # A garbled mixed-span payload can make decode_block
                    # raise; the object engines fail identically, so the
                    # parity contract is preserved either way.
                    for token in decode_block(
                        self.config, payload, self.tokens_per_block
                    ):
                        if self._learn_decoded(uid, token):
                            known_changed[uid] = True
        for leader, chosen in self._leader_chosen.items():
            # repro: allow[REP401] loop over self-elected leaders (one except under faults)
            delivered = self.delivered_int[leader]
            for i in chosen:
                delivered |= 1 << i
            self.delivered_int[leader] = delivered
        self._drop_groups()
        return known_changed

    # ------------------------------------------------------------------
    def _known_counts_now(self) -> np.ndarray:
        counts = np.fromiter(
            (len(order) for order in self.order), dtype=np.int64, count=self.n
        )
        if self._any_foreign:
            counts += np.fromiter(
                (len(ids) for ids in self._foreign_ids), dtype=np.int64, count=self.n
            )
        return counts

    def coded_ranks(self) -> np.ndarray:
        # Exhausted nodes carry no coding state on the object engines (the
        # same masking ``had_rank`` applies in deliver_all).
        ranks = _group_ranks(self.groups, self.gen_of, self.n)
        ranks[self.exhausted] = 0
        return ranks

    def completed_flags(self) -> np.ndarray:
        # Placement-bit coverage: foreign tokens inflate known_counts but
        # never complete a node.
        full = self.full
        return np.fromiter(
            (mask == full for mask in self.known_int), dtype=bool, count=self.n
        )

    def all_complete(self) -> bool:
        full = self.full
        known = self.known_int
        self._incomplete = {uid for uid in self._incomplete if known[uid] != full}
        return not self._incomplete

    def finished_all(self) -> bool:
        return bool(self.exhausted.all())

    def _knows(self, uid: int, token_id) -> bool:
        bit = self.token_index.get(token_id)
        if bit is None:
            return token_id in self._foreign_ids[uid]
        return bool((self.known_int[uid] >> bit) & 1)

    def _known_ids(self, uid: int) -> list:
        ids = [self.tokens[i].token_id for i in self.order[uid]]
        ids.extend(self._foreign_ids[uid])
        return ids

    def state_view(self, uid: int) -> NodeStateView:
        counts = self.known_counts()
        k = int(self.gen_of[uid])
        rank = int(self.groups[k].ranks[uid]) if k >= 0 else 0
        return NodeStateView(
            uid=uid,
            rank=rank,
            known_supplier=lambda: self._known_ids(uid),
            known_count=int(counts[uid]),
            membership=lambda token_id: self._knows(uid, token_id),
        )

    def to_nodes(self, nodes):
        for uid, node in enumerate(nodes):
            node.known.clear()
            overrides = self._overrides[uid]
            for i in self.order[uid]:
                token = overrides.get(i, self.tokens[i])
                node.known[token.token_id] = token
            for token in self._foreign[uid]:
                node.known[token.token_id] = token
            node.delivered = {
                self.tokens[i].token_id for i in _iter_bits(self.delivered_int[uid])
            } | self._foreign_ids[uid]
            node._exhausted = bool(self.exhausted[uid])
            node._gather = None
            node._generation_state = None
            node._broadcast_token_ids = [
                self.tokens[i].token_id for i in self._leader_chosen.get(uid, [])
            ]
