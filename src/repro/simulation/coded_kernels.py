"""Coded-protocol round kernels riding the batched GF(2) elimination core.

PR 3's kernel engine removed the per-node Python dispatch for the forwarding
family; this module does the same for the network-coding family.  All nodes'
received subspaces live in one :class:`~repro.gf.packed.GF2BasisBatch` — a
stacked ``(n, rank, words)`` uint64 echelon array — and one coded round is
three numpy passes: batched random-combination compose, slot-lockstep XOR
elimination of the delivered vectors, and vectorised decode-readiness.  No
live :class:`~repro.coding.subspace.Subspace` objects exist on the hot path;
:meth:`RoundKernel.to_nodes` materialises them (and the decoded tokens) back
into the protocol nodes at the end of the run.

Three kernels ship here:

* :class:`IndexedBroadcastKernel` — pure RLNC indexed broadcast (Lemma 5.3),
  covering both the randomized protocol and the deterministic pre-committed
  coefficient schedule of Corollary 6.2 over GF(2) (a deterministic row is
  *easier* to batch than an rng draw: parities come straight from the
  schedule, with no zero-resampling).
* :class:`NaiveCodedKernel` — the two-phase naive coded algorithm
  (Corollary 7.1): the smallest-ids flood runs as packed window selections
  over the knowledge matrix, the coded broadcast rides the batch.
* :class:`GreedyForwardKernel` — the gather / elect / broadcast loop of
  Theorem 7.3: random forwarding keeps per-node rng draws (bit-exact stream
  compatibility) over integer-mask knowledge, leader election is a
  vectorised max-flood, and the leader's block broadcast rides the batch.

Equivalence contract: for identical seeds these kernels produce
byte-identical :class:`~repro.simulation.metrics.RunMetrics` with the mask
and legacy engines — every rng draw happens against the same per-node
generator in the same order, composed masks are XORs of bit-identical basis
rows in the same order, and innovative/decode flags replicate the per-node
``Subspace`` semantics exactly (``tests/test_coded_kernels.py``).

The multi-phase kernels assume the phases stay *globally consistent*: the
id-flood windows (naive) agree across nodes and at most one node believes
itself elected leader (greedy).  Both hold whenever the flood windows span
``n - 1`` connected rounds — the defaults — and every in-repo adversary and
scenario satisfies them.  If a run ever leaves that regime (which requires a
partial decode failure followed by conflicting re-floods — the same regime
where the object engines start mixing incompatible generations), the kernel
raises ``RuntimeError`` loudly instead of silently diverging; rerun with
``engine="mask"`` to reproduce the object engines' generic behaviour.
"""

from __future__ import annotations

import numpy as np

from ..algorithms.blocks import block_bits, decode_block, encode_block
from ..algorithms.greedy_forward import GreedyForwardNode, resolved_phase_windows
from ..algorithms.indexed_broadcast import IndexedBroadcastNode
from ..algorithms.naive_coded import NaiveCodedNode
from ..algorithms.token_forwarding import tokens_per_message
from ..gf import GF2Basis, GF2BasisBatch, masks_to_packed, packed_to_masks
from ..network.adversary import NodeStateView
from ..network.topology import _iter_bits
from .kernels import (
    KernelUnsupported,
    RoundKernel,
    _full_row,
    _neighbor_or,
    _packed_width,
    _popcount_rows,
    _row_bits,
    _select_lowest_bits,
    register_kernel,
)

__all__ = [
    "IndexedBroadcastKernel",
    "NaiveCodedKernel",
    "GreedyForwardKernel",
]


def _bit_lengths(values: np.ndarray) -> np.ndarray:
    """Vectorised ``max(1, int(v).bit_length())`` for small non-negative ints."""
    return np.maximum(1, np.frexp(values.astype(np.float64))[1]).astype(np.int64)


def _delivery_pairs(
    indices: np.ndarray, indptr: np.ndarray, active: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """All (receiver, active sender) pairs of one round, slot-major.

    Slot ``j`` pairs every node of degree ``> j`` with its ``j``-th CSR
    neighbour; concatenating the slots in ascending order lists each node's
    inbox in exactly the ascending-neighbour order the object engines use,
    which is the per-basis insert order
    :meth:`~repro.gf.packed.GF2BasisBatch.insert_batch` honours for repeated
    node ids — so one round's whole delivery is a single fused call.
    """
    empty = np.zeros(0, dtype=np.int64)
    if indices.size == 0:
        return empty, empty
    degrees = np.diff(indptr)
    receiver_parts: list[np.ndarray] = []
    sender_parts: list[np.ndarray] = []
    for slot in range(int(degrees.max())):
        # repro: allow[REP401] loop is per neighbour slot (<= max degree), batched over all receivers
        receivers = np.flatnonzero(degrees > slot)
        senders = indices[indptr[receivers] + slot]
        keep = active[senders]
        if keep.any():
            receiver_parts.append(receivers[keep])
            sender_parts.append(senders[keep])
    if not receiver_parts:
        return empty, empty
    return np.concatenate(receiver_parts), np.concatenate(sender_parts)


# ----------------------------------------------------------------------
# RLNC indexed broadcast
# ----------------------------------------------------------------------


@register_kernel(IndexedBroadcastNode)
class IndexedBroadcastKernel(RoundKernel):
    """RLNC indexed broadcast as batched GF(2) matrix ops (Lemma 5.3 / Cor 6.2).

    All per-node subspaces live in one :class:`GF2BasisBatch` with
    ``span_cap = k``: in the canonical instance every transmitted vector is a
    combination of the ``k`` consistent source vectors ``e_i || t_i``, so a
    rank-``k`` basis is saturated and late-round deliveries skip elimination
    entirely.  For the same reason the coefficient block's rank always equals
    the full rank (a combination with zero coefficient part is the zero
    vector), so decode readiness is one ``rank == k`` compare per node and
    the actual Gauss-Jordan payload extraction happens once, vectorised, in
    :meth:`to_nodes`.

    The deterministic-schedule variant (``config.extra['deterministic_schedule']``
    over GF(2)) is supported: coefficient parities come from the committed
    schedule instead of rng draws and the zero combination is *not* resampled
    (a scheduled node broadcasts whatever row it was committed to).
    """

    message_name = "CodedMessage"
    supports_message_views = True

    @classmethod
    def supports(cls, config) -> bool:
        # The batch requires GF(2).  The deterministic variant is fine — over
        # GF(2) only coefficient parities matter (the large-field pipeline of
        # Theorem 6.1 sets field_order accordingly and lands on legacy/mask).
        return config.field_order == 2

    def __init__(self, config, placement, token_index, nodes):
        super().__init__(config, placement, token_index, nodes)
        self.nodes = list(nodes)
        if not all(node.state._mask_native for node in self.nodes):
            raise KernelUnsupported(
                "IndexedBroadcastKernel requires every node's GenerationState "
                "to be on the mask-native GF(2) pipeline"
            )
        generation = self.nodes[0].generation
        self.gen_k = generation.k
        self.length = generation.vector_length
        self.message_bits = (
            generation.k
            + generation.payload_symbols
            + max(1, int(generation.generation_id).bit_length())
        )
        # Canonical-instance check: the placement tokens must occupy the
        # dimensions 0..k-1 bijectively.  That is what makes "decoded" mean
        # "knows every placement token" (and what caps every basis at rank k);
        # exotic index_of mappings fall back to the mask engine.
        index_of = config.extra.get("index_of")
        indexes = [
            int(index_of[t.token_id]) if index_of is not None else t.token_id.origin % self.gen_k
            for t in self.tokens
        ]
        if self.k != self.gen_k or sorted(indexes) != list(range(self.gen_k)):
            raise KernelUnsupported(
                "IndexedBroadcastKernel requires the canonical instance: "
                "placement tokens bijectively indexed 0..k-1"
            )
        self.schedule = config.extra.get("deterministic_schedule")
        self.rngs = [node.rng for node in self.nodes]
        self.core = GF2BasisBatch(self.n, self.length, span_cap=self.gen_k)
        self.core.lift_masks(
            [node.state.subspace._gf2.rows_in_insertion_order() for node in self.nodes]
        )
        self.decoded = np.zeros(self.n, dtype=bool)
        self.initial_counts = np.array(
            [len(node.known) for node in self.nodes], dtype=np.int64
        )
        full_mask = (1 << self.k) - 1
        self.initially_full = np.array(
            [node.knowledge_mask() == full_mask for node in self.nodes], dtype=bool
        )
        self._picks: np.ndarray | None = None
        self._send_active: np.ndarray | None = None
        self._wire: np.ndarray | None = None
        self._overrides: dict[int, int] = {}

    # ------------------------------------------------------------------
    def compose_all(self, round_index):
        # Only the rng draws / schedule reads happen here (they are what the
        # per-node streams see); the XOR-combine itself runs lazily in
        # deliver_all, restricted to senders whose message some unsaturated
        # receiver still needs.
        if self.schedule is None:
            active, picks = self.core.draw_random_picks(self.rngs)
        else:
            ranks = self.core.ranks
            active = ranks > 0
            max_rank = int(ranks.max())
            picks = np.zeros((self.n, max(1, max_rank)), dtype=np.uint8)
            for uid in np.flatnonzero(active).tolist():
                rank = int(ranks[uid])
                coefficients = self.schedule.coefficients(uid, round_index, rank)
                picks[uid, :rank] = np.fromiter(
                    (c & 1 for c in coefficients), dtype=np.uint8, count=rank
                )
        self._picks = picks
        self._send_active = active
        self._wire = None
        self._overrides = {}
        sizes = np.where(active, self.message_bits, 0)
        return active, sizes

    def set_wire_overrides(self, overrides):
        # Byzantine replay: listed senders' wire vectors are substituted for
        # this round; both deliver_all and the message views read them.
        self._overrides = dict(overrides)
        self._wire = None

    def _wire_rows(self) -> np.ndarray:
        """The full combined wire matrix for this round (cached, overridden)."""
        if self._wire is None:
            combined = self.core.combine_sorted(self._picks)
            for uid, mask in self._overrides.items():
                combined[uid] = masks_to_packed([mask], self.core.words)[0]
            self._wire = combined
        return self._wire

    def wire_message(self, uid, round_index):
        mask = packed_to_masks(self._wire_rows()[uid : uid + 1])[0]
        return self.nodes[uid].generation.message_from_mask(uid, mask)

    def deliver_all(self, round_index, indices, indptr, active, counts):
        innovative = np.zeros(self.n, dtype=bool)
        receivers, senders = _delivery_pairs(indices, indptr, self._send_active)
        if receivers.size:
            # Saturated receivers short-circuit inside the core anyway; the
            # early filter means the combine below only materialises the
            # messages someone still needs.
            open_receiver = self.core.ranks[receivers] < self.gen_k
            receivers, senders = receivers[open_receiver], senders[open_receiver]
        if receivers.size:
            if self._wire is not None:
                # Message views (or an override pass) already materialised
                # the full wire matrix; a subset combine of the same picks
                # would be bit-identical, so reuse it.
                combined = self._wire
            else:
                needed = np.unique(senders)
                # Subset combining pays a row gather; it only wins once most
                # of the network is saturated and few senders still matter.
                subset = needed if needed.size * 4 <= self.n else None
                combined = self.core.combine_sorted(self._picks, subset)
                for uid, mask in self._overrides.items():
                    combined[uid] = masks_to_packed([mask], self.core.words)[0]
            flags = self.core.insert_batch(receivers, combined[senders])
            innovative[receivers[flags]] = True
        # In-span traffic: the coefficient block's rank equals the full rank,
        # so decode readiness is saturation of the span cap.
        decoded_now = (self.core.ranks >= self.gen_k) & ~self.decoded
        self.decoded |= decoded_now
        self._counts_cache = None
        return innovative | decoded_now

    # ------------------------------------------------------------------
    def _known_counts_now(self) -> np.ndarray:
        return np.where(self.decoded, self.k, self.initial_counts)

    def all_complete(self) -> bool:
        return bool((self.decoded | self.initially_full).all())

    def finished_all(self) -> bool:
        return bool(self.decoded.all())

    def state_view(self, uid: int) -> NodeStateView:
        node = self.nodes[uid]
        rank = int(self.core.ranks[uid])
        if self.decoded[uid]:
            all_ids = sorted(self.token_index)
            return NodeStateView(
                uid=uid,
                rank=rank,
                known_supplier=lambda: all_ids,
                known_count=self.k,
                membership=self.token_index.__contains__,
            )
        return NodeStateView(
            uid=uid,
            rank=rank,
            known_supplier=lambda: list(node.known),
            known_count=len(node.known),
            membership=node.known.__contains__,
        )

    def to_nodes(self, nodes):
        decoded_tokens: list | None = None
        decoded_uids = np.flatnonzero(self.decoded)
        if decoded_uids.size:
            # Canonical instance: every decoded span is the same k-dimensional
            # source span, so one vectorised Gauss-Jordan serves all nodes.
            ok, payloads = self.core.decode_payload_masks_batch(
                self.gen_k, decoded_uids[:1]
            )
            if not ok[0]:
                raise RuntimeError(
                    "canonical decode failed for a node whose span reached "
                    "full rank"
                )
            decoded_tokens = []
            for payload in packed_to_masks(payloads[0]):
                decoded_tokens.extend(
                    decode_block(self.config, payload, tokens_per_block=1)
                )
        for uid, node in enumerate(nodes):
            subspace = node.state.subspace
            subspace._gf2 = GF2Basis.from_rows(self.length, self.core.row_masks(uid))
            subspace._pick_buffer = self.core._pick_buffer[uid]
            subspace._pick_bits = self.core._pick_bits[uid]
            if self.decoded[uid] and not node._decoded:
                known = node.known
                for token in decoded_tokens:
                    if token.token_id not in known:
                        known[token.token_id] = token
                node._decoded = True
            node._span_dirty = False


# ----------------------------------------------------------------------
# naive coded dissemination (Corollary 7.1)
# ----------------------------------------------------------------------


@register_kernel(NaiveCodedNode)
class NaiveCodedKernel(RoundKernel):
    """Flood-the-smallest-ids indexing + coded broadcast, batched.

    The id flood is pure packed-matrix work: a node's candidate window is the
    ``ids_per_message`` lowest set bits of ``(known | candidates) & ~delivered``
    (token bit order *is* ascending-id order), one
    :func:`~repro.simulation.kernels._select_lowest_bits` pass for the whole
    network, and delivery is one neighbour-OR.  The broadcast window seeds a
    :class:`GF2BasisBatch` over the agreed window (``span_cap = k`` — all
    sources are consistent) that every node inserts into; decode at the
    window boundary is a packed learn of the selected tokens.

    Knowledge, delivered and candidate state are materialised back into the
    nodes by :meth:`to_nodes`; the transient within-window coding state is
    not (it is dropped at the window boundary anyway).
    """

    message_name = "CodedMessage"

    @classmethod
    def supports(cls, config) -> bool:
        return config.field_order == 2

    def __init__(self, config, placement, token_index, nodes):
        super().__init__(config, placement, token_index, nodes)
        node0 = nodes[0]
        self.ids_per_message = node0.ids_per_message
        self.flood_rounds = node0.flood_rounds
        self.broadcast_rounds = node0.broadcast_rounds
        self.iteration_length = node0.iteration_length
        if self.flood_rounds < 1 or self.broadcast_rounds < 1:
            raise KernelUnsupported("NaiveCodedKernel requires positive phase windows")
        self.rngs = [node.rng for node in nodes]
        self.width = _packed_width(self.k)
        self.full = _full_row(self.k, self.width)
        self.known = np.zeros((self.n, self.width), dtype=np.uint64)
        self._initial_order: list[list[int]] = []
        for uid, node in enumerate(nodes):
            order = [token_index[tid] for tid in node.known]
            self._initial_order.append(order)
            for bit in order:
                self.known[uid, bit >> 6] |= np.uint64(1 << (bit & 63))
        self.delivered = np.zeros_like(self.known)
        self.cand = np.zeros_like(self.known)
        self.id_costs = np.array([t.token_id.bits for t in self.tokens], dtype=np.int64)
        self.payload_bits_per_dim = block_bits(config, tokens_per_block=1)
        self.payload_ints = [
            encode_block(config, [t], tokens_per_block=1) for t in self.tokens
        ]
        self._learn_log: list[list[int]] = [[] for _ in range(self.n)]
        self._incomplete = {
            uid for uid in range(self.n) if not bool((self.known[uid] == self.full).all())
        }
        # Broadcast-window state (rebuilt per iteration).
        self.core: GF2BasisBatch | None = None
        self.member = np.zeros(self.n, dtype=bool)  # has a GenerationState
        self.window = np.zeros(self.n, dtype=bool)  # had a non-empty _selected
        self.selected: list[int] = []
        self.gen_k = 0
        self.message_bits = 0
        self._flood_send: np.ndarray | None = None
        self._coded_send: np.ndarray | None = None
        self._send_active: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _phase(self, round_index: int) -> tuple[str, int, int]:
        iteration = round_index // self.iteration_length
        offset = round_index % self.iteration_length
        if offset < self.flood_rounds:
            return "flood", offset, iteration
        return "broadcast", offset - self.flood_rounds, iteration

    def _drop_generation(self) -> None:
        self.core = None
        self.member[:] = False
        self.window[:] = False
        self.selected = []

    # ------------------------------------------------------------------
    def compose_all(self, round_index):
        phase, offset, iteration = self._phase(round_index)
        if phase == "flood":
            if offset == 0:
                undelivered = self.known & ~self.delivered
                self.cand, _ = _select_lowest_bits(
                    undelivered, self.ids_per_message, None
                )
                self._drop_generation()
            window, id_bits = _select_lowest_bits(
                (self.known | self.cand) & ~self.delivered,
                self.ids_per_message,
                self.id_costs,
            )
            active = window.any(axis=1)
            window[~active] = 0
            self._flood_send = window
            self._coded_send = None
            self._send_active = active
            return active, np.where(active, 4 + id_bits, 0)
        if offset == 0:
            self._start_broadcast(iteration)
        self._flood_send = None
        if self.core is None:
            active = np.zeros(self.n, dtype=bool)
            self._send_active = active
            return active, np.zeros(self.n, dtype=np.int64)
        active, combined = self.core.compose_random(
            self.rngs, np.flatnonzero(self.member)
        )
        self._coded_send = combined
        self._send_active = active
        return active, np.where(active, self.message_bits, 0)

    def _start_broadcast(self, iteration: int) -> None:
        nonempty = self.cand.any(axis=1)
        self._drop_generation()
        if not nonempty.any():
            return
        rows = self.cand[nonempty]
        if not bool((rows == rows[0]).all()):
            raise RuntimeError(
                "NaiveCodedKernel: candidate windows diverged across nodes "
                "(a partial decode failure re-floods conflicting ids); rerun "
                "with engine='mask' for the object engines' generic handling"
            )
        self.window = nonempty.copy()
        self.member = nonempty.copy()
        self.selected = list(_row_bits(rows[0]))
        k = len(self.selected)
        self.gen_k = k
        generation_id = iteration + 1
        self.message_bits = (
            k + self.payload_bits_per_dim + max(1, int(generation_id).bit_length())
        )
        self.core = GF2BasisBatch(
            self.n, k + self.payload_bits_per_dim, span_cap=k
        )
        for i, index in enumerate(self.selected):
            # repro: allow[REP401] once-per-iteration seeding over k selected dims, batched over holders
            holds = (self.known[:, index >> 6] >> np.uint64(index & 63)) & np.uint64(1)
            # repro: allow[REP401] once-per-iteration seeding over k selected dims, batched over holders
            holders = np.flatnonzero(nonempty & holds.astype(bool))
            if holders.size:
                source = (1 << i) | (self.payload_ints[index] << k)
                # repro: allow[REP401] once-per-iteration seeding over k selected dims, batched over holders
                vectors = np.broadcast_to(
                    masks_to_packed([source], self.core.words),
                    (holders.size, self.core.words),
                )
                self.core.insert_batch(holders, vectors)

    # ------------------------------------------------------------------
    def deliver_all(self, round_index, indices, indptr, active, counts):
        phase, offset, _iteration = self._phase(round_index)
        if phase == "flood":
            inbox = _neighbor_or(self._flood_send, indices, indptr)
            self.cand |= inbox & ~self.delivered
            self.cand, _ = _select_lowest_bits(self.cand, self.ids_per_message, None)
            return np.zeros(self.n, dtype=bool)
        changed = np.zeros(self.n, dtype=bool)
        if self.core is not None:
            had_rank = self.member & (self.core.ranks > 0)
            receivers, senders = _delivery_pairs(indices, indptr, self._send_active)
            if receivers.size:
                self.member[receivers] = True
                flags = self.core.insert_batch(receivers, self._coded_send[senders])
                changed[receivers[flags]] = True
        else:
            had_rank = np.zeros(self.n, dtype=bool)
        if offset == self.broadcast_rounds - 1:
            known_changed = self._finish_broadcast()
            # The window boundary clears every node's coding state, so the
            # (len(known), coded_rank) fingerprint changes iff tokens were
            # learned or the pre-round rank was non-zero (it drops to 0).
            changed = known_changed | had_rank
        self._counts_cache = None
        return changed

    def _finish_broadcast(self) -> np.ndarray:
        known_changed = np.zeros(self.n, dtype=bool)
        if self.core is not None and self.selected:
            selected_row = np.zeros(self.width, dtype=np.uint64)
            for index in self.selected:
                selected_row[index >> 6] |= np.uint64(1 << (index & 63))
            members = np.flatnonzero(self.member)
            decodable = members[self.core.ranks[members] >= self.gen_k]
            if decodable.size:
                new = selected_row & ~self.known[decodable]
                known_changed[decodable] = new.any(axis=1)
                for uid, row in zip(decodable.tolist(), new):
                    if row.any():
                        self._learn_log[uid].extend(_row_bits(row))
                self.known[decodable] |= selected_row
                self.delivered[decodable] |= selected_row
            # Window nodes that failed to decode only mark the selected
            # tokens they already hold.
            undecoded = self.window.copy()
            undecoded[decodable] = False
            self.delivered[undecoded] |= selected_row & self.known[undecoded]
        self.cand[:] = 0
        self._drop_generation()
        return known_changed

    # ------------------------------------------------------------------
    def _known_counts_now(self) -> np.ndarray:
        return _popcount_rows(self.known)

    def all_complete(self) -> bool:
        full = self.full
        known = self.known
        self._incomplete = {
            uid for uid in self._incomplete if not bool((known[uid] == full).all())
        }
        return not self._incomplete

    def _knows(self, uid: int, token_id) -> bool:
        bit = self.token_index.get(token_id)
        if bit is None:
            return False
        return bool((int(self.known[uid, bit >> 6]) >> (bit & 63)) & 1)

    def state_view(self, uid: int) -> NodeStateView:
        counts = self.known_counts()
        rank = int(self.core.ranks[uid]) if self.core is not None and self.member[uid] else 0
        return NodeStateView(
            uid=uid,
            rank=rank,
            known_supplier=lambda: [
                self.tokens[i].token_id for i in _row_bits(self.known[uid])
            ],
            known_count=int(counts[uid]),
            membership=lambda token_id: self._knows(uid, token_id),
        )

    def to_nodes(self, nodes):
        for uid, node in enumerate(nodes):
            node.known.clear()
            for i in self._initial_order[uid] + self._learn_log[uid]:
                token = self.tokens[i]
                node.known[token.token_id] = token
            node.delivered = {
                self.tokens[i].token_id for i in _row_bits(self.delivered[uid])
            }
            node._candidate_ids = {
                self.tokens[i].token_id for i in _row_bits(self.cand[uid])
            }
            node._selected = (
                [self.tokens[i].token_id for i in self.selected]
                if self.window[uid]
                else []
            )
            node._generation_state = None


# ----------------------------------------------------------------------
# greedy-forward (Theorem 7.3)
# ----------------------------------------------------------------------


@register_kernel(GreedyForwardNode)
class GreedyForwardKernel(RoundKernel):
    """Gather / elect / broadcast greedy-forward as a phase-switched kernel.

    * **gather** — the random-forward primitive keeps one small
      ``rng.choice`` per informed node (exact per-node stream compatibility,
      like :class:`~repro.simulation.kernels.RandomForwardKernel`); knowledge
      and eligibility are integer bit masks plus insertion-order index lists.
    * **elect** — the max-``(count, uid)`` flood is one vectorised
      ``maximum.reduceat`` per round over encoded comparison keys.
    * **broadcast** — the elected leader's block generation is seeded into a
      :class:`GF2BasisBatch` (``span_cap = #blocks``; a single leader's
      sources are consistent by construction) and the window runs exactly
      like :class:`IndexedBroadcastKernel`, with block decode + delivered
      bookkeeping at the boundary.

    :meth:`to_nodes` materialises knowledge, delivered sets and termination
    flags; transient mid-phase scratch (gather election state, the coding
    generation) is not materialised — it is protocol-internal and dropped at
    the next phase boundary anyway.
    """

    message_name = "CodedMessage"

    @classmethod
    def supports(cls, config) -> bool:
        if config.field_order != 2:
            return False
        # The phase windows must be positive for the node's own phase
        # arithmetic to be consistent (GatherState clamps independently).
        return all(window >= 1 for window in resolved_phase_windows(config))

    def __init__(self, config, placement, token_index, nodes):
        super().__init__(config, placement, token_index, nodes)
        node0 = nodes[0]
        self.gather_rounds = node0.gather_rounds
        self.elect_rounds = node0.elect_rounds
        self.broadcast_rounds = node0.broadcast_rounds
        self.iteration_length = node0.iteration_length
        self.tokens_per_block = node0.tokens_per_block
        self.block_payload_bits = node0.block_payload_bits
        self.max_blocks = node0.max_blocks
        self.batch = tokens_per_message(config)
        self.rngs = [node.rng for node in nodes]
        self.costs = [t.token_id.bits + t.size_bits for t in self.tokens]
        self.full = (1 << self.k) - 1
        self.order: list[list[int]] = []
        self.known_int: list[int] = []
        for node in nodes:
            indexes = [token_index[tid] for tid in node.known]
            mask = 0
            for i in indexes:
                mask |= 1 << i
            self.order.append(indexes)
            self.known_int.append(mask)
        self.delivered_int = [0] * self.n
        self.eligible: list[list[int]] = [list(o) for o in self.order]
        self.exhausted = np.zeros(self.n, dtype=bool)
        self.lead_count = np.full(self.n, -1, dtype=np.int64)
        self.lead_uid = np.full(self.n, -1, dtype=np.int64)
        self._incomplete = {
            uid for uid in range(self.n) if self.known_int[uid] != self.full
        }
        # Broadcast-window state (rebuilt per iteration).
        self.core: GF2BasisBatch | None = None
        self.member = np.zeros(self.n, dtype=bool)
        self.gen_k = 0
        self.message_bits = 0
        self._leader = -1
        self._leader_chosen: list[int] = []
        self._chosen: list[list[int] | None] = [None] * self.n
        self._coded_send: np.ndarray | None = None
        self._send_active: np.ndarray | None = None
        self._elect_keys: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _phase(self, round_index: int) -> tuple[str, int, int]:
        iteration = round_index // self.iteration_length
        offset = round_index % self.iteration_length
        if offset < self.gather_rounds + self.elect_rounds:
            return "gather", offset, iteration
        return "broadcast", offset - self.gather_rounds - self.elect_rounds, iteration

    def _reset_gather(self) -> None:
        for uid in np.flatnonzero(~self.exhausted).tolist():
            delivered = self.delivered_int[uid]
            self.eligible[uid] = [
                i for i in self.order[uid] if not (delivered >> i) & 1
            ]
        self.lead_count[:] = -1
        self.lead_uid[:] = -1

    def _ensure_local_counts(self) -> None:
        """Seed every live node's flood state with its own (count, uid) pair."""
        live = np.flatnonzero(~self.exhausted)
        fresh = live[self.lead_count[live] < 0]
        self.lead_count[fresh] = [len(self.eligible[u]) for u in fresh.tolist()]
        self.lead_uid[fresh] = fresh

    # ------------------------------------------------------------------
    def compose_all(self, round_index):
        phase, offset, iteration = self._phase(round_index)
        n = self.n
        active = np.zeros(n, dtype=bool)
        sizes = np.zeros(n, dtype=np.int64)
        self._coded_send = None
        self._elect_keys = None
        if phase == "gather":
            if offset == 0:
                self._reset_gather()
            if offset < self.gather_rounds:
                chosen_lists: list[list[int] | None] = [None] * n
                costs = self.costs
                batch = self.batch
                for uid in range(n):
                    if self.exhausted[uid]:
                        continue
                    eligible = self.eligible[uid]
                    count = len(eligible)
                    if count == 0:
                        continue
                    if count <= batch:
                        chosen = eligible[:]
                    else:
                        picks = self.rngs[uid].choice(count, size=batch, replace=False)
                        chosen = [eligible[int(i)] for i in picks]
                    chosen_lists[uid] = chosen
                    active[uid] = True
                    sizes[uid] = sum(costs[i] for i in chosen)
                self._chosen = chosen_lists
            else:
                # Elect flood: every live node broadcasts its current best
                # (count, leader) pair; 4 tag bits per field.
                self._ensure_local_counts()
                live = ~self.exhausted
                counts = np.maximum(self.lead_count, 0)
                leaders = np.maximum(self.lead_uid, 0)
                active = live.copy()
                sizes = np.where(
                    live, 8 + _bit_lengths(counts) + _bit_lengths(leaders), 0
                )
                self._elect_keys = np.where(
                    live, counts * n + (n - 1 - leaders), -1
                )
            self._send_active = active
            return active, sizes
        if offset == 0:
            self._start_broadcast(iteration)
        if self.core is None:
            self._send_active = active
            return active, sizes
        active, combined = self.core.compose_random(
            self.rngs, np.flatnonzero(self.member & ~self.exhausted)
        )
        self._coded_send = combined
        self._send_active = active
        return active, np.where(active, self.message_bits, 0)

    def _start_broadcast(self, iteration: int) -> None:
        self.core = None
        self.member[:] = False
        self._leader = -1
        self._leader_chosen = []
        live = ~self.exhausted
        self.exhausted |= live & (self.lead_count <= 0)
        live = ~self.exhausted
        self_leaders = np.flatnonzero(live & (self.lead_uid == np.arange(self.n)))
        if self_leaders.size > 1:
            raise RuntimeError(
                "GreedyForwardKernel: the leader election did not converge "
                "(multiple nodes believe they won); rerun with engine='mask' "
                "for the object engines' generic multi-generation handling"
            )
        if self_leaders.size == 0:
            return
        leader = int(self_leaders[0])
        pending = self.known_int[leader] & ~self.delivered_int[leader]
        capacity = self.max_blocks * self.tokens_per_block
        chosen = []
        for i in _row_bits(pending):
            chosen.append(i)
            if len(chosen) == capacity:
                break
        if not chosen:
            return
        blocks = [
            chosen[i : i + self.tokens_per_block]
            for i in range(0, len(chosen), self.tokens_per_block)
        ]
        k = len(blocks)
        self.gen_k = k
        generation_id = iteration + 1
        self.message_bits = (
            k + self.block_payload_bits + max(1, int(generation_id).bit_length())
        )
        self.core = GF2BasisBatch(
            self.n, k + self.block_payload_bits, span_cap=k
        )
        leader_array = np.array([leader], dtype=np.int64)
        for i, block in enumerate(blocks):
            payload = encode_block(
                self.config,
                [self.tokens[j] for j in block],
                self.tokens_per_block,
            )
            source = (1 << i) | (payload << k)
            self.core.insert_batch(
                leader_array, masks_to_packed([source], self.core.words)
            )
        self.member[leader] = True
        self._leader = leader
        self._leader_chosen = chosen

    # ------------------------------------------------------------------
    def deliver_all(self, round_index, indices, indptr, active, counts):
        phase, offset, _iteration = self._phase(round_index)
        n = self.n
        changed = np.zeros(n, dtype=bool)
        if phase == "gather":
            if offset < self.gather_rounds:
                chosen = self._chosen
                for uid in range(n):
                    if self.exhausted[uid]:
                        continue
                    start, stop = int(indptr[uid]), int(indptr[uid + 1])
                    if start == stop:
                        continue
                    mask = self.known_int[uid]
                    before = mask
                    order = self.order[uid]
                    eligible = self.eligible[uid]
                    delivered = self.delivered_int[uid]
                    for v in indices[start:stop]:
                        tokens = chosen[v]
                        if tokens is None:
                            continue
                        for i in tokens:
                            if not (mask >> i) & 1:
                                mask |= 1 << i
                                order.append(i)
                                if not (delivered >> i) & 1:
                                    eligible.append(i)
                    if mask != before:
                        self.known_int[uid] = mask
                        changed[uid] = True
                if offset == self.gather_rounds - 1:
                    # Forwarding just ended: seed the flood with own counts
                    # (after this round's learns, as the object code does).
                    self._ensure_local_counts()
            else:
                keys = self._elect_keys
                if indices.size:
                    # A -1 sentinel pad keeps reduceat in-bounds on the
                    # trailing empty segments a fault-edited CSR can contain
                    # without truncating the last non-empty segment (clamping
                    # the starts would drop its final key); interior empty
                    # segments yield a real single element, discarded by the
                    # degree > 0 filter below.
                    padded = np.concatenate(
                        (keys[indices], np.full(1, -1, dtype=keys.dtype))
                    )
                    inbox = np.maximum.reduceat(padded, indptr[:-1])
                    merge = np.flatnonzero(
                        ~self.exhausted & (np.diff(indptr) > 0) & (inbox >= 0)
                    )
                    merged = np.maximum(
                        self.lead_count[merge] * n + (n - 1 - self.lead_uid[merge]),
                        inbox[merge],
                    )
                    self.lead_count[merge] = merged // n
                    self.lead_uid[merge] = n - 1 - (merged % n)
            self._counts_cache = None
            return changed
        if self.core is not None:
            ranks = self.core.ranks
            had_rank = self.member & (ranks > 0) & ~self.exhausted
            receivers, senders = _delivery_pairs(indices, indptr, self._send_active)
            keep = ~self.exhausted[receivers]
            receivers, senders = receivers[keep], senders[keep]
            if receivers.size:
                self.member[receivers] = True
                flags = self.core.insert_batch(receivers, self._coded_send[senders])
                changed[receivers[flags]] = True
        else:
            had_rank = np.zeros(n, dtype=bool)
        if offset == self.broadcast_rounds - 1:
            known_changed = self._finish_broadcast()
            changed = known_changed | had_rank
        self._counts_cache = None
        return changed

    def _finish_broadcast(self) -> np.ndarray:
        known_changed = np.zeros(self.n, dtype=bool)
        if self.core is not None:
            members = np.flatnonzero(self.member & ~self.exhausted)
            decodable = members[self.core.ranks[members] >= self.gen_k]
            if decodable.size:
                ok, payloads = self.core.decode_payload_masks_batch(
                    self.gen_k, decodable[:1]
                )
                if not ok[0]:
                    raise RuntimeError(
                        "broadcast decode failed for a member whose rank "
                        "reached the generation size"
                    )
                decoded_tokens = []
                for payload in packed_to_masks(payloads[0]):
                    decoded_tokens.extend(
                        decode_block(self.config, payload, self.tokens_per_block)
                    )
                decoded_indexes = []
                for token in decoded_tokens:
                    bit = self.token_index.get(token.token_id)
                    if bit is None:
                        raise RuntimeError(
                            "GreedyForwardKernel: decoded a token outside the "
                            "placement (mixed generations); rerun with "
                            "engine='mask'"
                        )
                    decoded_indexes.append(bit)
                for uid in decodable.tolist():
                    mask = self.known_int[uid]
                    delivered = self.delivered_int[uid]
                    order = self.order[uid]
                    for i in decoded_indexes:
                        if not (mask >> i) & 1:
                            mask |= 1 << i
                            order.append(i)
                            known_changed[uid] = True
                        delivered |= 1 << i
                    self.known_int[uid] = mask
                    self.delivered_int[uid] = delivered
        if self._leader >= 0:
            delivered = self.delivered_int[self._leader]
            for i in self._leader_chosen:
                delivered |= 1 << i
            self.delivered_int[self._leader] = delivered
        self.core = None
        self.member[:] = False
        self._leader = -1
        self._leader_chosen = []
        return known_changed

    # ------------------------------------------------------------------
    def _known_counts_now(self) -> np.ndarray:
        return np.fromiter(
            (len(order) for order in self.order), dtype=np.int64, count=self.n
        )

    def all_complete(self) -> bool:
        full = self.full
        known = self.known_int
        self._incomplete = {uid for uid in self._incomplete if known[uid] != full}
        return not self._incomplete

    def finished_all(self) -> bool:
        return bool(self.exhausted.all())

    def _knows(self, uid: int, token_id) -> bool:
        bit = self.token_index.get(token_id)
        return bit is not None and bool((self.known_int[uid] >> bit) & 1)

    def state_view(self, uid: int) -> NodeStateView:
        order = self.order[uid]
        rank = int(self.core.ranks[uid]) if self.core is not None and self.member[uid] else 0
        return NodeStateView(
            uid=uid,
            rank=rank,
            known_supplier=lambda: [self.tokens[i].token_id for i in order],
            known_count=len(order),
            membership=lambda token_id: self._knows(uid, token_id),
        )

    def to_nodes(self, nodes):
        for uid, node in enumerate(nodes):
            node.known.clear()
            for i in self.order[uid]:
                token = self.tokens[i]
                node.known[token.token_id] = token
            node.delivered = {
                self.tokens[i].token_id for i in _iter_bits(self.delivered_int[uid])
            }
            node._exhausted = bool(self.exhausted[uid])
            node._gather = None
            node._generation_state = None
            node._broadcast_token_ids = []
