"""Closed-form predicted round complexities for every theorem in the paper.

These are the "expected curves" the benchmarks plot measurements against.
All formulas return plain floats of the *leading-order* expression with unit
constants (the paper's bounds are big-O; the benchmarks compare shapes and
ratios, not absolute values).

Every public function cites the theorem / corollary / lemma it encodes.
"""

from __future__ import annotations

import math

__all__ = [
    "log2c",
    "token_forwarding_rounds",
    "centralized_token_forwarding_lower_bound",
    "indexed_broadcast_rounds",
    "indexed_broadcast_message_bits",
    "naive_coded_rounds",
    "greedy_forward_rounds",
    "priority_forward_rounds",
    "coded_dissemination_rounds",
    "tstable_coded_rounds",
    "tstable_patch_broadcast_rounds",
    "deterministic_dissemination_rounds",
    "deterministic_mis_rounds",
    "centralized_coded_rounds",
    "coding_speedup_over_forwarding",
    "linear_time_message_size_coded",
    "linear_time_message_size_forwarding",
    "stability_for_near_linear_time",
]


def log2c(x: float) -> float:
    """``log2`` clamped below at 1, the asymptotic stand-in for ``log n``."""
    return max(1.0, math.log2(max(2.0, float(x))))


# ----------------------------------------------------------------------
# Baselines (Kuhn, Lynch, Oshman)
# ----------------------------------------------------------------------
def token_forwarding_rounds(n: int, k: int, d: int, b: int, T: int = 1) -> float:
    """Theorem 2.1: knowledge-based token forwarding, ``O(nkd/(bT) + n)`` (tight)."""
    return (n * k * d) / (b * T) + n


def centralized_token_forwarding_lower_bound(n: int, k: int) -> float:
    """Theorem 2.2: even centralized token forwarding needs ``Omega(n log k)`` for b = d."""
    return n * log2c(k)


# ----------------------------------------------------------------------
# Network-coded building blocks
# ----------------------------------------------------------------------
def indexed_broadcast_rounds(n: int, k: int) -> float:
    """Lemma 5.3: RLNC indexed broadcast completes in ``O(n + k)`` rounds."""
    return float(n + k)


def indexed_broadcast_message_bits(k: int, d: int, q: int = 2) -> float:
    """Lemma 5.3: message size ``k lg q + d`` bits."""
    return k * max(1.0, math.log2(q)) + d


def naive_coded_rounds(n: int, k: int, d: int, b: int) -> float:
    """Corollary 7.1: flood-indexing + coded broadcast, ``O(n k log n / b)``."""
    return (n * k * log2c(n)) / b + n


def greedy_forward_rounds(n: int, k: int, d: int, b: int) -> float:
    """Theorem 7.3: greedy-forward, ``O(n k d / b^2 + n b)``."""
    return (n * k * d) / (b * b) + n * b


def priority_forward_rounds(n: int, k: int, d: int, b: int) -> float:
    """Theorem 7.5: priority-forward, ``O((log n / b) * nkd/b + n log n)`` for b >= log^3 n."""
    return (log2c(n) / b) * (n * k * d) / b + n * log2c(n)


def coded_dissemination_rounds(n: int, k: int, d: int, b: int) -> float:
    """Theorem 2.3: the better of greedy-forward and priority-forward."""
    return min(greedy_forward_rounds(n, k, d, b), priority_forward_rounds(n, k, d, b))


# ----------------------------------------------------------------------
# T-stability (Section 8)
# ----------------------------------------------------------------------
def tstable_patch_broadcast_rounds(n: int, b: int, T: int) -> float:
    """Lemma 8.1: patch-sharing broadcasts (bT)^2 bits in ``O((n + bT^2) log n)`` rounds."""
    return (n + b * T * T) * log2c(n)


def tstable_coded_rounds(n: int, k: int, d: int, b: int, T: int) -> float:
    """Theorem 2.4: the minimum of the three T-stable coded dissemination bounds."""
    log_n = log2c(n)
    option_greedy = (log_n / (b * T * T)) * (n * k * d) / b + n * b * T * T * log_n
    option_priority = (log_n * log_n / (b * T * T)) * (n * k * d) / b + n * T * log_n * log_n
    option_pipeline = (log_n * log_n / (b * T * T)) * n * n + n * log_n
    return min(option_greedy, option_priority, option_pipeline)


def deterministic_mis_rounds(n: int) -> float:
    """Panconesi–Srinivasan deterministic MIS: ``2^{O(sqrt(log n))}`` rounds."""
    return 2.0 ** math.sqrt(log2c(n))


def deterministic_dissemination_rounds(n: int, k: int, b: int, T: int) -> float:
    """Theorem 2.5: deterministic coded dissemination in a T-stable network."""
    return (
        (1.0 / math.sqrt(b * T)) * n * min(k, n / T) + n
    ) * deterministic_mis_rounds(n)


def centralized_coded_rounds(n: int) -> float:
    """Corollary 2.6: centralized randomized coded dissemination is ``Theta(n)``."""
    return float(n)


# ----------------------------------------------------------------------
# Section 2.3 value instantiations
# ----------------------------------------------------------------------
def coding_speedup_over_forwarding(n: int, k: int, d: int, b: int, T: int = 1) -> float:
    """Predicted factor by which coding beats the forwarding lower bound."""
    forwarding = token_forwarding_rounds(n, k, d, b, T)
    coded = (
        tstable_coded_rounds(n, k, d, b, T) if T > 1 else coded_dissemination_rounds(n, k, d, b)
    )
    return forwarding / max(1.0, coded)


def linear_time_message_size_coded(n: int) -> float:
    """Section 2.3: ``b = sqrt(n log n)`` suffices for a linear-time coded counting algorithm."""
    return math.sqrt(n * log2c(n))


def linear_time_message_size_forwarding(n: int) -> float:
    """Section 2.3: forwarding needs ``b = n log n`` for linear time (tight)."""
    return n * log2c(n)


def stability_for_near_linear_time(n: int, deterministic: bool = False) -> float:
    """Section 2.3: stability needed for near-linear n-token dissemination.

    ``T = Omega(sqrt(n))`` suffices for randomized coding, ``T = Omega(n^{2/3})``
    for deterministic coding, versus ``T = Omega(n^{1 - o(1)})`` for forwarding.
    """
    if deterministic:
        return n ** (2.0 / 3.0)
    return math.sqrt(n)
