"""The Section 5.2 motivating example: XOR beats forwarding in the end phase.

Node ``A`` knows all ``k`` tokens; node ``B`` knows all but one, and ``A``
does not know which one is missing.  Worst-case deterministic token
forwarding needs ``k`` rounds, a randomized strategy needs ``k/2`` expected
rounds, but a single XOR of all tokens lets ``B`` reconstruct the missing
token in one round.

These tiny functions make that comparison executable (and exactly
quantifiable) so benchmark E12 can print the paper's motivating table, and
the same machinery doubles as a correctness check of the GF(2) coding path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "EndPhaseComparison",
    "forwarding_rounds_worst_case",
    "forwarding_rounds_expected_random",
    "xor_rounds",
    "simulate_random_forwarding",
    "recover_missing_token_via_xor",
    "compare_end_phase",
]


def forwarding_rounds_worst_case(k: int) -> int:
    """Deterministic forwarding: the adversary makes A send the missing token last."""
    return max(1, k)


def forwarding_rounds_expected_random(k: int) -> float:
    """Uniformly random forwarding without repetition finds the missing token in ~k/2."""
    return (k + 1) / 2.0


def xor_rounds(_k: int) -> int:
    """One XOR of all tokens always suffices."""
    return 1


def simulate_random_forwarding(k: int, rng: np.random.Generator) -> int:
    """Rounds until a random-without-repetition sender hits the (random) missing index."""
    if k < 1:
        raise ValueError("k must be >= 1")
    missing = int(rng.integers(0, k))
    order = rng.permutation(k)
    for round_index, sent in enumerate(order, start=1):
        if int(sent) == missing:
            return round_index
    raise AssertionError("unreachable: the permutation covers every index")


def recover_missing_token_via_xor(tokens: list[int], known_indices: set[int], xor_of_all: int) -> int:
    """B's decoding step: XOR of everything it knows against the received XOR."""
    acc = xor_of_all
    for index, token in enumerate(tokens):
        if index in known_indices:
            acc ^= token
    return acc


@dataclass(frozen=True)
class EndPhaseComparison:
    """The paper's k-vs-k/2-vs-1 comparison, measured."""

    k: int
    deterministic_forwarding: int
    expected_random_forwarding: float
    measured_random_forwarding: float
    coded: int

    @property
    def coding_advantage(self) -> float:
        """Speedup of the XOR strategy over random forwarding."""
        return self.measured_random_forwarding / self.coded


def compare_end_phase(k: int, trials: int = 200, seed: int = 0) -> EndPhaseComparison:
    """Measure the end-phase scenario over ``trials`` random missing tokens."""
    rng = np.random.default_rng(seed)
    measured = float(np.mean([simulate_random_forwarding(k, rng) for _ in range(trials)]))
    return EndPhaseComparison(
        k=k,
        deterministic_forwarding=forwarding_rounds_worst_case(k),
        expected_random_forwarding=forwarding_rounds_expected_random(k),
        measured_random_forwarding=measured,
        coded=xor_rounds(k),
    )
