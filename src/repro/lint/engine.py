"""Orchestration: discover files, run rules, apply suppressions + baseline.

The pipeline per file is

1. parse (a ``SyntaxError`` becomes a non-suppressible ``REP000``),
2. one shared-visitor walk into a :class:`~repro.lint.visitor.FileIndex`,
3. every applicable registered rule filters the index,
4. ``# repro: allow[...]`` directives drop matching findings (malformed
   directives and unknown rule ids become ``REP001``),
5. the committed baseline drops grandfathered fingerprints.

Whatever survives is a gate failure (exit code 1 from the CLI).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath

from .baseline import Baseline
from .config import LintConfig
from .findings import BAD_SUPPRESSION_ID, SYNTAX_ERROR_ID, Finding
from .rules import RULE_REGISTRY, all_rules, resolve_rule_ids
from .suppress import find_suppression, parse_suppressions
from .visitor import build_index


@dataclass
class LintResult:
    """Outcome of one lint run (post-suppression, post-baseline)."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0


def categorize(path: Path) -> str:
    """``src`` / ``bench`` / ``test`` from the path shape."""
    parts = {part.lower() for part in path.parts}
    if "benchmarks" in parts:
        return "bench"
    if "tests" in parts or path.name.startswith("test_"):
        return "test"
    return "src"


def _excluded(path: Path, config: LintConfig) -> bool:
    try:
        rel = path.resolve().relative_to(config.root.resolve())
    except ValueError:
        rel = path
    posix = PurePosixPath(rel)
    return any(posix.match(pattern) for pattern in config.exclude)


def iter_python_files(paths: list[Path], config: LintConfig) -> list[Path]:
    """Expand the CLI path arguments into a sorted, de-duplicated file list."""
    files: list[Path] = []
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen or _excluded(candidate, config):
                continue
            seen.add(resolved)
            files.append(candidate)
    return files


def active_rules(config: LintConfig):
    """The registered rules this run enables (select minus ignore)."""
    rules = all_rules()
    if config.select:
        selected = resolve_rule_ids(config.select)
        rules = [rule for rule in rules if rule.id in selected]
    if config.ignore:
        ignored = resolve_rule_ids(config.ignore)
        rules = [rule for rule in rules if rule.id not in ignored]
    return rules


def lint_source(
    path: Path,
    source: str,
    config: LintConfig,
    *,
    category: str | None = None,
) -> tuple[list[Finding], list[Finding]]:
    """Lint one file's text; return ``(active, suppressed)`` findings.

    ``category`` overrides path-based classification (the fixture tests
    lint snippets as if they lived in ``src/``).
    """
    category = category or categorize(path)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        line = exc.lineno or 1
        return (
            [
                Finding(
                    path=str(path),
                    line=line,
                    col=(exc.offset or 1) - 1,
                    rule=SYNTAX_ERROR_ID,
                    name="syntax-error",
                    message=f"file does not parse: {exc.msg}",
                )
            ],
            [],
        )
    index = build_index(
        str(path),
        source,
        tree,
        category=category,
        is_kernel_module=path.name in config.kernel_modules,
        is_packed_module=path.name in config.packed_modules,
        in_algorithms="algorithms" in {part.lower() for part in path.parts},
    )
    raw: list[Finding] = []
    for rule in active_rules(config):
        if category not in rule.categories:
            continue
        raw.extend(rule.check(index))

    suppressions, problems = parse_suppressions(source)
    for line, col, message in problems:
        raw.append(
            Finding(
                path=str(path),
                line=line,
                col=col,
                rule=BAD_SUPPRESSION_ID,
                name="bad-suppression",
                message=message,
                line_text=index.line_text(line),
            )
        )
    known_ids = set(RULE_REGISTRY) | {
        rule.name for rule in RULE_REGISTRY.values()
    }
    for suppression in suppressions.values():
        for unknown in sorted(suppression.rules - known_ids):
            raw.append(
                Finding(
                    path=str(path),
                    line=suppression.line,
                    col=0,
                    rule=BAD_SUPPRESSION_ID,
                    name="bad-suppression",
                    message=f"allow[...] names unknown rule {unknown!r}",
                    line_text=index.line_text(suppression.line),
                )
            )

    active: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in raw:
        if finding.rule in (SYNTAX_ERROR_ID, BAD_SUPPRESSION_ID):
            active.append(finding)
            continue
        match = find_suppression(
            suppressions, finding.line, finding.rule, finding.name
        )
        if match is not None:
            match.used = True
            suppressed.append(finding)
        else:
            active.append(finding)
    return sorted(active), sorted(suppressed)


def run_lint(
    paths: list[Path],
    config: LintConfig,
    *,
    baseline_path: Path | None = None,
    write_baseline: bool = False,
    category: str | None = None,
) -> LintResult:
    """Lint ``paths`` end to end, applying the baseline if one is configured."""
    result = LintResult()
    findings: list[Finding] = []
    for path in iter_python_files(paths, config):
        result.files_checked += 1
        try:
            source = path.read_text()
        except OSError as exc:
            findings.append(
                Finding(
                    path=str(path),
                    line=1,
                    col=0,
                    rule=SYNTAX_ERROR_ID,
                    name="unreadable",
                    message=f"cannot read file: {exc}",
                )
            )
            continue
        active, suppressed = lint_source(path, source, config, category=category)
        findings.extend(active)
        result.suppressed.extend(suppressed)

    findings.sort()
    baseline_file = baseline_path or config.baseline
    if baseline_file is not None:
        baseline = Baseline.load(baseline_file)
        if write_baseline:
            baseline.write(findings, config.root)
            result.baselined = findings
            return result
        active, baselined = baseline.split(findings, config.root)
        result.findings = active
        result.baselined = baselined
    else:
        result.findings = findings
    return result
