"""Text and JSON reporters over a :class:`~repro.lint.engine.LintResult`."""

from __future__ import annotations

import json
from collections import Counter

from .engine import LintResult


def render_text(result: LintResult, *, verbose: bool = False) -> str:
    """The human report: one line per finding plus a summary."""
    lines = [
        f"{finding.location()}: {finding.rule}[{finding.name}] {finding.message}"
        for finding in result.findings
    ]
    if verbose:
        lines.extend(
            f"{finding.location()}: baselined {finding.rule}[{finding.name}]"
            for finding in result.baselined
        )
    summary = (
        f"{len(result.findings)} finding(s) in {result.files_checked} file(s)"
        f" ({len(result.suppressed)} suppressed inline,"
        f" {len(result.baselined)} baselined)"
    )
    lines.append(summary)
    return "\n".join(lines)


def to_json(result: LintResult) -> dict:
    """The machine report uploaded as a CI artifact."""
    counts = Counter(finding.rule for finding in result.findings)
    return {
        "version": 1,
        "files_checked": result.files_checked,
        "findings": [finding.to_dict() for finding in result.findings],
        "suppressed": [finding.to_dict() for finding in result.suppressed],
        "baselined": [finding.to_dict() for finding in result.baselined],
        "counts_by_rule": dict(sorted(counts.items())),
        "exit_code": result.exit_code,
    }


def render_json(result: LintResult) -> str:
    return json.dumps(to_json(result), indent=2) + "\n"
