"""Linter configuration, read from ``[tool.repro-lint]`` in pyproject.toml.

All keys are optional; dashes and underscores are interchangeable::

    [tool.repro-lint]
    baseline = "lint-baseline.json"      # relative to pyproject.toml
    select = []                          # empty = every registered rule
    ignore = []                          # ids or slugs to disable
    kernel-modules = ["kernels.py", "coded_kernels.py"]
    packed-modules = ["packed.py", "kernels.py", "coded_kernels.py",
                      "topology.py", "stability.py"]
    exclude = ["**/lint_fixtures/**"]    # glob patterns, posix-relative

``load_config`` walks upward from the first linted path to find the
project root; ``--no-config`` on the CLI skips the file entirely and
runs on built-in defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path

try:
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - py<3.11 fallback
    tomllib = None

#: Modules holding RoundKernel implementations: the per-node-object ban
#: (REP302) and hot-path rules apply here.
DEFAULT_KERNEL_MODULES = ("kernels.py", "coded_kernels.py")

#: Modules whose arrays are packed uint64 words: upcast hazards (REP402)
#: and per-element-loop checks (REP401) apply here.
DEFAULT_PACKED_MODULES = (
    "packed.py",
    "kernels.py",
    "coded_kernels.py",
    "topology.py",
    "stability.py",
)


@dataclass(frozen=True)
class LintConfig:
    root: Path = field(default_factory=Path.cwd)
    baseline: Path | None = None
    select: tuple[str, ...] = ()
    ignore: tuple[str, ...] = ()
    kernel_modules: tuple[str, ...] = DEFAULT_KERNEL_MODULES
    packed_modules: tuple[str, ...] = DEFAULT_PACKED_MODULES
    exclude: tuple[str, ...] = ()


def find_pyproject(start: Path) -> Path | None:
    """The nearest pyproject.toml at or above ``start``."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for candidate in (current, *current.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def _str_tuple(value) -> tuple[str, ...]:
    if isinstance(value, str):
        return (value,)
    if isinstance(value, (list, tuple)):
        return tuple(str(v) for v in value)
    return ()


def load_config(start: Path | None = None, *, use_pyproject: bool = True) -> LintConfig:
    """Build the effective configuration for a run rooted near ``start``."""
    start = start if start is not None else Path.cwd()
    config = LintConfig(root=start.resolve() if start.is_dir() else start.resolve().parent)
    if not use_pyproject or tomllib is None:
        return config
    pyproject = find_pyproject(start)
    if pyproject is None:
        return config
    try:
        data = tomllib.loads(pyproject.read_text())
    except (OSError, tomllib.TOMLDecodeError):
        return config
    section = data.get("tool", {}).get("repro-lint")
    if not isinstance(section, dict):
        return replace(config, root=pyproject.parent)
    normalized = {key.replace("-", "_"): value for key, value in section.items()}
    baseline = normalized.get("baseline")
    return LintConfig(
        root=pyproject.parent,
        baseline=(pyproject.parent / str(baseline)) if baseline else None,
        select=_str_tuple(normalized.get("select")),
        ignore=_str_tuple(normalized.get("ignore")),
        kernel_modules=_str_tuple(normalized.get("kernel_modules")) or DEFAULT_KERNEL_MODULES,
        packed_modules=_str_tuple(normalized.get("packed_modules")) or DEFAULT_PACKED_MODULES,
        exclude=_str_tuple(normalized.get("exclude")),
    )
