"""The rule protocol and registry.

A rule is an object with ``id`` (``"REP102"``), ``name`` (a kebab slug),
``description``, the file ``categories`` it applies to, and a
``check(index)`` generator yielding :class:`~repro.lint.findings.Finding`
records from a prebuilt :class:`~repro.lint.visitor.FileIndex`.  Register
with the :func:`register_rule` class decorator; the engine instantiates
one singleton per rule class.

Rule id ranges mirror the contract families:

* ``REP1xx`` — determinism (seeded RNG streams only)
* ``REP2xx`` — picklability (sweep-worker factory contract)
* ``REP3xx`` — engine matrix / GF(2) representation contracts
* ``REP4xx`` — hot-path hygiene

``REP000`` (syntax error) and ``REP001`` (bad suppression) are engine
pseudo-rules, deliberately outside the registry: they can be neither
disabled nor suppressed.
"""

from __future__ import annotations

import ast
from typing import Iterator, Protocol, runtime_checkable

from ..findings import Finding
from ..visitor import FileIndex

#: File categories a rule may opt into.
CATEGORIES = ("src", "bench", "test")


@runtime_checkable
class Rule(Protocol):
    id: str
    name: str
    description: str
    categories: frozenset[str]

    def check(self, index: FileIndex) -> Iterator[Finding]: ...


class BaseRule:
    """Shared helpers; concrete rules subclass and set the metadata."""

    id: str = ""
    name: str = ""
    description: str = ""
    categories: frozenset[str] = frozenset({"src"})

    def finding(self, index: FileIndex, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=index.path,
            line=line,
            col=col,
            rule=self.id,
            name=self.name,
            message=message,
            line_text=index.line_text(line),
        )

    def check(self, index: FileIndex) -> Iterator[Finding]:
        raise NotImplementedError


RULE_REGISTRY: dict[str, BaseRule] = {}


def register_rule(cls: type[BaseRule]) -> type[BaseRule]:
    """Class decorator: instantiate and register a rule singleton."""
    rule = cls()
    if not rule.id or not rule.name:
        raise ValueError(f"rule {cls.__name__} must set id and name")
    if rule.id in RULE_REGISTRY:
        raise ValueError(f"rule id {rule.id} registered twice")
    RULE_REGISTRY[rule.id] = rule
    return cls


def all_rules() -> list[BaseRule]:
    """Every registered rule, in id order."""
    return [RULE_REGISTRY[rule_id] for rule_id in sorted(RULE_REGISTRY)]


def resolve_rule_ids(tokens: tuple[str, ...]) -> frozenset[str]:
    """Map a mix of ids and slugs to the matching registered ids."""
    ids = set()
    by_name = {rule.name: rule.id for rule in RULE_REGISTRY.values()}
    for token in tokens:
        if token in RULE_REGISTRY:
            ids.add(token)
        elif token in by_name:
            ids.add(by_name[token])
    return frozenset(ids)


# Populate the registry.  Imported last so the submodules can import the
# decorator from this package during initialisation.
from . import determinism as _determinism  # noqa: E402,F401
from . import engine_contracts as _engine_contracts  # noqa: E402,F401
from . import hotpath as _hotpath  # noqa: E402,F401
from . import picklability as _picklability  # noqa: E402,F401
