"""REP2xx: factories that cross process boundaries must pickle.

``scenario_for`` / ``register_scenario`` factories and ``SweepTask``
points ship into ``ProcessPoolExecutor`` workers (and, per ROADMAP item
2, distributed sweep shards next).  Pickle serialises module-level
callables by qualified name — lambdas and closures fail at submit time,
but only once a sweep actually fans out, long after the registration
site.  This rule rejects them where they are written.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..visitor import FileIndex
from . import BaseRule, register_rule

#: Callables whose arguments become cross-process factories.
FACTORY_SINKS = frozenset({"register_scenario", "Scenario", "SweepTask"})

#: Functions whose *return value* is the cross-process factory.
FACTORY_RETURNERS = frozenset({"scenario_for", "adversary_for"})


def _is_factory_returner(name: str) -> bool:
    return name in FACTORY_RETURNERS or name.endswith("_factory")


@register_rule
class UnpicklableFactoryRule(BaseRule):
    id = "REP201"
    name = "unpicklable-factory"
    description = (
        "scenario/sweep factories must be module-level callables — lambdas "
        "and closures cannot pickle into pool workers"
    )
    categories = frozenset({"src", "bench"})

    def check(self, index: FileIndex) -> Iterator[Finding]:
        nested = index.nested_function_names - index.module_level_names
        for call in index.calls:
            resolved = call.resolved
            if not resolved or resolved.split(".")[-1] not in FACTORY_SINKS:
                continue
            sink = resolved.split(".")[-1]
            values = list(call.node.args) + [kw.value for kw in call.node.keywords]
            for value in values:
                for child in ast.walk(value):
                    if isinstance(child, ast.Lambda):
                        yield self.finding(
                            index,
                            child,
                            f"lambda passed into {sink}(...): it cannot "
                            "pickle into ProcessPoolExecutor workers — move "
                            "it to a module-level def (functools.partial "
                            "over one is fine)",
                        )
                if isinstance(value, ast.Name) and value.id in nested:
                    yield self.finding(
                        index,
                        value,
                        f"`{value.id}` is defined in a nested scope in this "
                        f"module; factories handed to {sink}(...) must be "
                        "module-level so they pickle by qualified name",
                    )
        for ret in index.returns:
            if not ret.func_names:
                continue
            owner = next(
                (name for name in reversed(ret.func_names) if name != "<lambda>"),
                None,
            )
            if owner is None or not _is_factory_returner(owner):
                continue
            value = ret.node.value
            if isinstance(value, ast.Lambda):
                yield self.finding(
                    index,
                    value,
                    f"{owner}() returns a lambda; the factory contract "
                    "requires a picklable module-level callable (use "
                    "functools.partial over a module-level def)",
                )
            elif isinstance(value, ast.Name) and value.id in (
                index.nested_function_names
            ):
                yield self.finding(
                    index,
                    value,
                    f"{owner}() returns nested function `{value.id}`; "
                    "closures cannot pickle into sweep workers — hoist it "
                    "to module level",
                )
