"""REP4xx: hot-path hygiene in the packed/kernel modules.

The kernel engine's entire advantage is that a round is a handful of
whole-network array operations.  Three structural regressions erode it
silently: numpy calls re-entering Python ``for`` loops (per-element
dispatch pays numpy overhead n times), float literals or true division
leaking ``float64`` into ``uint64`` word arrays (silent upcast, then a
cast back that may truncate), and invariants guarded by ``assert``
(stripped wholesale under ``python -O``, so the "impossible" state ships
instead of raising).
"""

from __future__ import annotations

from typing import Iterator

from ..findings import Finding
from ..visitor import FileIndex
from . import BaseRule, register_rule

#: Functions where per-element Python is accepted: materialisation back
#: into node objects and one-time setup are off the hot path.
LOOP_EXEMPT_FUNCTIONS = frozenset({"to_nodes", "__init__"})

#: Loop targets that mark a per-*round* loop.  One Python iteration per
#: round with whole-network array ops inside is the engine's design; the
#: rule hunts per-element (n- or k-sized) loops.
ROUND_LOOP_TARGETS = ("round", "iteration", "epoch")


def _is_round_loop(targets: tuple[str, ...]) -> bool:
    return any(
        marker in target for target in targets for marker in ROUND_LOOP_TARGETS
    )


@register_rule
class NumpyInLoopRule(BaseRule):
    id = "REP401"
    name = "numpy-in-loop"
    description = (
        "per-element numpy calls inside Python for-loops in hot-path "
        "modules; batch across the loop axis"
    )
    categories = frozenset({"src"})

    def check(self, index: FileIndex) -> Iterator[Finding]:
        if not (index.is_kernel_module or index.is_packed_module):
            return
        for call in index.calls:
            resolved = call.resolved
            if not resolved or not resolved.startswith("numpy."):
                continue
            element_loops = [
                (kind, targets)
                for kind, targets in call.loops
                if kind in ("range", "enumerate") and not _is_round_loop(targets)
            ]
            if not element_loops:
                continue
            if LOOP_EXEMPT_FUNCTIONS & set(call.func_names):
                continue
            yield self.finding(
                index,
                call.node,
                f"`{resolved}` inside a Python element loop: numpy dispatch "
                "is paid once per iteration — lift the operation across the "
                "loop axis (or justify with an allow comment)",
            )


@register_rule
class Uint64UpcastRule(BaseRule):
    id = "REP402"
    name = "uint64-upcast"
    description = (
        "true division / float literals in packed modules silently upcast "
        "uint64 words to float64"
    )
    categories = frozenset({"src"})

    def check(self, index: FileIndex) -> Iterator[Finding]:
        if not index.is_packed_module:
            return
        for record in index.binops:
            if record.kind == "division":
                yield self.finding(
                    index,
                    record.node,
                    "true division in a packed module produces float64 — "
                    "uint64 word arrays lose exactness above 2**53; use // "
                    "(or an explicit float() if a ratio is intended)",
                )
            else:
                yield self.finding(
                    index,
                    record.node,
                    "float literal mixed into arithmetic in a packed "
                    "module: a uint64 operand would be upcast to float64 "
                    "silently — make the intended dtype explicit",
                )


@register_rule
class LoadBearingAssertRule(BaseRule):
    id = "REP403"
    name = "load-bearing-assert"
    description = (
        "assert statements vanish under `python -O`; raise an explicit "
        "error for real invariants"
    )
    categories = frozenset({"src"})

    def check(self, index: FileIndex) -> Iterator[Finding]:
        for record in index.asserts:
            yield self.finding(
                index,
                record.node,
                "assert is stripped under python -O, so this invariant "
                "silently stops being checked; raise "
                "RuntimeError/ValueError explicitly (tests may keep "
                "asserts — this rule only covers src/)",
            )
