"""REP3xx: the engine matrix and GF(2) representation contracts.

The three execution engines stay byte-identical only while kernels hold
up their end: a registered kernel declares what it ``supports()`` and can
materialise per-node state back with ``to_nodes()``; kernel modules keep
per-node message/subspace objects *off* the hot path (whole-network state
lives in packed arrays, scalar objects exist only inside ``to_nodes``);
and per-node protocol code in ``algorithms/`` never reaches for the
whole-network :class:`GF2BasisBatch` (ROADMAP "GF(2) representation
rule": int masks per node, stacked batches per network).
"""

from __future__ import annotations

from typing import Iterator

from ..findings import Finding
from ..visitor import ClassRecord, FileIndex
from . import BaseRule, register_rule

#: Methods every registered kernel must provide (directly or via a base
#: class defined in the same module — imported bases are opaque to the
#: static pass, so cross-module kernels must define these themselves).
REQUIRED_KERNEL_METHODS = ("supports", "to_nodes")

#: Scalar per-node classes that must not be instantiated on kernel hot
#: paths (only inside ``to_nodes`` materialisation).
PER_NODE_CLASSES = frozenset(
    {"Subspace", "GF2Basis", "CodedMessage", "Message", "GenerationState"}
)


def _inherited_members(record: ClassRecord, by_name: dict[str, ClassRecord]) -> set[str]:
    """Members reachable through same-module base classes."""
    members: set[str] = set()
    seen: set[str] = set()
    stack = [record.name]
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        current = by_name.get(name)
        if current is None:
            continue
        members |= current.members
        stack.extend(base.split(".")[-1] for base in current.base_names)
    return members


@register_rule
class KernelContractRule(BaseRule):
    id = "REP301"
    name = "kernel-contract"
    description = (
        "classes registered with register_kernel must define supports() "
        "and to_nodes()"
    )
    categories = frozenset({"src"})

    def check(self, index: FileIndex) -> Iterator[Finding]:
        by_name = {record.name: record for record in index.classes}
        for record in index.classes:
            registered = any(
                deco.split(".")[-1] == "register_kernel" for deco in record.decorators
            )
            if not registered:
                continue
            members = _inherited_members(record, by_name)
            for method in REQUIRED_KERNEL_METHODS:
                if method not in members:
                    yield self.finding(
                        index,
                        record.node,
                        f"kernel class {record.name} is registered via "
                        f"register_kernel but defines no {method}() (in its "
                        "body or a same-module base); the engine-selection "
                        "and materialisation contract requires it",
                    )


@register_rule
class PerNodeObjectRule(BaseRule):
    id = "REP302"
    name = "per-node-object"
    description = (
        "kernel modules must not build per-node message/Subspace objects "
        "outside to_nodes materialisation"
    )
    categories = frozenset({"src"})

    def check(self, index: FileIndex) -> Iterator[Finding]:
        if not index.is_kernel_module:
            return
        for call in index.calls:
            resolved = call.resolved
            if not resolved:
                continue
            touched = PER_NODE_CLASSES & set(resolved.split("."))
            if not touched:
                continue
            if any(name.startswith("to_nodes") for name in call.func_names):
                continue
            cls = sorted(touched)[0]
            yield self.finding(
                index,
                call.node,
                f"per-node `{cls}` built outside to_nodes() in a kernel "
                "module: whole-network rounds must stay on packed arrays "
                "(GF2BasisBatch / uint64 masks); scalar objects are for "
                "final materialisation only",
            )


@register_rule
class BatchLeakRule(BaseRule):
    id = "REP303"
    name = "batch-in-algorithms"
    description = (
        "per-node protocol code in algorithms/ must not import the "
        "whole-network GF2BasisBatch"
    )
    categories = frozenset({"src"})

    def check(self, index: FileIndex) -> Iterator[Finding]:
        if not index.in_algorithms:
            return
        for imp in index.imports:
            module_tail = imp.module.lstrip(".").split(".")
            from_packed = module_tail[-2:] == ["gf", "packed"] or module_tail[-1:] == [
                "packed"
            ]
            if "GF2BasisBatch" in imp.names or (from_packed and "gf" in module_tail):
                yield self.finding(
                    index,
                    imp.node,
                    "algorithms/ is per-node, message-at-a-time code and "
                    "works in int-mask form; GF2BasisBatch is the "
                    "whole-network representation — convert at the kernel "
                    "boundary with masks_to_packed/packed_to_masks instead",
                )
        for call in index.calls:
            resolved = call.resolved
            if resolved and "GF2BasisBatch" in resolved.split("."):
                yield self.finding(
                    index,
                    call.node,
                    "GF2BasisBatch used inside algorithms/: per-node "
                    "protocol logic must stay in int-mask form (the GF(2) "
                    "representation rule)",
                )
