"""REP1xx: every random draw comes from an explicit, seeded Generator.

The repo's reproducibility story — per-seed determinism, serial ≡
parallel sweeps, byte-identical engines — rests on all randomness
flowing through ``np.random.Generator`` objects constructed from an
explicit seed (and forked with ``rng.spawn``).  Anything that reads
hidden global state (stdlib ``random``, module-level ``np.random.*``
draws, ``np.random.seed``) or ambient entropy (``os.urandom``, wall
clocks, ``uuid4``) silently breaks that contract.
"""

from __future__ import annotations

from typing import Iterator

from ..findings import Finding
from ..visitor import FileIndex
from . import BaseRule, register_rule

#: Module-level numpy.random draw functions (all share one hidden
#: global RandomState).
NP_GLOBAL_SAMPLERS = frozenset(
    {
        "random",
        "rand",
        "randn",
        "randint",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "bytes",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "standard_normal",
        "exponential",
        "poisson",
        "binomial",
        "geometric",
        "beta",
        "gamma",
    }
)

#: Wall-clock and entropy calls with no place in deterministic src code.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register_rule
class StdlibRandomRule(BaseRule):
    id = "REP101"
    name = "stdlib-random"
    description = (
        "stdlib `random` reads hidden global state; draw from the run's "
        "seeded np.random.Generator instead"
    )
    categories = frozenset({"src", "bench"})

    def check(self, index: FileIndex) -> Iterator[Finding]:
        for imp in index.imports:
            module = imp.module
            if module.startswith("."):
                continue  # a package-relative `.random` module is not stdlib
            if module == "random" or module.startswith("random."):
                yield self.finding(
                    index,
                    imp.node,
                    "import of stdlib `random`: draws bypass the seeded "
                    "np.random.Generator streams that make runs reproducible",
                )
        for call in index.calls:
            resolved = call.resolved
            if resolved and resolved.startswith("random."):
                yield self.finding(
                    index,
                    call.node,
                    f"`{resolved}` uses the stdlib global RNG; thread the "
                    "run's np.random.Generator here instead",
                )


@register_rule
class SeedlessRngRule(BaseRule):
    id = "REP102"
    name = "seedless-rng"
    description = (
        "numpy RNGs must be constructed from an explicit seed; global "
        "np.random state is forbidden"
    )
    categories = frozenset({"src", "bench"})

    def check(self, index: FileIndex) -> Iterator[Finding]:
        for call in index.calls:
            resolved = call.resolved
            if not resolved or not resolved.startswith("numpy.random."):
                continue
            tail = resolved[len("numpy.random.") :]
            node = call.node
            seedless = not node.args and not node.keywords
            if tail == "default_rng" and seedless:
                yield self.finding(
                    index,
                    node,
                    "seedless np.random.default_rng(): the stream is drawn "
                    "from OS entropy, so the run cannot be reproduced — pass "
                    "a seed (or fork with rng.spawn())",
                )
            elif tail == "seed":
                yield self.finding(
                    index,
                    node,
                    "np.random.seed mutates the hidden global RandomState; "
                    "construct a local default_rng(seed) instead",
                )
            elif tail == "RandomState" and seedless:
                yield self.finding(
                    index,
                    node,
                    "seedless np.random.RandomState(): seed it, or prefer "
                    "default_rng(seed)",
                )
            elif tail in NP_GLOBAL_SAMPLERS:
                yield self.finding(
                    index,
                    node,
                    f"module-level np.random.{tail} draws from the hidden "
                    "global stream shared across the whole process; use a "
                    "seeded Generator",
                )


@register_rule
class WallClockRule(BaseRule):
    id = "REP103"
    name = "wall-clock"
    description = (
        "wall clocks and ambient entropy are forbidden in src/ (benchmarks "
        "may time themselves)"
    )
    categories = frozenset({"src"})

    def check(self, index: FileIndex) -> Iterator[Finding]:
        for imp in index.imports:
            module = imp.module
            if module == "secrets" or module.startswith("secrets."):
                yield self.finding(
                    index,
                    imp.node,
                    "`secrets` is an entropy source; simulation code must be "
                    "seed-deterministic",
                )
        for call in index.calls:
            resolved = call.resolved
            if resolved in WALL_CLOCK_CALLS:
                yield self.finding(
                    index,
                    call.node,
                    f"`{resolved}` makes behaviour depend on the wall clock "
                    "or OS entropy; results stop being a pure function of "
                    "(config, seed) — keep timing in benchmarks/",
                )
