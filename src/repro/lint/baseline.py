"""The committed baseline: grandfathered findings that do not fail the gate.

A baseline entry identifies a finding by a *content* fingerprint —
``sha1(rule | relative path | stripped source line | occurrence)`` — not
by line number, so unrelated edits that shift code do not invalidate it.
The occurrence counter disambiguates identical lines in one file (the
first ``assert x`` and the second get distinct fingerprints).

The file is JSON so diffs review cleanly::

    {"version": 1, "entries": [
      {"rule": "REP403", "path": "src/repro/foo.py",
       "fingerprint": "ab12...", "reason": "why this one is allowed"}
    ]}

``python -m repro.lint --write-baseline`` regenerates entries from the
current findings (preserving reasons for fingerprints that already had
one); hand-editing reasons afterwards is expected.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path, PurePosixPath

from .findings import Finding

BASELINE_VERSION = 1
DEFAULT_REASON = "grandfathered"


def _relative(path: str, root: Path) -> str:
    try:
        rel = Path(path).resolve().relative_to(root.resolve())
    except ValueError:
        rel = Path(path)
    return str(PurePosixPath(rel))


def fingerprint_findings(findings: list[Finding], root: Path) -> list[str]:
    """Content fingerprints for ``findings``, in the given order."""
    occurrences: dict[tuple[str, str, str], int] = {}
    prints: list[str] = []
    for finding in findings:
        rel = _relative(finding.path, root)
        key = (finding.rule, rel, finding.line_text.strip())
        occ = occurrences.get(key, 0)
        occurrences[key] = occ + 1
        digest = hashlib.sha1(
            f"{finding.rule}|{rel}|{finding.line_text.strip()}|{occ}".encode()
        ).hexdigest()[:16]
        prints.append(digest)
    return prints


@dataclass
class Baseline:
    path: Path
    #: fingerprint -> reason
    entries: dict[str, str]
    #: Extra metadata kept verbatim per fingerprint for the file on disk.
    records: dict[str, dict]

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        entries: dict[str, str] = {}
        records: dict[str, dict] = {}
        if path.is_file():
            try:
                data = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                raise ValueError(f"unreadable baseline {path}: {exc}") from exc
            for record in data.get("entries", []):
                fp = record.get("fingerprint")
                if isinstance(fp, str):
                    entries[fp] = str(record.get("reason", DEFAULT_REASON))
                    records[fp] = dict(record)
        return cls(path=path, entries=entries, records=records)

    def split(
        self, findings: list[Finding], root: Path
    ) -> tuple[list[Finding], list[Finding]]:
        """Partition findings into ``(active, baselined)``."""
        prints = fingerprint_findings(findings, root)
        active: list[Finding] = []
        baselined: list[Finding] = []
        for finding, fp in zip(findings, prints):
            (baselined if fp in self.entries else active).append(finding)
        return active, baselined

    def write(self, findings: list[Finding], root: Path) -> int:
        """Replace the baseline with the current findings; return the count.

        Reasons already recorded for a surviving fingerprint are kept, so
        regenerating after unrelated churn does not erase justifications.
        """
        prints = fingerprint_findings(findings, root)
        entries = []
        for finding, fp in zip(findings, prints):
            entries.append(
                {
                    "rule": finding.rule,
                    "name": finding.name,
                    "path": _relative(finding.path, root),
                    "fingerprint": fp,
                    "reason": self.entries.get(fp, DEFAULT_REASON),
                }
            )
        entries.sort(key=lambda e: (e["path"], e["rule"], e["fingerprint"]))
        payload = {"version": BASELINE_VERSION, "entries": entries}
        self.path.write_text(json.dumps(payload, indent=2) + "\n")
        self.entries = {e["fingerprint"]: e["reason"] for e in entries}
        self.records = {e["fingerprint"]: dict(e) for e in entries}
        return len(entries)
