"""repro.lint — the AST contract linter for this repository.

Runtime equivalence tests catch engine-matrix violations one seed at a
time, after the fact; this package rejects the *structural* bug classes
at CI time instead: seedless RNGs and hidden global random state
(REP1xx), unpicklable sweep factories (REP2xx), kernel-registration and
GF(2)-representation breaches (REP3xx), and hot-path hygiene — numpy
re-entering Python loops, uint64→float64 upcasts, load-bearing asserts
(REP4xx).

Usage::

    python -m repro.lint src benchmarks
    python -m repro.lint --list-rules
    python -m repro.lint src --format json --output lint-report.json

Findings are silenced either per line with a mandatory reason::

    rng = np.random.default_rng()  # repro: allow[REP102] demo only

or grandfathered in the committed baseline (``--write-baseline``).  See
``src/repro/lint/README.md`` and the ROADMAP "Contracts" section for the
rule catalogue; configuration lives in ``[tool.repro-lint]`` in
pyproject.toml.
"""

from __future__ import annotations

from .baseline import Baseline, fingerprint_findings
from .config import LintConfig, load_config
from .engine import LintResult, categorize, lint_source, run_lint
from .findings import Finding
from .report import render_json, render_text, to_json
from .rules import RULE_REGISTRY, BaseRule, Rule, all_rules, register_rule
from .suppress import parse_suppressions
from .visitor import FileIndex, build_index

__all__ = [
    "Baseline",
    "BaseRule",
    "FileIndex",
    "Finding",
    "LintConfig",
    "LintResult",
    "RULE_REGISTRY",
    "Rule",
    "all_rules",
    "build_index",
    "categorize",
    "fingerprint_findings",
    "lint_source",
    "load_config",
    "parse_suppressions",
    "register_rule",
    "render_json",
    "render_text",
    "run_lint",
    "to_json",
]
