"""The finding record every rule emits and every reporter consumes."""

from __future__ import annotations

from dataclasses import dataclass

#: Pseudo-rule id for files the linter cannot parse.  Not a registered
#: rule: it cannot be selected, suppressed, or baselined away.
SYNTAX_ERROR_ID = "REP000"

#: Pseudo-rule id for malformed or unknown suppression directives
#: (emitted by the engine, not by a registered rule).
BAD_SUPPRESSION_ID = "REP001"


@dataclass(frozen=True, order=True)
class Finding:
    """One contract violation at one source location.

    Ordering is lexicographic ``(path, line, col, rule)`` so reports and
    baseline fingerprint occurrence counters are stable across runs.
    """

    path: str
    line: int
    col: int
    rule: str
    name: str
    message: str
    #: The stripped source line, used for line-number-independent baseline
    #: fingerprints (kept out of the human report).
    line_text: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "name": self.name,
            "message": self.message,
        }
