"""Per-line suppressions: ``# repro: allow[rule-id] reason``.

A suppression silences a finding on the *same* physical line or on the
line directly below the comment (so long lines can carry the directive
above themselves).  The reason is mandatory — an allow without one is
itself reported (``REP001``), because the whole point of the directive is
to record *why* a contract is deliberately waived.  Multiple ids separate
with commas: ``# repro: allow[REP401, REP402] per-insert loop is the
algorithm``.  Rules may be named by id (``REP403``) or slug
(``load-bearing-assert``).

Directives are parsed from real COMMENT tokens (via :mod:`tokenize`), so
the syntax may safely appear inside strings and docstrings — e.g. in this
docstring, or in the linter's own documentation — without being treated
as a directive.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]\s*(.*)$")
DIRECTIVE_RE = re.compile(r"#\s*repro\s*:")


@dataclass
class Suppression:
    line: int
    rules: frozenset[str]
    reason: str
    used: bool = field(default=False, compare=False)

    def matches(self, rule_id: str, rule_name: str) -> bool:
        return rule_id in self.rules or rule_name in self.rules


def parse_suppressions(
    source: str,
) -> tuple[dict[int, Suppression], list[tuple[int, int, str]]]:
    """Extract suppressions and directive problems from ``source``.

    Returns ``(suppressions_by_line, problems)`` where each problem is a
    ``(line, col, message)`` triple for a malformed directive.
    """
    suppressions: dict[int, Suppression] = {}
    problems: list[tuple[int, int, str]] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            tok for tok in tokens if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return suppressions, problems
    for tok in comments:
        text = tok.string
        if not DIRECTIVE_RE.search(text):
            continue
        line, col = tok.start
        match = ALLOW_RE.search(text)
        if match is None:
            problems.append(
                (line, col, "unrecognised directive; expected '# repro: allow[rule-id] reason'")
            )
            continue
        ids = frozenset(part.strip() for part in match.group(1).split(",") if part.strip())
        reason = match.group(2).strip()
        if not ids:
            problems.append((line, col, "allow[] names no rule ids"))
        elif not reason:
            problems.append(
                (line, col, "suppression without a reason; write '# repro: allow[rule-id] why'")
            )
        else:
            suppressions[line] = Suppression(line, ids, reason)
    return suppressions, problems


def find_suppression(
    suppressions: dict[int, Suppression], line: int, rule_id: str, rule_name: str
) -> Suppression | None:
    """The suppression covering ``line`` for this rule, if any."""
    for candidate_line in (line, line - 1):
        suppression = suppressions.get(candidate_line)
        if suppression is not None and suppression.matches(rule_id, rule_name):
            return suppression
    return None
