"""CLI entry point: ``python -m repro.lint [paths...]``.

Exit codes: 0 = clean (possibly with suppressed/baselined findings),
1 = at least one active finding (including syntax errors and malformed
suppressions), 2 = usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .config import LintConfig, load_config
from .engine import run_lint
from .report import render_json, render_text
from .rules import all_rules


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based contract linter for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "benchmarks"],
        help="files or directories to lint (default: src benchmarks)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="console report format",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        metavar="FILE",
        help="also write the JSON report to FILE (the CI artifact)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="baseline file (overrides [tool.repro-lint] baseline)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="grandfather all current findings into the baseline and exit 0",
    )
    parser.add_argument(
        "--select",
        default="",
        metavar="IDS",
        help="comma-separated rule ids/slugs to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default="",
        metavar="IDS",
        help="comma-separated rule ids/slugs to skip",
    )
    parser.add_argument(
        "--category",
        choices=("auto", "src", "bench", "test"),
        default="auto",
        help="force the file category instead of inferring it from paths",
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="ignore [tool.repro-lint] in pyproject.toml",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="also list baselined findings"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    return parser


def _split_ids(raw: str) -> tuple[str, ...]:
    return tuple(token.strip() for token in raw.split(",") if token.strip())


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            categories = ",".join(sorted(rule.categories))
            print(f"{rule.id}  {rule.name:<22} [{categories}]  {rule.description}")
        return 0

    paths = [Path(p) for p in args.paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    start = paths[0] if paths else Path.cwd()
    config = load_config(start, use_pyproject=not args.no_config)
    if args.select or args.ignore:
        from dataclasses import replace

        config = replace(
            config,
            select=_split_ids(args.select) or config.select,
            ignore=_split_ids(args.ignore) or config.ignore,
        )
    if args.write_baseline and args.baseline is None and config.baseline is None:
        print(
            "error: --write-baseline needs --baseline or a configured "
            "[tool.repro-lint] baseline",
            file=sys.stderr,
        )
        return 2

    result = run_lint(
        paths,
        config,
        baseline_path=args.baseline,
        write_baseline=args.write_baseline,
        category=None if args.category == "auto" else args.category,
    )

    if args.write_baseline:
        target = args.baseline or config.baseline
        print(f"baseline written: {len(result.baselined)} finding(s) -> {target}")
        return 0

    if args.output is not None:
        args.output.write_text(render_json(result))
    if args.format == "json":
        print(render_json(result), end="")
    else:
        print(render_text(result, verbose=args.verbose))
    return result.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
