"""The shared AST pass: one walk per file, typed records for every rule.

Rules never walk the tree themselves.  :func:`build_index` runs a single
:class:`ast.NodeVisitor` over the module and collects typed records —
imports with their resolved targets, calls with the full scope/loop
context, class bodies with decorators and members, asserts, returns,
binary-operation hazards — into a :class:`FileIndex`.  A rule is then a
cheap filter over those records, which keeps the per-file cost one walk
no matter how many rules are enabled and gives every rule the same
name-resolution semantics.

Name resolution is intentionally static and module-local: ``import numpy
as np`` makes ``np.random.default_rng`` resolve to
``numpy.random.default_rng``; ``from ..gf import GF2Basis`` makes
``GF2Basis.from_rows`` resolve to ``..gf.GF2Basis.from_rows`` (relative
dots preserved).  Rules therefore match on resolved dotted components,
not on surface spelling.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field


def dotted_name(node: ast.AST) -> str | None:
    """``"a.b.c"`` for a pure Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass(frozen=True)
class ImportRecord:
    node: ast.stmt
    #: Imported module, relative dots preserved (``"..gf"``, ``"random"``).
    module: str
    #: Names pulled out by a from-import (empty for plain ``import``).
    names: tuple[str, ...]


@dataclass(frozen=True)
class CallRecord:
    node: ast.Call
    #: Dotted callable with import aliases resolved, or ``None`` when the
    #: callee is not a plain Name/Attribute chain (e.g. ``fns[i]()``).
    resolved: str | None
    #: Enclosing function names, outermost first (``"<lambda>"`` frames
    #: included).  Empty at module level.
    func_names: tuple[str, ...]
    #: Enclosing class names, outermost first.
    class_names: tuple[str, ...]
    #: Enclosing loops, outermost first: ``(kind, target_names)`` where
    #: kind is ``"range"`` / ``"enumerate"`` for ``for`` loops over those
    #: builtins, ``"other"`` for other ``for`` loops, ``"while"`` for
    #: while loops (whose target names are empty).
    loops: tuple[tuple[str, tuple[str, ...]], ...]


@dataclass(frozen=True)
class AssertRecord:
    node: ast.Assert
    func_names: tuple[str, ...]


@dataclass(frozen=True)
class ReturnRecord:
    node: ast.Return
    func_names: tuple[str, ...]


@dataclass(frozen=True)
class ClassRecord:
    node: ast.ClassDef
    name: str
    #: Base-class expressions as written (dotted strings).
    base_names: tuple[str, ...]
    #: Resolved decorator targets (the callee for ``@deco(...)`` forms).
    decorators: tuple[str, ...]
    #: Method and attribute names bound directly in the class body.
    members: frozenset[str]


@dataclass(frozen=True)
class FunctionRecord:
    node: ast.AST
    name: str
    #: Enclosing function names — non-empty means a nested def (closure).
    func_names: tuple[str, ...]
    class_names: tuple[str, ...]


@dataclass(frozen=True)
class BinOpRecord:
    node: ast.BinOp
    #: ``"division"`` (true division on non-constant operands) or
    #: ``"float-literal"`` (float constant mixed into arithmetic).
    kind: str
    func_names: tuple[str, ...]


@dataclass
class FileIndex:
    """Everything the rules need to know about one source file."""

    path: str
    #: ``"src"`` | ``"bench"`` | ``"test"`` — decides which rules apply.
    category: str
    #: Basename matches the configured kernel-module list.
    is_kernel_module: bool = False
    #: Basename matches the configured packed-module list.
    is_packed_module: bool = False
    #: File lives under an ``algorithms`` package directory.
    in_algorithms: bool = False

    source: str = ""
    lines: list[str] = field(default_factory=list)

    #: ``import x as y`` bindings: bound name -> module dotted path.
    aliases: dict[str, str] = field(default_factory=dict)
    #: ``from m import x as y`` bindings: bound name -> ``m.x``.
    from_names: dict[str, str] = field(default_factory=dict)

    imports: list[ImportRecord] = field(default_factory=list)
    calls: list[CallRecord] = field(default_factory=list)
    asserts: list[AssertRecord] = field(default_factory=list)
    returns: list[ReturnRecord] = field(default_factory=list)
    classes: list[ClassRecord] = field(default_factory=list)
    functions: list[FunctionRecord] = field(default_factory=list)
    binops: list[BinOpRecord] = field(default_factory=list)

    def resolve_node(self, node: ast.AST) -> str | None:
        """Resolve a Name/Attribute chain through this file's imports."""
        dotted = dotted_name(node)
        if dotted is None:
            return None
        root, _, rest = dotted.partition(".")
        base = self.from_names.get(root) or self.aliases.get(root) or root
        return f"{base}.{rest}" if rest else base

    @property
    def nested_function_names(self) -> frozenset[str]:
        """Names of functions defined inside another function (closures)."""
        return frozenset(f.name for f in self.functions if f.func_names)

    @property
    def module_level_names(self) -> frozenset[str]:
        """Names bound at module scope (defs, classes, imports)."""
        defs = {
            f.name
            for f in self.functions
            if not f.func_names and not f.class_names
        }
        classes = {c.name for c in self.classes}
        return frozenset(defs | classes | set(self.aliases) | set(self.from_names))

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class _IndexBuilder(ast.NodeVisitor):
    def __init__(self, index: FileIndex):
        self.index = index
        self._funcs: list[str] = []
        self._classes: list[str] = []
        self._loops: list[tuple[str, tuple[str, ...]]] = []

    # -- imports -------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname:
                self.index.aliases[alias.asname] = alias.name
            else:
                root = alias.name.split(".")[0]
                self.index.aliases[root] = root
            self.index.imports.append(ImportRecord(node, alias.name, ()))

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = "." * node.level + (node.module or "")
        names: list[str] = []
        for alias in node.names:
            if alias.name == "*":
                continue
            bound = alias.asname or alias.name
            prefix = f"{module}." if module else ""
            self.index.from_names[bound] = f"{prefix}{alias.name}"
            names.append(alias.name)
        self.index.imports.append(ImportRecord(node, module, tuple(names)))

    # -- scopes --------------------------------------------------------
    def _visit_function(self, node) -> None:
        self.index.functions.append(
            FunctionRecord(node, node.name, tuple(self._funcs), tuple(self._classes))
        )
        self._funcs.append(node.name)
        self.generic_visit(node)
        self._funcs.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._funcs.append("<lambda>")
        self.generic_visit(node)
        self._funcs.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        decorators: list[str] = []
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            resolved = self.index.resolve_node(target)
            if resolved:
                decorators.append(resolved)
            self.visit(deco)
        for base in node.bases:
            self.visit(base)
        members: set[str] = set()
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                members.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                members.update(
                    t.id for t in stmt.targets if isinstance(t, ast.Name)
                )
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                members.add(stmt.target.id)
        base_names = tuple(
            name for b in node.bases if (name := dotted_name(b)) is not None
        )
        self.index.classes.append(
            ClassRecord(node, node.name, base_names, tuple(decorators), frozenset(members))
        )
        self._classes.append(node.name)
        for stmt in node.body:
            self.visit(stmt)
        self._classes.pop()

    # -- loops ---------------------------------------------------------
    def _visit_for(self, node) -> None:
        kind = "other"
        if isinstance(node.iter, ast.Call):
            callee = dotted_name(node.iter.func)
            if callee in ("range", "enumerate"):
                kind = callee
        targets = tuple(
            child.id for child in ast.walk(node.target) if isinstance(child, ast.Name)
        )
        self.visit(node.target)
        self.visit(node.iter)
        self._loops.append((kind, targets))
        for stmt in node.body:
            self.visit(stmt)
        self._loops.pop()
        for stmt in node.orelse:
            self.visit(stmt)

    visit_For = _visit_for
    visit_AsyncFor = _visit_for

    def visit_While(self, node: ast.While) -> None:
        self.visit(node.test)
        self._loops.append(("while", ()))
        for stmt in node.body:
            self.visit(stmt)
        self._loops.pop()
        for stmt in node.orelse:
            self.visit(stmt)

    # -- leaf records --------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        self.index.calls.append(
            CallRecord(
                node,
                self.index.resolve_node(node.func),
                tuple(self._funcs),
                tuple(self._classes),
                tuple(self._loops),
            )
        )
        self.generic_visit(node)

    def visit_Assert(self, node: ast.Assert) -> None:
        self.index.asserts.append(AssertRecord(node, tuple(self._funcs)))
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        self.index.returns.append(ReturnRecord(node, tuple(self._funcs)))
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        left, right = node.left, node.right
        both_const = isinstance(left, ast.Constant) and isinstance(right, ast.Constant)
        if isinstance(node.op, ast.Div) and not both_const:
            self.index.binops.append(
                BinOpRecord(node, "division", tuple(self._funcs))
            )
        elif isinstance(node.op, (ast.Add, ast.Sub, ast.Mult, ast.Pow)):
            left_float = isinstance(left, ast.Constant) and isinstance(left.value, float)
            right_float = isinstance(right, ast.Constant) and isinstance(right.value, float)
            if (left_float or right_float) and not both_const:
                self.index.binops.append(
                    BinOpRecord(node, "float-literal", tuple(self._funcs))
                )
        self.generic_visit(node)


def build_index(
    path: str,
    source: str,
    tree: ast.Module,
    *,
    category: str,
    is_kernel_module: bool = False,
    is_packed_module: bool = False,
    in_algorithms: bool = False,
) -> FileIndex:
    """Walk ``tree`` once and return the populated :class:`FileIndex`."""
    index = FileIndex(
        path=path,
        category=category,
        is_kernel_module=is_kernel_module,
        is_packed_module=is_packed_module,
        in_algorithms=in_algorithms,
        source=source,
        lines=source.splitlines(),
    )
    _IndexBuilder(index).visit(tree)
    return index
