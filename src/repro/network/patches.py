"""Graph patching for T-stable networks (Section 8.1).

The patch-sharing algorithm partitions the (static for ``T`` rounds) graph
into connected *patches* of size ``Omega(D)`` and diameter ``O(D)``:

1. form the ``D``-th power ``G^D`` of the connectivity graph,
2. compute a maximal independent set ``S`` of ``G^D`` (the patch *leaders*),
3. assign every vertex to its closest leader (ties by smallest leader id),

which yields patches that are connected (via shortest-path trees), have
diameter at most ``2D`` and size at least ``D/2`` (Section 8.1 items 1-3;
the size bound degrades gracefully when fewer than ``D/2`` nodes exist).

The module exposes both the patch decomposition itself and the per-patch
shortest-path trees (rooted at the leaders) that the share step's pipelined
aggregation runs over.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from .mis import MisResult, greedy_mis, luby_mis

__all__ = [
    "Patch",
    "PatchDecomposition",
    "power_graph",
    "compute_patches",
]


@dataclass(frozen=True)
class Patch:
    """One patch of the decomposition.

    Attributes
    ----------
    leader:
        The MIS vertex this patch is built around.
    members:
        All vertices assigned to the leader (including the leader itself).
    parent:
        Shortest-path-tree parent of each member (leader maps to itself).
    depth:
        Tree depth of each member (leader has depth 0).
    """

    leader: int
    members: frozenset
    parent: dict
    depth: dict

    @property
    def size(self) -> int:
        """Number of vertices in the patch."""
        return len(self.members)

    @property
    def height(self) -> int:
        """Height of the patch's shortest-path tree."""
        return max(self.depth.values()) if self.depth else 0

    def children(self) -> dict:
        """Map each member to the list of its tree children."""
        kids: dict = {member: [] for member in self.members}
        for node, parent in self.parent.items():
            if node != self.leader:
                kids[parent].append(node)
        return kids


@dataclass(frozen=True)
class PatchDecomposition:
    """A full patch decomposition of one static topology."""

    patches: tuple[Patch, ...]
    radius: int
    mis_rounds: int

    @property
    def leaders(self) -> frozenset:
        """The set of patch leaders (the MIS of the power graph)."""
        return frozenset(p.leader for p in self.patches)

    def patch_of(self, node: int) -> Patch:
        """Return the patch containing ``node``."""
        for patch in self.patches:
            if node in patch.members:
                return patch
        raise KeyError(f"node {node} is not covered by the decomposition")

    def membership(self) -> dict:
        """Map every node to its leader."""
        out: dict = {}
        for patch in self.patches:
            for member in patch.members:
                out[member] = patch.leader
        return out

    @property
    def min_patch_size(self) -> int:
        """Size of the smallest patch."""
        return min(p.size for p in self.patches)

    @property
    def max_patch_diameter_bound(self) -> int:
        """Twice the maximum tree height — an upper bound on any patch's diameter."""
        return 2 * max(p.height for p in self.patches)


def power_graph(graph: nx.Graph, distance: int) -> nx.Graph:
    """The ``distance``-th power of ``graph``: connect nodes within that distance."""
    if distance < 1:
        raise ValueError(f"distance must be >= 1, got {distance}")
    powered = nx.Graph()
    powered.add_nodes_from(graph.nodes)
    lengths = dict(nx.all_pairs_shortest_path_length(graph, cutoff=distance))
    for u, reachable in lengths.items():
        for v, dist in reachable.items():
            if u != v and dist <= distance:
                powered.add_edge(u, v)
    return powered


def compute_patches(
    graph: nx.Graph,
    radius: int,
    rng: np.random.Generator | None = None,
    deterministic: bool = False,
) -> PatchDecomposition:
    """Partition ``graph`` into patches of radius ``radius`` (the paper's ``D``).

    Parameters
    ----------
    graph:
        The static topology for the current T-stable block.  Must be connected.
    radius:
        The target patch radius ``D``; the paper sets ``D = O(T / log n)``.
    rng:
        Randomness source for Luby's MIS; required unless ``deterministic``.
    deterministic:
        Use the deterministic greedy MIS instead of Luby's.
    """
    if graph.number_of_nodes() == 0:
        raise ValueError("cannot patch an empty graph")
    if graph.number_of_nodes() > 1 and not nx.is_connected(graph):
        raise ValueError("patching requires a connected topology")
    radius = max(1, radius)

    powered = power_graph(graph, radius)
    if deterministic:
        mis_result: MisResult = greedy_mis(powered)
    else:
        if rng is None:
            raise ValueError("rng is required for the randomized (Luby) MIS")
        mis_result = luby_mis(powered, rng)
    leaders = sorted(mis_result.members)

    # Multi-source BFS from all leaders simultaneously; each node is claimed
    # by the first leader to reach it (ties broken by smaller leader id
    # because we expand leaders in sorted order within each BFS layer).
    assignment: dict = {leader: leader for leader in leaders}
    parent: dict = {leader: leader for leader in leaders}
    depth: dict = {leader: 0 for leader in leaders}
    frontier = list(leaders)
    while frontier:
        next_frontier: list = []
        for node in frontier:
            for neighbour in sorted(graph.neighbors(node)):
                if neighbour not in assignment:
                    assignment[neighbour] = assignment[node]
                    parent[neighbour] = node
                    depth[neighbour] = depth[node] + 1
                    next_frontier.append(neighbour)
        frontier = next_frontier

    missing = set(graph.nodes) - set(assignment)
    if missing:
        # Cannot happen on a connected graph, but fail loudly rather than
        # silently produce an incomplete decomposition.
        raise RuntimeError(f"patching left nodes unassigned: {sorted(missing)[:5]}")

    patches = []
    for leader in leaders:
        members = frozenset(v for v, owner in assignment.items() if owner == leader)
        patches.append(
            Patch(
                leader=leader,
                members=members,
                parent={v: parent[v] for v in members},
                depth={v: depth[v] for v in members},
            )
        )
    return PatchDecomposition(
        patches=tuple(patches), radius=radius, mis_rounds=mis_result.rounds
    )
