"""Adversaries controlling the dynamic network topology.

Section 4.1 of the paper: "During each round ``t`` the network's
connectivity is defined by a connected undirected graph ``G(t)`` chosen by
an adversary."  For randomized algorithms the paper's default is the
*adaptive* adversary, which picks the topology of round ``t`` after seeing
all past actions and the current node states, but *before* the (random)
messages of round ``t`` are chosen.  Section 6 additionally considers an
*omniscient* adversary that knows all randomness in advance — operationally
it may pick the topology after seeing the round's messages.

The adversary API reflects this distinction:

* every adversary implements :meth:`Adversary.choose_topology`, called before
  messages are fixed, receiving a read-only :class:`NodeStateView` per node;
* adversaries with ``sees_messages = True`` are instead called *after* the
  messages for the round have been committed and also receive them.

Concrete adversaries include the oblivious random/periodic families, the
worst-case adaptive "bottleneck" adversaries used in the KLO lower-bound
constructions, and wrappers adding T-stability.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field as dataclass_field
from typing import Callable, Mapping, Sequence

import networkx as nx
import numpy as np

from . import graphs

__all__ = [
    "NodeStateView",
    "Adversary",
    "StaticAdversary",
    "ObliviousSequenceAdversary",
    "RandomConnectedAdversary",
    "RandomTreeAdversary",
    "RotatingStarAdversary",
    "ShiftedRingAdversary",
    "PathShuffleAdversary",
    "BottleneckAdversary",
    "TokenIsolationAdversary",
    "OmniscientBottleneckAdversary",
    "TStableAdversary",
    "make_adversary",
]


@dataclass(frozen=True)
class NodeStateView:
    """Read-only snapshot of a node's knowledge, exposed to adaptive adversaries.

    Attributes
    ----------
    uid:
        The node's unique identifier (its index in ``0..n-1``).
    known_token_ids:
        Identifiers of tokens the node can currently decode.
    rank:
        Dimension of the node's received coded subspace (0 for non-coding
        protocols).
    extra:
        Protocol-specific scalars (e.g. phase counters) useful for adaptive
        scheduling; adversaries must not rely on specific keys existing.
    """

    uid: int
    known_token_ids: frozenset = frozenset()
    rank: int = 0
    extra: Mapping[str, int] = dataclass_field(default_factory=dict)


class Adversary(abc.ABC):
    """Base class for topology-choosing adversaries."""

    #: True for omniscient adversaries that pick the topology after seeing the
    #: messages nodes committed for the round.
    sees_messages: bool = False

    @abc.abstractmethod
    def choose_topology(
        self,
        round_index: int,
        n: int,
        states: Sequence[NodeStateView],
        messages: Sequence[object] | None = None,
    ) -> nx.Graph:
        """Return the connected round-``round_index`` communication graph.

        ``messages`` is only provided to adversaries with ``sees_messages``.
        """

    def reset(self) -> None:
        """Reset internal adversary state before a fresh run (optional)."""


class StaticAdversary(Adversary):
    """Keeps a single fixed topology for the whole execution."""

    def __init__(self, graph_factory: Callable[[int], nx.Graph] | nx.Graph):
        self._factory = graph_factory
        self._cached: nx.Graph | None = None

    def choose_topology(self, round_index, n, states, messages=None) -> nx.Graph:
        if self._cached is None:
            graph = self._factory if isinstance(self._factory, nx.Graph) else self._factory(n)
            graphs.validate_topology(graph, n)
            self._cached = graph
        return self._cached

    def reset(self) -> None:
        # A static topology does not depend on run history; keep the cache.
        pass


class ObliviousSequenceAdversary(Adversary):
    """Plays a pre-determined (round-indexed) sequence of topologies."""

    def __init__(self, topology_fn: Callable[[int, int], nx.Graph]):
        self._topology_fn = topology_fn

    def choose_topology(self, round_index, n, states, messages=None) -> nx.Graph:
        graph = self._topology_fn(n, round_index)
        graphs.validate_topology(graph, n)
        return graph


class RandomConnectedAdversary(Adversary):
    """A fresh random connected graph in every round (oblivious)."""

    def __init__(self, seed: int = 0, extra_edge_prob: float = 0.05):
        self._seed = seed
        self._extra_edge_prob = extra_edge_prob
        self._rng = np.random.default_rng(seed)

    def choose_topology(self, round_index, n, states, messages=None) -> nx.Graph:
        return graphs.random_connected_graph(n, self._rng, self._extra_edge_prob)

    def reset(self) -> None:
        self._rng = np.random.default_rng(self._seed)


class RandomTreeAdversary(Adversary):
    """A fresh uniformly random spanning tree every round (sparsest legal graphs)."""

    def __init__(self, seed: int = 0):
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    def choose_topology(self, round_index, n, states, messages=None) -> nx.Graph:
        return graphs.random_tree(n, self._rng)

    def reset(self) -> None:
        self._rng = np.random.default_rng(self._seed)


class RotatingStarAdversary(Adversary):
    """Star topology whose center moves every round."""

    def choose_topology(self, round_index, n, states, messages=None) -> nx.Graph:
        return graphs.rotating_star(n, round_index)


class ShiftedRingAdversary(Adversary):
    """Ring topology whose labelling is permuted every round."""

    def choose_topology(self, round_index, n, states, messages=None) -> nx.Graph:
        return graphs.shifted_ring(n, round_index)


class PathShuffleAdversary(Adversary):
    """A freshly shuffled path in every round.

    Paths are the sparsest connected graphs with the largest diameter, which
    makes this a natural stress topology for dissemination.
    """

    def __init__(self, seed: int = 0):
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    def choose_topology(self, round_index, n, states, messages=None) -> nx.Graph:
        order = list(self._rng.permutation(n))
        return graphs.path_graph(n, order)

    def reset(self) -> None:
        self._rng = np.random.default_rng(self._seed)


class BottleneckAdversary(Adversary):
    """Adaptive adversary that minimises the flow of *new* information.

    It partitions nodes into "rich" (many known tokens / high rank) and
    "poor" groups and joins the two sides with a single bridge, always
    choosing as the rich-side bridge endpoint the rich node with the fewest
    known tokens.  This is the adaptive cut structure underlying the KLO
    lower bound for knowledge-based token-forwarding: each round at most one
    poor node can learn anything from the rich side, and it learns it from
    the least-informed rich node.
    """

    def __init__(self, bridge_pairs: int = 1):
        if bridge_pairs < 1:
            raise ValueError("bridge_pairs must be at least 1")
        self._bridge_pairs = bridge_pairs

    def _score(self, state: NodeStateView) -> tuple[int, int]:
        return (len(state.known_token_ids), state.rank)

    def choose_topology(self, round_index, n, states, messages=None) -> nx.Graph:
        if n <= 2:
            return graphs.complete_graph(n)
        ordered = sorted(states, key=self._score)
        # Poor half = least-informed nodes; rich half = most-informed nodes.
        half = n // 2
        poor = [s.uid for s in ordered[:half]]
        rich = [s.uid for s in ordered[half:]]
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        graph.add_edges_from((u, v) for i, u in enumerate(poor) for v in poor[i + 1 :])
        graph.add_edges_from((u, v) for i, u in enumerate(rich) for v in rich[i + 1 :])
        # Bridge: least-informed rich node to most-informed poor node — the
        # crossing that transfers the least new knowledge.
        for b in range(self._bridge_pairs):
            graph.add_edge(rich[b % len(rich)], poor[-1 - (b % len(poor))])
        graphs.validate_topology(graph, n)
        return graph


class TokenIsolationAdversary(Adversary):
    """Adaptive adversary that isolates the holders of one target token.

    Nodes that know the target token are placed in one clique, all other
    nodes in another, with a single bridge edge.  The spread of the target
    token (or, for coding protocols, of the corresponding direction) is
    then limited to one new node per round — the slowest rate connectivity
    permits.  This realises, per round, the worst case used in the
    Section 5.3 analysis.
    """

    def __init__(self, target_token_id: object):
        self._target = target_token_id

    def choose_topology(self, round_index, n, states, messages=None) -> nx.Graph:
        informed = {s.uid for s in states if self._target in s.known_token_ids}
        if not informed or len(informed) == n:
            return graphs.complete_graph(n)
        return graphs.split_graph(n, informed, bridge_pairs=1)


class OmniscientBottleneckAdversary(Adversary):
    """Omniscient variant of the bottleneck adversary (Section 6).

    Because it is allowed to see the round's committed messages, it can try
    to place the bridge so that the crossing message is useless to the
    receiving side (e.g. already in its span).  Against small fields this
    succeeds often; against the large fields of Theorem 6.1 it cannot,
    which is exactly the claim benchmark E9 validates.
    """

    sees_messages = True

    def __init__(self, usefulness_fn: Callable[[int, int, object], bool] | None = None):
        """``usefulness_fn(sender_uid, receiver_uid, message) -> bool``.

        Supplied by the experiment harness because judging "useless" requires
        inspecting protocol-specific message contents.  When omitted, the
        adversary degenerates to the adaptive bottleneck behaviour.
        """
        self._usefulness_fn = usefulness_fn
        self._fallback = BottleneckAdversary()

    def choose_topology(self, round_index, n, states, messages=None) -> nx.Graph:
        if messages is None or self._usefulness_fn is None or n <= 2:
            return self._fallback.choose_topology(round_index, n, states, messages)
        ordered = sorted(states, key=lambda s: (len(s.known_token_ids), s.rank))
        half = n // 2
        poor = [s.uid for s in ordered[:half]]
        rich = [s.uid for s in ordered[half:]]
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        graph.add_edges_from((u, v) for i, u in enumerate(poor) for v in poor[i + 1 :])
        graph.add_edges_from((u, v) for i, u in enumerate(rich) for v in rich[i + 1 :])
        # Search for a bridge whose rich->poor message is NOT useful.
        best_edge = None
        for sender in rich:
            message = messages[sender]
            for receiver in poor:
                if not self._usefulness_fn(sender, receiver, message):
                    best_edge = (sender, receiver)
                    break
            if best_edge:
                break
        if best_edge is None:
            best_edge = (rich[0], poor[-1])
        graph.add_edge(*best_edge)
        graphs.validate_topology(graph, n)
        return graph


class TStableAdversary(Adversary):
    """Wrap any adversary so the topology only changes every ``T`` rounds.

    This is the paper's T-stability requirement (Section 8): the entire
    network is static within each block of ``T`` consecutive rounds.
    """

    def __init__(self, inner: Adversary, stability: int):
        if stability < 1:
            raise ValueError(f"stability T must be >= 1, got {stability}")
        self.inner = inner
        self.stability = stability
        self._current: nx.Graph | None = None
        self._current_block = -1

    @property
    def sees_messages(self) -> bool:  # type: ignore[override]
        return self.inner.sees_messages

    def choose_topology(self, round_index, n, states, messages=None) -> nx.Graph:
        block = round_index // self.stability
        if block != self._current_block or self._current is None:
            self._current = self.inner.choose_topology(round_index, n, states, messages)
            self._current_block = block
        return self._current

    def reset(self) -> None:
        self.inner.reset()
        self._current = None
        self._current_block = -1


_ADVERSARY_FACTORIES: dict[str, Callable[..., Adversary]] = {
    "static_path": lambda **kw: StaticAdversary(graphs.path_graph),
    "static_ring": lambda **kw: StaticAdversary(graphs.ring_graph),
    "static_star": lambda **kw: StaticAdversary(graphs.star_graph),
    "static_complete": lambda **kw: StaticAdversary(graphs.complete_graph),
    "random_connected": lambda seed=0, **kw: RandomConnectedAdversary(seed=seed),
    "random_tree": lambda seed=0, **kw: RandomTreeAdversary(seed=seed),
    "rotating_star": lambda **kw: RotatingStarAdversary(),
    "shifted_ring": lambda **kw: ShiftedRingAdversary(),
    "path_shuffle": lambda seed=0, **kw: PathShuffleAdversary(seed=seed),
    "bottleneck": lambda **kw: BottleneckAdversary(),
}


def make_adversary(name: str, *, stability: int = 1, seed: int = 0) -> Adversary:
    """Construct a named adversary, optionally wrapped for T-stability.

    Recognised names: ``static_path``, ``static_ring``, ``static_star``,
    ``static_complete``, ``random_connected``, ``random_tree``,
    ``rotating_star``, ``shifted_ring``, ``path_shuffle``, ``bottleneck``.
    """
    try:
        factory = _ADVERSARY_FACTORIES[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown adversary {name!r}; choose from {sorted(_ADVERSARY_FACTORIES)}"
        ) from exc
    adversary = factory(seed=seed)
    if stability > 1:
        adversary = TStableAdversary(adversary, stability)
    return adversary
