"""Adversaries controlling the dynamic network topology.

Section 4.1 of the paper: "During each round ``t`` the network's
connectivity is defined by a connected undirected graph ``G(t)`` chosen by
an adversary."  For randomized algorithms the paper's default is the
*adaptive* adversary, which picks the topology of round ``t`` after seeing
all past actions and the current node states, but *before* the (random)
messages of round ``t`` are chosen.  Section 6 additionally considers an
*omniscient* adversary that knows all randomness in advance — operationally
it may pick the topology after seeing the round's messages.

The adversary API reflects this distinction:

* every adversary implements :meth:`Adversary.choose_topology`, called before
  messages are fixed, receiving a read-only :class:`NodeStateView` per node;
* adversaries with ``sees_messages = True`` are instead called *after* the
  messages for the round have been committed and also receive them.

Concrete adversaries include the oblivious random/periodic families, the
worst-case adaptive "bottleneck" adversaries used in the KLO lower-bound
constructions, and wrappers adding T-stability.

Performance: the in-repo adversaries emit mask-native
:class:`~repro.network.topology.Topology` objects (per-node neighbour
bitmasks) — the bottleneck/split cliques are two mask fills instead of
O(n^2) edge insertions — and read the cheap ``known_count`` / ``knows``
accessors of the (lazy) state views.  Custom adversaries may keep returning
``networkx.Graph``; the runner coerces through
:func:`~repro.network.topology.as_topology`.
"""

from __future__ import annotations

import abc
from typing import Callable, Iterable, Mapping, Sequence

import networkx as nx
import numpy as np

from . import graphs
from .topology import (
    Topology,
    as_topology,
    clique_pair_topology,
    complete_topology,
    path_topology,
    random_connected_topology,
    random_tree_topology,
    ring_topology,
    shifted_ring_topology,
    split_topology,
    star_topology,
)

__all__ = [
    "NodeStateView",
    "Adversary",
    "StaticAdversary",
    "ObliviousSequenceAdversary",
    "RandomConnectedAdversary",
    "RandomTreeAdversary",
    "RotatingStarAdversary",
    "ShiftedRingAdversary",
    "PathShuffleAdversary",
    "BottleneckAdversary",
    "TokenIsolationAdversary",
    "OmniscientBottleneckAdversary",
    "TStableAdversary",
    "make_adversary",
]


class NodeStateView:
    """Read-only view of a node's knowledge, exposed to adaptive adversaries.

    The view is *lazy*: the runner constructs it from O(1) suppliers, and the
    ``known_token_ids`` frozenset — the expensive part of the old eager
    snapshot — is only materialised if an adversary actually reads it.  The
    in-repo adversaries use :attr:`known_count` (number of decodable tokens)
    and :meth:`knows` (membership test), both O(1); custom adversaries can
    keep reading ``known_token_ids`` unchanged.

    Contract: a view is valid for the round it was issued (nodes do not
    learn between snapshot and ``choose_topology``, so all accessors agree
    there).  It is *not* a durable snapshot — a lazy view retained across
    rounds reads through to the node's then-current knowledge on first
    access.  An adversary that wants cross-round deltas must copy
    ``known_token_ids`` during ``choose_topology``.

    Attributes
    ----------
    uid:
        The node's unique identifier (its index in ``0..n-1``).
    known_token_ids:
        Identifiers of tokens the node can currently decode (built on first
        access when the view is lazy).
    rank:
        Dimension of the node's received coded subspace (0 for non-coding
        protocols).
    extra:
        Protocol-specific scalars (e.g. phase counters) useful for adaptive
        scheduling; adversaries must not rely on specific keys existing.
    """

    __slots__ = ("uid", "rank", "extra", "_known", "_supplier", "_count", "_membership")

    def __init__(
        self,
        uid: int,
        known_token_ids: Iterable | None = None,
        rank: int = 0,
        extra: Mapping[str, int] | None = None,
        *,
        known_supplier: Callable[[], Iterable] | None = None,
        known_count: int | None = None,
        membership: Callable[[object], bool] | None = None,
    ):
        self.uid = uid
        self.rank = rank
        self.extra: Mapping[str, int] = extra if extra is not None else {}
        self._known: frozenset | None = (
            frozenset(known_token_ids) if known_token_ids is not None else None
        )
        self._supplier = known_supplier
        self._count = known_count
        self._membership = membership
        if self._known is None and self._supplier is None:
            self._known = frozenset()

    @property
    def known_token_ids(self) -> frozenset:
        if self._known is None:
            if self._supplier is None:
                raise RuntimeError(
                    "NodeStateView invariant violated: neither a known set "
                    "nor a supplier was provided"
                )
            self._known = frozenset(self._supplier())
        return self._known

    @property
    def known_count(self) -> int:
        """Number of decodable tokens, without materialising the frozenset."""
        if self._count is not None:
            return self._count
        return len(self.known_token_ids)

    def knows(self, token_id: object) -> bool:
        """O(1) membership test for a single token identifier."""
        if self._known is not None:
            return token_id in self._known
        if self._membership is not None:
            return bool(self._membership(token_id))
        return token_id in self.known_token_ids

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NodeStateView(uid={self.uid}, known={self.known_count}, rank={self.rank})"


class Adversary(abc.ABC):
    """Base class for topology-choosing adversaries."""

    #: True for omniscient adversaries that pick the topology after seeing the
    #: messages nodes committed for the round.
    sees_messages: bool = False

    @abc.abstractmethod
    def choose_topology(
        self,
        round_index: int,
        n: int,
        states: Sequence[NodeStateView],
        messages: Sequence[object] | None = None,
    ) -> Topology | nx.Graph:
        """Return the connected round-``round_index`` communication graph.

        ``messages`` is only provided to adversaries with ``sees_messages``.
        """

    def reset(self) -> None:
        """Reset internal adversary state before a fresh run (optional)."""


class StaticAdversary(Adversary):
    """Keeps a single fixed topology for the whole execution."""

    def __init__(
        self,
        graph_factory: Callable[[int], Topology | nx.Graph] | Topology | nx.Graph,
    ):
        self._factory = graph_factory
        self._cached: Topology | None = None

    def choose_topology(self, round_index, n, states, messages=None) -> Topology:
        if self._cached is None:
            if isinstance(self._factory, (Topology, nx.Graph)):
                graph = self._factory
            else:
                graph = self._factory(n)
            topology = as_topology(graph, n)
            topology.validate(n)
            self._cached = topology
        return self._cached

    def reset(self) -> None:
        # A static topology does not depend on run history; keep the cache.
        pass


class ObliviousSequenceAdversary(Adversary):
    """Plays a pre-determined (round-indexed) sequence of topologies.

    The user-supplied ``topology_fn`` may return either a
    :class:`~repro.network.topology.Topology` or a ``networkx.Graph``; the
    result is passed through unconverted (the runner adapts it).
    """

    def __init__(self, topology_fn: Callable[[int, int], Topology | nx.Graph]):
        self._topology_fn = topology_fn

    def choose_topology(self, round_index, n, states, messages=None):
        graph = self._topology_fn(n, round_index)
        graphs.validate_topology(graph, n)
        return graph


class RandomConnectedAdversary(Adversary):
    """A fresh random connected graph in every round (oblivious)."""

    def __init__(self, seed: int = 0, extra_edge_prob: float = 0.05):
        self._seed = seed
        self._extra_edge_prob = extra_edge_prob
        self._rng = np.random.default_rng(seed)

    def choose_topology(self, round_index, n, states, messages=None) -> Topology:
        return random_connected_topology(n, self._rng, self._extra_edge_prob)

    def reset(self) -> None:
        self._rng = np.random.default_rng(self._seed)


class RandomTreeAdversary(Adversary):
    """A fresh uniformly random spanning tree every round (sparsest legal graphs)."""

    def __init__(self, seed: int = 0):
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    def choose_topology(self, round_index, n, states, messages=None) -> Topology:
        return random_tree_topology(n, self._rng)

    def reset(self) -> None:
        self._rng = np.random.default_rng(self._seed)


class RotatingStarAdversary(Adversary):
    """Star topology whose center moves every round."""

    def choose_topology(self, round_index, n, states, messages=None) -> Topology:
        return star_topology(n, center=round_index % n)


class ShiftedRingAdversary(Adversary):
    """Ring topology whose labelling is permuted every round."""

    def choose_topology(self, round_index, n, states, messages=None) -> Topology:
        return shifted_ring_topology(n, round_index)


class PathShuffleAdversary(Adversary):
    """A freshly shuffled path in every round.

    Paths are the sparsest connected graphs with the largest diameter, which
    makes this a natural stress topology for dissemination.
    """

    def __init__(self, seed: int = 0):
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    def choose_topology(self, round_index, n, states, messages=None) -> Topology:
        order = list(self._rng.permutation(n))
        return path_topology(n, order)

    def reset(self) -> None:
        self._rng = np.random.default_rng(self._seed)


def _rich_poor_split(states: Sequence[NodeStateView], n: int) -> tuple[list[int], list[int]]:
    """Sort nodes by (known tokens, rank) and split into poor/rich halves."""
    ordered = sorted(states, key=lambda s: (s.known_count, s.rank))
    half = n // 2
    poor = [s.uid for s in ordered[:half]]
    rich = [s.uid for s in ordered[half:]]
    return poor, rich


class BottleneckAdversary(Adversary):
    """Adaptive adversary that minimises the flow of *new* information.

    It partitions nodes into "rich" (many known tokens / high rank) and
    "poor" groups and joins the two sides with a single bridge, always
    choosing as the rich-side bridge endpoint the rich node with the fewest
    known tokens.  This is the adaptive cut structure underlying the KLO
    lower bound for knowledge-based token-forwarding: each round at most one
    poor node can learn anything from the rich side, and it learns it from
    the least-informed rich node.
    """

    def __init__(self, bridge_pairs: int = 1):
        if bridge_pairs < 1:
            raise ValueError("bridge_pairs must be at least 1")
        self._bridge_pairs = bridge_pairs

    def choose_topology(self, round_index, n, states, messages=None) -> Topology:
        if n <= 2:
            return complete_topology(n)
        poor, rich = _rich_poor_split(states, n)
        # Bridge: least-informed rich node to most-informed poor node — the
        # crossing that transfers the least new knowledge.
        bridges = [
            (rich[b % len(rich)], poor[-1 - (b % len(poor))])
            for b in range(self._bridge_pairs)
        ]
        return clique_pair_topology(n, poor, rich, bridges)


class TokenIsolationAdversary(Adversary):
    """Adaptive adversary that isolates the holders of one target token.

    Nodes that know the target token are placed in one clique, all other
    nodes in another, with a single bridge edge.  The spread of the target
    token (or, for coding protocols, of the corresponding direction) is
    then limited to one new node per round — the slowest rate connectivity
    permits.  This realises, per round, the worst case used in the
    Section 5.3 analysis.
    """

    def __init__(self, target_token_id: object):
        self._target = target_token_id

    def choose_topology(self, round_index, n, states, messages=None) -> Topology:
        informed = {s.uid for s in states if s.knows(self._target)}
        if not informed or len(informed) == n:
            return complete_topology(n)
        return split_topology(n, informed, bridge_pairs=1)


class OmniscientBottleneckAdversary(Adversary):
    """Omniscient variant of the bottleneck adversary (Section 6).

    Because it is allowed to see the round's committed messages, it can try
    to place the bridge so that the crossing message is useless to the
    receiving side (e.g. already in its span).  Against small fields this
    succeeds often; against the large fields of Theorem 6.1 it cannot,
    which is exactly the claim benchmark E9 validates.
    """

    sees_messages = True

    def __init__(self, usefulness_fn: Callable[[int, int, object], bool] | None = None):
        """``usefulness_fn(sender_uid, receiver_uid, message) -> bool``.

        Supplied by the experiment harness because judging "useless" requires
        inspecting protocol-specific message contents.  When omitted, the
        adversary degenerates to the adaptive bottleneck behaviour.
        """
        self._usefulness_fn = usefulness_fn
        self._fallback = BottleneckAdversary()

    def choose_topology(self, round_index, n, states, messages=None) -> Topology:
        if messages is None or self._usefulness_fn is None or n <= 2:
            return self._fallback.choose_topology(round_index, n, states, messages)
        poor, rich = _rich_poor_split(states, n)
        # Search for a bridge whose rich->poor message is NOT useful.
        best_edge = None
        for sender in rich:
            message = messages[sender]
            for receiver in poor:
                if not self._usefulness_fn(sender, receiver, message):
                    best_edge = (sender, receiver)
                    break
            if best_edge:
                break
        if best_edge is None:
            best_edge = (rich[0], poor[-1])
        return clique_pair_topology(n, poor, rich, [best_edge])


class TStableAdversary(Adversary):
    """Wrap any adversary so the topology only changes every ``T`` rounds.

    This is the paper's T-stability requirement (Section 8): the entire
    network is static within each block of ``T`` consecutive rounds.  The
    cached block topology is returned as the *same object* every round of
    the block, so the runner's identity-keyed validation cache checks it
    once per block instead of once per round.
    """

    def __init__(self, inner: Adversary, stability: int):
        if stability < 1:
            raise ValueError(f"stability T must be >= 1, got {stability}")
        self.inner = inner
        self.stability = stability
        self._current: Topology | nx.Graph | None = None
        self._current_block = -1

    @property
    def sees_messages(self) -> bool:  # type: ignore[override]
        return self.inner.sees_messages

    def choose_topology(self, round_index, n, states, messages=None):
        block = round_index // self.stability
        if block != self._current_block or self._current is None:
            self._current = self.inner.choose_topology(round_index, n, states, messages)
            self._current_block = block
        return self._current

    def reset(self) -> None:
        self.inner.reset()
        self._current = None
        self._current_block = -1


_ADVERSARY_FACTORIES: dict[str, Callable[..., Adversary]] = {
    "static_path": lambda **kw: StaticAdversary(path_topology),
    "static_ring": lambda **kw: StaticAdversary(ring_topology),
    "static_star": lambda **kw: StaticAdversary(star_topology),
    "static_complete": lambda **kw: StaticAdversary(complete_topology),
    "random_connected": lambda seed=0, **kw: RandomConnectedAdversary(seed=seed),
    "random_tree": lambda seed=0, **kw: RandomTreeAdversary(seed=seed),
    "rotating_star": lambda **kw: RotatingStarAdversary(),
    "shifted_ring": lambda **kw: ShiftedRingAdversary(),
    "path_shuffle": lambda seed=0, **kw: PathShuffleAdversary(seed=seed),
    "bottleneck": lambda **kw: BottleneckAdversary(),
}


def make_adversary(name: str, *, stability: int = 1, seed: int = 0) -> Adversary:
    """Construct a named adversary, optionally wrapped for T-stability.

    Recognised names: ``static_path``, ``static_ring``, ``static_star``,
    ``static_complete``, ``random_connected``, ``random_tree``,
    ``rotating_star``, ``shifted_ring``, ``path_shuffle``, ``bottleneck``.
    """
    try:
        factory = _ADVERSARY_FACTORIES[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown adversary {name!r}; choose from {sorted(_ADVERSARY_FACTORIES)}"
        ) from exc
    adversary = factory(seed=seed)
    if stability > 1:
        adversary = TStableAdversary(adversary, stability)
    return adversary
