"""Topology generators and validators for dynamic networks.

The dynamic network model (Section 4.1) only requires that the per-round
communication graph ``G(t)`` is *connected* and spans all ``n`` nodes.  The
adversary is otherwise unconstrained.  This module provides the concrete
connected topologies used by our adversaries and benchmarks:

* deterministic structures (path, ring, star, complete, binary tree,
  dumbbell) which appear in the KLO lower-bound constructions, and
* randomized structures (random connected graphs, random trees,
  random regular-ish expanders) used as "typical" dynamic rounds.

All generators return ``networkx.Graph`` objects on nodes ``0..n-1``.
Mask-native twins of the hot-path generators (returning the runner's
bitmask :class:`~repro.network.topology.Topology` representation, with
identical edge sets and RNG draw sequences) live in
:mod:`repro.network.topology`; the in-repo adversaries use those.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

__all__ = [
    "validate_topology",
    "path_graph",
    "ring_graph",
    "star_graph",
    "complete_graph",
    "binary_tree_graph",
    "dumbbell_graph",
    "random_tree",
    "random_connected_graph",
    "random_matching_plus_path",
    "rotating_star",
    "shifted_ring",
    "split_graph",
]


def validate_topology(graph, n: int) -> None:
    """Check that a graph is a legal round topology for an ``n``-node network.

    Accepts both ``networkx.Graph`` objects and mask-native
    :class:`~repro.network.topology.Topology` objects (which validate with
    word-parallel mask operations).  Raises ``ValueError`` on violation:
    wrong node set, self-loops, or a disconnected graph (the model requires
    connectivity in every round).
    """
    from .topology import Topology

    if isinstance(graph, Topology):
        graph.validate(n)
        return
    if set(graph.nodes) != set(range(n)):
        raise ValueError(
            f"topology must have node set 0..{n - 1}, got {sorted(graph.nodes)[:10]}..."
        )
    for u, v in graph.edges:
        if u == v:
            raise ValueError(f"self-loop on node {u} is not allowed")
    if n > 1 and not nx.is_connected(graph):
        raise ValueError("round topology must be connected")


def path_graph(n: int, order: Sequence[int] | None = None) -> nx.Graph:
    """A path over the nodes, optionally in a caller-provided order."""
    nodes = list(order) if order is not None else list(range(n))
    if sorted(nodes) != list(range(n)):
        raise ValueError("order must be a permutation of 0..n-1")
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from(zip(nodes, nodes[1:]))
    return graph


def ring_graph(n: int) -> nx.Graph:
    """A cycle over the nodes (falls back to a path for n < 3)."""
    if n < 3:
        return path_graph(n)
    graph = nx.cycle_graph(n)
    return graph


def star_graph(n: int, center: int = 0) -> nx.Graph:
    """A star with the given center node."""
    if not 0 <= center < n:
        raise ValueError(f"center {center} out of range for n={n}")
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from((center, v) for v in range(n) if v != center)
    return graph


def complete_graph(n: int) -> nx.Graph:
    """The complete graph K_n."""
    return nx.complete_graph(n)


def binary_tree_graph(n: int) -> nx.Graph:
    """A complete-ish binary tree on n nodes (node i's parent is (i-1)//2)."""
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from((child, (child - 1) // 2) for child in range(1, n))
    return graph


def dumbbell_graph(n: int, bridge_left: int | None = None, bridge_right: int | None = None) -> nx.Graph:
    """Two cliques of size ~n/2 joined by a single bridge edge.

    The bridge endpoints can be chosen per round, which is the classic way an
    adaptive adversary throttles information flow between the two halves.
    """
    if n < 2:
        return complete_graph(n)
    half = n // 2
    left = list(range(half))
    right = list(range(half, n))
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from((u, v) for i, u in enumerate(left) for v in left[i + 1 :])
    graph.add_edges_from((u, v) for i, u in enumerate(right) for v in right[i + 1 :])
    bl = left[0] if bridge_left is None else bridge_left
    br = right[0] if bridge_right is None else bridge_right
    if bl not in left or br not in right:
        raise ValueError("bridge endpoints must lie in their respective halves")
    graph.add_edge(bl, br)
    return graph


def random_tree(n: int, rng: np.random.Generator) -> nx.Graph:
    """A uniformly random labelled tree via a random Prüfer-like attachment."""
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    if n <= 1:
        return graph
    order = list(rng.permutation(n))
    for i in range(1, n):
        parent = order[int(rng.integers(0, i))]
        graph.add_edge(order[i], parent)
    return graph


def random_connected_graph(n: int, rng: np.random.Generator, extra_edge_prob: float = 0.1) -> nx.Graph:
    """A random connected graph: random spanning tree plus iid extra edges."""
    if not 0 <= extra_edge_prob <= 1:
        raise ValueError(f"extra_edge_prob must be in [0,1], got {extra_edge_prob}")
    graph = random_tree(n, rng)
    if n >= 3 and extra_edge_prob > 0:
        # Sample extra edges without materialising all O(n^2) pairs when the
        # probability is small.
        expected = extra_edge_prob * n * (n - 1) / 2
        count = int(rng.poisson(expected))
        for _ in range(count):
            u = int(rng.integers(0, n))
            v = int(rng.integers(0, n))
            if u != v:
                graph.add_edge(u, v)
    return graph


def random_matching_plus_path(n: int, rng: np.random.Generator) -> nx.Graph:
    """A random permutation path plus a random perfect-ish matching.

    This is a sparse, rapidly-mixing topology with small degree — a natural
    "benign but fully dynamic" round graph.
    """
    order = list(rng.permutation(n))
    graph = path_graph(n, order)
    pairing = list(rng.permutation(n))
    for i in range(0, n - 1, 2):
        graph.add_edge(int(pairing[i]), int(pairing[i + 1]))
    return graph


def rotating_star(n: int, round_index: int) -> nx.Graph:
    """A star whose center rotates every round (center = round mod n)."""
    return star_graph(n, center=round_index % n)


def shifted_ring(n: int, round_index: int) -> nx.Graph:
    """A ring re-labelled by a round-dependent rotation.

    Nodes keep changing neighbours every round while the graph stays a cycle;
    a simple fully-dynamic adversary that defeats naive pipelining.
    """
    if n < 3:
        return path_graph(n)
    shift = round_index % n
    stride = 1 + (round_index % max(1, n - 2))
    # Make sure the stride is co-prime with n so the structure stays connected
    # as a single cycle.
    while np.gcd(stride, n) != 1:
        stride += 1
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for i in range(n):
        graph.add_edge((shift + i * stride) % n, (shift + (i + 1) * stride) % n)
    return graph


def split_graph(n: int, informed: set[int], bridge_pairs: int = 1) -> nx.Graph:
    """Connect an informed group and an uninformed group with few bridges.

    Each side is internally a clique (so information mixes freely within a
    side) while only ``bridge_pairs`` edges cross the cut.  Adaptive
    adversaries use this to slow the spread of a specific token or coded
    direction to the minimum the connectivity requirement allows.
    """
    informed = {v for v in informed if 0 <= v < n}
    uninformed = [v for v in range(n) if v not in informed]
    informed_list = sorted(informed)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from(
        (u, v) for i, u in enumerate(informed_list) for v in informed_list[i + 1 :]
    )
    graph.add_edges_from(
        (u, v) for i, u in enumerate(uninformed) for v in uninformed[i + 1 :]
    )
    if informed_list and uninformed:
        pairs = max(1, bridge_pairs)
        for i in range(pairs):
            graph.add_edge(
                informed_list[i % len(informed_list)],
                uninformed[i % len(uninformed)],
            )
    return graph
