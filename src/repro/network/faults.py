"""Composable fault injection for the dissemination engines.

The adversary axis controls *topology*; this module adds the orthogonal
*fault* axis the gossip literature stress-tests against:

* **loss** — per-edge Bernoulli erasure of one round's (sender, receiver)
  delivery (a unicast erasure / collision model, not a sender failure: the
  same broadcast can reach some neighbours and miss others);
* **duplication** — per-edge Bernoulli repetition: the receiver processes
  the same message twice that round (re-broadcast echo);
* **crashes** — per-node permanent radio death from a scheduled round on:
  a crashed node neither transmits nor receives, and — unlike the
  lifeline-repaired churn of :class:`~repro.network.dynamics.ChurnProcess`
  — it never re-attaches;
* **Byzantine coded senders** — nodes whose coded wire traffic is replaced
  by adversarial GF(2) vectors: ``"malformed"`` vectors lie outside the
  source span (receivers verify against a :class:`SpanGuard` — the
  homomorphic-signature model — and discard them), ``"replay"`` re-sends a
  fixed in-span source vector (it verifies, so receivers insert it; it is
  simply almost never innovative).

A :class:`FaultModel` is a frozen, picklable description.  The runner binds
it once per run (:meth:`FaultModel.bind`) against a dedicated spawned rng
stream, and each round proceeds through a :class:`RoundFaultPlan`:

1. ``begin_round`` — draws the Byzantine wire vectors (topology-independent,
   ascending uid) and snapshots which nodes are down;
2. ``bind_edges`` — draws per-edge loss/duplication over the round's
   canonical CSR adjacency and edits it into the *effective* CSR: crashed
   endpoints and lost edges removed, duplicated edges repeated adjacently.

All three engines consume the same effective CSR (and the identical draw
order), which is what keeps faulted :class:`~repro.simulation.metrics.RunMetrics`
byte-identical across kernel / mask / legacy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gf import GF2Basis

__all__ = [
    "BoundFaults",
    "FaultModel",
    "RoundFaultPlan",
    "RoundFaultStats",
    "SpanGuard",
    "crash_schedule_from_churn",
]

_BYZANTINE_MODES = ("malformed", "replay")
_NEVER = np.iinfo(np.int64).max


@dataclass(frozen=True)
class FaultModel:
    """Declarative description of one run's fault injection.

    Attributes
    ----------
    loss:
        Per-edge Bernoulli erasure probability in ``[0, 1]``.
    duplication:
        Per-edge Bernoulli duplication probability in ``[0, 1]`` (an
        affected delivery is processed twice that round).
    crashes:
        ``(uid, first_dead_round)`` pairs: node ``uid`` is silent and deaf
        from round index ``first_dead_round`` on, permanently.
    byzantine:
        Node uids whose coded wire traffic is adversarially substituted.
        Protocols without a verifiable static generation (the forwarding
        family) treat Byzantine traffic as unverifiable and discard it.
    byzantine_mode:
        ``"malformed"`` (out-of-span vectors, rejected by the span guard)
        or ``"replay"`` (a fixed in-span source vector, accepted but almost
        never innovative).

    The model is frozen and built from plain data, so scenario fault
    factories pickle into sweep workers (REP201).
    """

    loss: float = 0.0
    duplication: float = 0.0
    crashes: tuple[tuple[int, int], ...] = ()
    byzantine: tuple[int, ...] = ()
    byzantine_mode: str = "malformed"

    def __post_init__(self):
        if not 0.0 <= self.loss <= 1.0:
            raise ValueError(f"loss must be in [0, 1], got {self.loss}")
        if not 0.0 <= self.duplication <= 1.0:
            raise ValueError(f"duplication must be in [0, 1], got {self.duplication}")
        if self.byzantine_mode not in _BYZANTINE_MODES:
            raise ValueError(
                f"byzantine_mode must be one of {_BYZANTINE_MODES}, "
                f"got {self.byzantine_mode!r}"
            )
        crashes = tuple(sorted((int(uid), int(r)) for uid, r in self.crashes))
        seen = set()
        for uid, first_dead in crashes:
            if uid < 0:
                raise ValueError(f"crash uid must be >= 0, got {uid}")
            if first_dead < 0:
                raise ValueError(f"crash round must be >= 0, got {first_dead}")
            if uid in seen:
                raise ValueError(f"duplicate crash entry for node {uid}")
            seen.add(uid)
        byzantine = tuple(sorted(int(uid) for uid in self.byzantine))
        if len(set(byzantine)) != len(byzantine):
            raise ValueError("duplicate Byzantine uids")
        if byzantine and byzantine[0] < 0:
            raise ValueError("Byzantine uids must be >= 0")
        overlap = seen & set(byzantine)
        if overlap:
            raise ValueError(
                f"nodes cannot be both crashed and Byzantine: {sorted(overlap)}"
            )
        object.__setattr__(self, "crashes", crashes)
        object.__setattr__(self, "byzantine", byzantine)

    @property
    def active(self) -> bool:
        """Whether this model injects any fault at all."""
        return bool(
            self.loss or self.duplication or self.crashes or self.byzantine
        )

    def bind(self, n: int, rng: np.random.Generator) -> "BoundFaults":
        """Bind the model to a network size and a dedicated rng stream."""
        return BoundFaults(self, n, rng)


class SpanGuard:
    """Receiver-side verification oracle for coded wire traffic.

    Models homomorphic-signature verification: any GF(2) vector inside the
    span of the instance's source vectors verifies, anything outside is
    provably forged and discarded before it can touch the receiver's basis
    (so malformed vectors can never raise a ``GF2BasisBatch`` rank past the
    source span).
    """

    def __init__(self, length: int, source_masks):
        if length <= 0:
            raise ValueError(f"vector length must be positive, got {length}")
        self.length = int(length)
        self._basis = GF2Basis(self.length)
        self._first = 0
        for mask in source_masks:
            mask = int(mask)
            if mask and not self._first:
                self._first = mask
            self._basis.insert(mask)
        if not self._first:
            raise ValueError("SpanGuard needs at least one non-zero source vector")

    @property
    def rank(self) -> int:
        return self._basis.rank

    @property
    def replay_mask(self) -> int:
        """The fixed in-span vector Byzantine replay senders transmit."""
        return self._first

    def contains(self, mask: int) -> bool:
        """Whether ``mask`` verifies (lies inside the source span)."""
        return self._basis.contains(mask)

    def sample_outside(self, rng: np.random.Generator) -> int:
        """Rejection-sample a vector provably outside the source span."""
        if self._basis.rank >= self.length:
            raise ValueError(
                "the source span covers the whole space; no malformed vector exists"
            )
        nbytes = (self.length + 7) // 8
        top = (1 << self.length) - 1
        while True:
            mask = int.from_bytes(rng.bytes(nbytes), "little") & top
            if not self._basis.contains(mask):
                return mask


@dataclass(frozen=True)
class RoundFaultStats:
    """One round's fault accounting (engine-invariant by construction)."""

    dropped: int
    duplicated: int
    corrupted: int
    discarded: int


class BoundFaults:
    """A :class:`FaultModel` bound to a run: size, rng stream, crash clock."""

    def __init__(self, model: FaultModel, n: int, rng: np.random.Generator):
        for uid, _ in model.crashes:
            if uid >= n:
                raise ValueError(f"crash uid {uid} out of range for n={n}")
        for uid in model.byzantine:
            if uid >= n:
                raise ValueError(f"Byzantine uid {uid} out of range for n={n}")
        self.model = model
        self.n = int(n)
        self.rng = rng
        self.crash_round = np.full(n, _NEVER, dtype=np.int64)
        for uid, first_dead in model.crashes:
            self.crash_round[uid] = first_dead
        self.byz = np.zeros(n, dtype=bool)
        if model.byzantine:
            self.byz[list(model.byzantine)] = True
        #: Nodes never scheduled to crash — the population completion and
        #: correctness are measured over (Byzantine nodes *are* survivors:
        #: their receive path is honest).
        self.survivor_indices = np.flatnonzero(self.crash_round == _NEVER)
        self.guard: SpanGuard | None = None

    @property
    def wants_guard(self) -> bool:
        """Whether Byzantine faults need a span guard attached."""
        return bool(self.model.byzantine)

    def attach_guard(self, guard: SpanGuard | None) -> None:
        """Attach the protocol's span guard (None: Byzantine traffic is
        unverifiable for this protocol and always discarded).

        When the source span already covers the whole vector space, no
        out-of-span vector exists, so a ``"malformed"`` attack is
        impossible (``sample_outside`` would loop/raise mid-run).  The
        guard is dropped instead: every Byzantine copy is discarded,
        matching the unverifiable (``guard=None``) path and the mode's
        observable outcome — malformed traffic never reaches a basis.
        """
        if (
            guard is not None
            and self.model.byzantine_mode == "malformed"
            and guard.rank >= guard.length
        ):
            guard = None
        self.guard = guard

    def begin_round(self, round_index: int) -> "RoundFaultPlan":
        """Start one round: crash snapshot plus Byzantine wire draws.

        The Byzantine draws happen here — before the adversary sees any
        message and before the topology exists — in ascending uid order, so
        the rng stream is identical across engines and independent of the
        round's graph.
        """
        down = np.asarray(self.crash_round <= round_index)
        wires: dict[int, int] = {}
        guard = self.guard
        if guard is not None:
            if self.model.byzantine_mode == "replay":
                for uid in self.model.byzantine:
                    wires[uid] = guard.replay_mask
            else:
                for uid in self.model.byzantine:
                    wires[uid] = guard.sample_outside(self.rng)
        return RoundFaultPlan(self, down, wires)


class RoundFaultPlan:
    """One round's bound fault draws and the effective-CSR editor."""

    def __init__(self, bound: BoundFaults, down: np.ndarray, wires: dict[int, int]):
        self.bound = bound
        self.down = down
        #: Byzantine uid -> wire vector drawn/fixed for this round.
        self.wire_vectors = wires
        #: Non-empty only in replay mode with a guard: the substituted
        #: traffic verifies, so it must actually flow to receivers.
        self.substitute = (
            wires if bound.model.byzantine_mode == "replay" else {}
        )
        self._senders: np.ndarray | None = None
        self._lost: np.ndarray | None = None
        self._extra: np.ndarray | None = None
        self._viable: np.ndarray | None = None
        self._rejected: np.ndarray | None = None

    def bind_edges(
        self, indices: np.ndarray, indptr: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw per-edge faults over the canonical CSR; return the effective CSR.

        The effective CSR removes edges with a crashed endpoint, removes
        lost edges and discarded (malformed-Byzantine) edges, and repeats
        duplicated edges adjacently — per-receiver segments stay in the
        engines' canonical ascending-sender order with duplicates adjacent.
        Loss is drawn before duplication, each only when its probability is
        non-zero, so benign axes consume no rng.
        """
        model = self.bound.model
        rng = self.bound.rng
        n = self.bound.n
        edges = indices.size
        senders = indices
        receivers = np.repeat(np.arange(n), np.diff(indptr))
        lost = (
            rng.random(edges) < model.loss
            if model.loss > 0.0
            else np.zeros(edges, dtype=bool)
        )
        extra = (
            rng.random(edges) < model.duplication
            if model.duplication > 0.0
            else np.zeros(edges, dtype=bool)
        )
        viable = ~self.down[senders] & ~self.down[receivers]
        byz_edge = self.bound.byz[senders]
        if self.substitute:
            rejected = np.zeros(edges, dtype=bool)
        else:
            # Malformed mode, or no span guard for this protocol: every
            # Byzantine copy is discarded at the receiver.
            rejected = byz_edge
        copies = np.where(
            viable & ~lost & ~rejected, 1 + extra.astype(np.int64), 0
        )
        eff_indices = np.repeat(senders, copies)
        cumulative = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(copies, dtype=np.int64))
        )
        eff_indptr = cumulative[indptr]
        self._senders = senders
        self._lost = lost
        self._extra = extra
        self._viable = viable
        self._rejected = rejected
        self._byz_edge = byz_edge
        return eff_indices, eff_indptr

    def account(self, sending: np.ndarray) -> RoundFaultStats:
        """Per-round fault counters, given which nodes actually broadcast.

        ``sending`` must already exclude down nodes.  A transmission toward
        a crashed receiver is counted nowhere (the radio it would reach is
        off); faults only score against deliveries that would otherwise
        have happened.
        """
        if self._senders is None:
            raise RuntimeError("bind_edges must run before account")
        live = sending[self._senders] & self._viable
        dropped = int(np.count_nonzero(self._lost & live))
        surviving = ~self._lost & live
        duplicated = int(np.count_nonzero(self._extra & surviving))
        copies = 1 + self._extra.astype(np.int64)
        corrupted = int(copies[surviving & self._byz_edge].sum())
        discarded = int(copies[surviving & self._rejected].sum())
        return RoundFaultStats(
            dropped=dropped,
            duplicated=duplicated,
            corrupted=corrupted,
            discarded=discarded,
        )


def crash_schedule_from_churn(churn, rounds: int) -> tuple[tuple[int, int], ...]:
    """Derive a permanent crash schedule from a churn replay.

    Replays ``rounds`` rounds of a :class:`~repro.network.dynamics.ChurnProcess`
    built with ``record_activity=True`` (and, for true-crash semantics,
    ``lifeline=False``) and returns each departed node's first inactive
    round as a ``FaultModel.crashes`` schedule.  The process is reset before
    and after the replay, so the caller can still hand it to an engine.
    """
    if not getattr(churn, "record_activity", False):
        raise ValueError("crash_schedule_from_churn needs record_activity=True")
    churn.reset()
    churn.next_batch(rounds)
    first_dead: dict[int, int] = {}
    for round_index, active in enumerate(churn.activity_history[:rounds]):
        for uid in np.flatnonzero(~np.asarray(active)).tolist():
            first_dead.setdefault(int(uid), round_index)
    churn.reset()
    return tuple(sorted(first_dead.items()))
