"""Composable fault injection for the dissemination engines.

The adversary axis controls *topology*; this module adds the orthogonal
*fault* axis the gossip literature stress-tests against:

* **loss** — per-edge Bernoulli erasure of one round's (sender, receiver)
  delivery (a unicast erasure / collision model, not a sender failure: the
  same broadcast can reach some neighbours and miss others);
* **duplication** — per-edge Bernoulli repetition: the receiver processes
  the same message twice that round (re-broadcast echo);
* **crashes** — per-node radio death over scheduled intervals: a crashed
  node neither transmits nor receives.  ``(uid, down_round)`` entries are
  permanent (the node never re-attaches); ``(uid, down_round, up_round)``
  entries are crash–recovery intervals — the node rejoins at ``up_round``
  with its pre-crash knowledge frozen (stale-state rejoin), having missed
  every round in ``[down_round, up_round)``;
* **partitions** — a :class:`PartitionModel` splits the node set into
  groups for scheduled round windows: cross-group edges simply do not
  exist while a window is open, and the network heals when it closes;
* **adaptive strategies** — a :class:`FaultStrategy` targets structure
  instead of flipping coins: bridge/cut-edge loss
  (:class:`BridgeLossStrategy`), highest-degree crash targeting
  (:class:`TargetedCrashStrategy`), and budgeted adversaries that spend a
  global loss budget on spanning-structure edges
  (:class:`BudgetedLossStrategy`);
* **Byzantine coded senders** — nodes whose coded wire traffic is replaced
  by adversarial GF(2) vectors: ``"malformed"`` vectors lie outside the
  source span (receivers verify against a :class:`SpanGuard` — the
  homomorphic-signature model — and discard them), ``"replay"`` re-sends a
  fixed in-span source vector (it verifies, so receivers insert it; it is
  simply almost never innovative);
* **radio collisions** — a :class:`CollisionModel` applies the classic
  radio-network reception rule per round: a receiver hearing two or more
  simultaneous senders over the effective CSR gets nothing (or, with
  ``capture``, keeps only the lowest-uid sender);
* **quorum membership** — a :class:`QuorumModel` declares ``f`` fake nodes
  among ``n >= 2f + 1`` (the ByzQuorum membership shape): fake nodes run
  the protocol but are not honest quorum members, never originate honest
  tokens, and are excluded from survivor metrics and stop rules;
* **state-aware strategies** — strategies with ``wants_state = True``
  additionally receive a read-only :class:`StateView` of protocol progress
  (per-node knowledge counts and coded ranks) and can target the
  least-knowledgeable node (:class:`StragglerIsolationStrategy`) or the
  knowledge frontier (:class:`FrontierLossStrategy`).

A :class:`FaultModel` is a frozen, picklable description.  The runner binds
it once per run (:meth:`FaultModel.bind`) against a dedicated spawned rng
stream, and each round proceeds through a :class:`RoundFaultPlan`:

1. ``begin_round`` — draws the Byzantine wire vectors (topology-independent,
   ascending uid) and snapshots which nodes are down this round from the
   crash intervals;
2. ``bind_edges`` — consults the adaptive strategy (which sees the round's
   canonical CSR and may target edges or crash nodes), draws per-edge
   loss/duplication, applies the radio collision rule to what would have
   been delivered, and edits everything into the *effective* CSR: crashed
   endpoints, partition-crossing edges, lost edges and collided edges
   removed, duplicated edges repeated adjacently.

All three engines consume the same effective CSR (and the identical draw
order), which is what keeps faulted :class:`~repro.simulation.metrics.RunMetrics`
byte-identical across kernel / mask / legacy.  Because strategies may crash
nodes mid-`bind_edges`, engines must read ``plan.down`` only *after*
``bind_edges`` has run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gf import GF2Basis
from .dynamics import packed_words, spanning_structure

__all__ = [
    "BoundFaults",
    "BridgeLossStrategy",
    "BudgetedLossStrategy",
    "CollisionModel",
    "FaultModel",
    "FaultStrategy",
    "FrontierLossStrategy",
    "PartitionModel",
    "QuorumModel",
    "RoundFaultPlan",
    "RoundFaultStats",
    "SpanGuard",
    "StateView",
    "StragglerIsolationStrategy",
    "TargetedCrashStrategy",
    "crash_schedule_from_churn",
]

_BYZANTINE_MODES = ("malformed", "replay")
_NEVER = np.iinfo(np.int64).max


# ----------------------------------------------------------------------
# adaptive strategies (the FaultStrategy seam)
# ----------------------------------------------------------------------
class StateView:
    """Read-only protocol-progress snapshot for state-aware strategies.

    The engines expose exactly the two vectorized columns the trace layer
    already extracts — per-node knowledge counts and coded generation ranks
    — snapshotted after compose and before delivery, so the view is
    engine-invariant by the same parity contract that pins trace content.
    Strategies must treat the arrays as read-only.
    """

    __slots__ = ("known_counts", "coded_ranks")

    def __init__(self, known_counts, coded_ranks):
        self.known_counts = np.asarray(known_counts, dtype=np.int64)
        self.coded_ranks = np.asarray(coded_ranks, dtype=np.int64)

    def progress(self) -> np.ndarray:
        """Per-node progress score: tokens known or coded rank, whichever
        is larger (a broadcasting node's knowledge rides in its rank)."""
        return np.maximum(self.known_counts, self.coded_ranks)


class FaultStrategy:
    """Declarative adaptive fault adversary behind :class:`FaultModel`.

    A strategy is frozen plain data (so scenario fault factories pickle into
    sweep workers, REP201) and is *bound* once per run.  The bound state's
    ``plan_round`` is consulted inside :meth:`RoundFaultPlan.bind_edges`,
    after the i.i.d. loss/duplication draws but before viability is
    computed, and returns ``(extra_lost, crashed)``:

    * ``extra_lost`` — per-edge boolean over the round's canonical CSR (or
      ``None``): additional targeted erasures, OR-ed into the Bernoulli
      losses and counted as dropped deliveries;
    * ``crashed`` — uids the strategy crashes permanently *this round*
      (effective immediately: the node neither sends nor receives from the
      current round on, and leaves the survivor population).

    Any randomness must come from the ``rng`` handed in (the run's dedicated
    fault stream) — strategies drawing from global numpy state break the
    3-engine byte-identity contract (and trip lint rule REP102).

    Strategies that target protocol *progress* instead of topology set the
    class attribute ``wants_state = True``; their bound ``plan_round`` then
    receives an extra read-only :class:`StateView` argument.  The runner
    gates kernel eligibility on ``RoundKernel.supports_state_views`` the
    same way omniscient ``sees_messages`` adversaries are gated.
    """

    #: Whether plan_round needs a StateView of protocol progress.
    wants_state = False

    def bind(self, n: int) -> "BoundStrategy":
        """Create the per-run mutable state for a network of ``n`` nodes."""
        raise NotImplementedError


class BoundStrategy:
    """Per-run mutable state of a :class:`FaultStrategy`."""

    def plan_round(
        self,
        round_index: int,
        senders: np.ndarray,
        receivers: np.ndarray,
        indptr: np.ndarray,
        down: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray | None, tuple[int, ...]]:
        raise NotImplementedError


def _live_edge_row_ints(
    senders: np.ndarray,
    receivers: np.ndarray,
    down: np.ndarray,
    n: int,
) -> tuple[np.ndarray, list[int]]:
    """The round's live subgraph, packed and as python-int adjacency rows.

    Edges with a down endpoint are excluded; the packed matrix feeds
    :func:`~repro.network.dynamics.spanning_structure` and the int rows
    drive the arbitrary-precision mask BFS used for bridge checks.
    """
    live = ~down[senders] & ~down[receivers]
    s = senders[live].astype(np.int64)
    r = receivers[live].astype(np.int64)
    packed = np.zeros((n, packed_words(n)), dtype=np.uint64)
    np.bitwise_or.at(
        packed,
        (r, s >> 6),
        np.uint64(1) << (s & 63).astype(np.uint64),
    )
    stride = packed.shape[1] * 8
    data = packed.astype("<u8", copy=False).tobytes()
    rows = [
        int.from_bytes(data[u * stride : (u + 1) * stride], "little")
        for u in range(n)
    ]
    return packed, rows


def _forest_edges(packed: np.ndarray, rows: list[int], n: int) -> list[tuple[int, int]]:
    """Spanning-forest edges (u < v) that exist in the live subgraph.

    :func:`spanning_structure` returns each component's BFS tree plus repair
    edges between component representatives; only edges also present in the
    input are real, so the repair edges are filtered back out.
    """
    tree = spanning_structure(packed, n)
    stride = tree.shape[1] * 8
    data = tree.astype("<u8", copy=False).tobytes()
    edges: list[tuple[int, int]] = []
    for u in range(n):
        row = int.from_bytes(data[u * stride : (u + 1) * stride], "little")
        row &= rows[u]  # keep only edges that exist in the live subgraph
        row >>= u + 1  # each undirected edge once, as (u, v) with u < v
        while row:
            lsb = row & -row
            edges.append((u, u + lsb.bit_length()))
            row ^= lsb
    return edges


def _is_bridge(rows: list[int], u: int, v: int) -> bool:
    """Whether live edge ``(u, v)`` is a bridge: does removing it disconnect
    ``v`` from ``u``?  Arbitrary-precision mask BFS from ``u``."""
    target = 1 << v
    reached = 1 << u
    frontier = reached
    while frontier:
        grown = 0
        m = frontier
        while m:
            lsb = m & -m
            i = lsb.bit_length() - 1
            m ^= lsb
            row = rows[i]
            if i == u:
                row &= ~(1 << v)
            elif i == v:
                row &= ~(1 << u)
            grown |= row
        frontier = grown & ~reached
        reached |= frontier
        if reached & target:
            return False
    return True


def _edge_positions_lost(
    senders: np.ndarray,
    receivers: np.ndarray,
    n: int,
    pairs: list[tuple[int, int]],
) -> np.ndarray:
    """Boolean over the CSR edge list marking both directions of ``pairs``."""
    keys = senders.astype(np.int64) * n + receivers.astype(np.int64)
    wanted = [u * n + v for u, v in pairs] + [v * n + u for u, v in pairs]
    return np.isin(keys, np.asarray(wanted, dtype=np.int64))


@dataclass(frozen=True)
class BridgeLossStrategy(FaultStrategy):
    """Erase bridges: each round, every cut edge of the live subgraph is
    independently lost with ``probability``.

    Bridges are found by checking each spanning-forest edge of the live
    subgraph (non-tree edges are never bridges); a hit erases both directed
    copies of the link for the round.  This is the worst place a given loss
    rate can land — a lost bridge partitions the round's graph.
    """

    probability: float = 1.0

    def __post_init__(self):
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )

    def bind(self, n: int) -> "BoundStrategy":
        return _BoundBridgeLoss(self, n)


class _BoundBridgeLoss(BoundStrategy):
    def __init__(self, strategy: BridgeLossStrategy, n: int):
        self.strategy = strategy
        self.n = n

    def plan_round(self, round_index, senders, receivers, indptr, down, rng):
        n = self.n
        packed, rows = _live_edge_row_ints(senders, receivers, down, n)
        bridges = [
            (u, v)
            for u, v in _forest_edges(packed, rows, n)
            if _is_bridge(rows, u, v)
        ]
        if not bridges:
            return None, ()
        hit = rng.random(len(bridges)) < self.strategy.probability
        chosen = [edge for edge, h in zip(bridges, hit.tolist()) if h]
        if not chosen:
            return None, ()
        return _edge_positions_lost(senders, receivers, n, chosen), ()


@dataclass(frozen=True)
class TargetedCrashStrategy(FaultStrategy):
    """Permanently crash the highest-degree live node on a schedule.

    Starting at round ``start`` and every ``period`` rounds after, the node
    with the most live neighbours (lowest uid on ties) is crashed, up to
    ``limit`` victims total.  Deterministic — no randomness is consumed, so
    the strategy composes with any stochastic axis without perturbing its
    draws.
    """

    start: int = 0
    period: int = 1
    limit: int = 1

    def __post_init__(self):
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.period < 1:
            raise ValueError(f"period must be >= 1, got {self.period}")
        if self.limit < 0:
            raise ValueError(f"limit must be >= 0, got {self.limit}")

    def bind(self, n: int) -> "BoundStrategy":
        return _BoundTargetedCrash(self, n)


class _BoundTargetedCrash(BoundStrategy):
    def __init__(self, strategy: TargetedCrashStrategy, n: int):
        self.strategy = strategy
        self.n = n
        self.victims = 0

    def plan_round(self, round_index, senders, receivers, indptr, down, rng):
        s = self.strategy
        if (
            self.victims >= s.limit
            or round_index < s.start
            or (round_index - s.start) % s.period
        ):
            return None, ()
        live = ~down[senders] & ~down[receivers]
        degree = np.bincount(receivers[live], minlength=self.n).astype(np.int64)
        # (degree, lowest uid) priority over live nodes only.
        key = degree * self.n + (self.n - 1 - np.arange(self.n, dtype=np.int64))
        key[down] = -1
        uid = int(np.argmax(key))
        if key[uid] < 0:
            return None, ()
        self.victims += 1
        return None, (uid,)


@dataclass(frozen=True)
class BudgetedLossStrategy(FaultStrategy):
    """Spend a global loss budget where it hurts most.

    Each round the adversary erases up to ``per_round`` spanning-forest
    links of the live subgraph (both directions each), lowest ``(u, v)``
    first, until the run-wide ``budget`` of link erasures is exhausted.
    Deterministic, so the hypothesis invariant "total targeted erasures
    never exceed the budget" is exact rather than probabilistic.
    """

    budget: int = 8
    per_round: int = 1

    def __post_init__(self):
        if self.budget < 0:
            raise ValueError(f"budget must be >= 0, got {self.budget}")
        if self.per_round < 1:
            raise ValueError(f"per_round must be >= 1, got {self.per_round}")

    def bind(self, n: int) -> "BoundStrategy":
        return _BoundBudgetedLoss(self, n)


class _BoundBudgetedLoss(BoundStrategy):
    def __init__(self, strategy: BudgetedLossStrategy, n: int):
        self.strategy = strategy
        self.n = n
        self.spent = 0

    def plan_round(self, round_index, senders, receivers, indptr, down, rng):
        s = self.strategy
        remaining = s.budget - self.spent
        if remaining <= 0:
            return None, ()
        packed, rows = _live_edge_row_ints(senders, receivers, down, self.n)
        targets = sorted(_forest_edges(packed, rows, self.n))
        targets = targets[: min(s.per_round, remaining)]
        if not targets:
            return None, ()
        self.spent += len(targets)
        return _edge_positions_lost(senders, receivers, self.n, targets), ()


def _bernoulli_subset(
    candidates: np.ndarray, probability: float, rng: np.random.Generator
) -> np.ndarray | None:
    """Keep each candidate edge with ``probability``; None when none remain.

    At ``probability == 1.0`` no randomness is consumed (the strategy is
    deterministic and composes with stochastic axes without perturbing
    their draws); otherwise one Bernoulli per candidate edge, drawn in CSR
    order from the fault stream.
    """
    if not candidates.any():
        return None
    if probability >= 1.0:
        return candidates
    positions = np.flatnonzero(candidates)
    hit = rng.random(positions.size) < probability
    if not hit.any():
        return None
    lost = np.zeros(candidates.size, dtype=bool)
    lost[positions[hit]] = True
    return lost


@dataclass(frozen=True)
class StragglerIsolationStrategy(FaultStrategy):
    """Isolate the least-knowledgeable node: each round, every live edge
    incident to the straggler (the live node with the smallest
    :meth:`StateView.progress` score, lowest uid on ties) is independently
    lost with ``probability``.

    This is the protocol-state-aware worst case for gossip: the adversary
    spends its erasures exactly where dissemination still has work to do,
    starving the node the protocol most needs to reach.
    """

    probability: float = 1.0
    wants_state = True

    def __post_init__(self):
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )

    def bind(self, n: int) -> "BoundStrategy":
        return _BoundStragglerIsolation(self, n)


class _BoundStragglerIsolation(BoundStrategy):
    def __init__(self, strategy: StragglerIsolationStrategy, n: int):
        self.strategy = strategy
        self.n = n

    def plan_round(self, round_index, senders, receivers, indptr, down, rng, state):
        live = ~down
        if not live.any():
            return None, ()
        score = np.where(live, state.progress(), _NEVER)
        straggler = int(np.argmin(score))
        incident = (
            ((senders == straggler) | (receivers == straggler))
            & ~down[senders]
            & ~down[receivers]
        )
        lost = _bernoulli_subset(incident, self.strategy.probability, rng)
        return lost, ()


@dataclass(frozen=True)
class FrontierLossStrategy(FaultStrategy):
    """Drop edges crossing the knowledge frontier: each round, every live
    edge whose sender's :meth:`StateView.progress` score strictly exceeds
    its receiver's is independently lost with ``probability``.

    Frontier edges are exactly the ones over which knowledge can flow
    downhill, so this adversary attacks useful transfers while leaving
    already-converged regions untouched.
    """

    probability: float = 1.0
    wants_state = True

    def __post_init__(self):
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )

    def bind(self, n: int) -> "BoundStrategy":
        return _BoundFrontierLoss(self, n)


class _BoundFrontierLoss(BoundStrategy):
    def __init__(self, strategy: FrontierLossStrategy, n: int):
        self.strategy = strategy
        self.n = n

    def plan_round(self, round_index, senders, receivers, indptr, down, rng, state):
        score = state.progress()
        frontier = (
            ~down[senders]
            & ~down[receivers]
            & (score[senders] > score[receivers])
        )
        lost = _bernoulli_subset(frontier, self.strategy.probability, rng)
        return lost, ()


# ----------------------------------------------------------------------
# partitions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PartitionModel:
    """Scheduled network partitions that heal.

    While a window ``[start, end)`` is open the node set is split into
    ``groups`` classes by ``uid % groups`` and every cross-group edge is
    removed from the round's effective CSR — the link does not exist, so
    nothing is counted as dropped.  Windows must not overlap; between
    windows the network is whole again.
    """

    windows: tuple[tuple[int, int], ...] = ()
    groups: int = 2

    def __post_init__(self):
        if self.groups < 2:
            raise ValueError(f"groups must be >= 2, got {self.groups}")
        windows = tuple(
            sorted((int(start), int(end)) for start, end in self.windows)
        )
        previous_end = 0
        for start, end in windows:
            if start < 0:
                raise ValueError(f"window start must be >= 0, got {start}")
            if end <= start:
                raise ValueError(f"window [{start}, {end}) is empty or inverted")
            if start < previous_end:
                raise ValueError("partition windows must not overlap")
            previous_end = end
        object.__setattr__(self, "windows", windows)

    def active_at(self, round_index: int) -> bool:
        """Whether some partition window is open at ``round_index``."""
        return any(start <= round_index < end for start, end in self.windows)


# ----------------------------------------------------------------------
# radio collisions and quorum membership
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CollisionModel:
    """Radio-style collision rounds over the effective CSR.

    With ``probability`` per round (one Bernoulli from the fault stream,
    drawn only when ``0 < probability < 1``) the round is a *collision
    round*: deliveries are grouped by receiver, and a receiver hearing two
    or more simultaneous senders receives nothing — the classic
    radio-network reception rule.  With ``capture`` the strongest signal
    wins instead: the lowest-uid delivering sender gets through and every
    other simultaneous delivery is collided away.

    Only deliveries that would otherwise have happened collide: silent
    senders, crashed endpoints, lost edges and discarded Byzantine copies
    occupy no air.  A duplicated edge is one transmission (its echo rides
    or dies with it).
    """

    probability: float = 1.0
    capture: bool = False

    def __post_init__(self):
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )


@dataclass(frozen=True)
class QuorumModel:
    """Honest/fake quorum membership (the ByzQuorum shape): ``f`` fake
    nodes among ``n >= 2f + 1``.

    Fake nodes run the protocol like everyone else — they relay, vote and
    receive — but they are not honest quorum members: they must never
    originate honest tokens (the runner rejects placements that seed them),
    they are excluded from :attr:`BoundFaults.survivor_indices`, and
    completion, stop rules and survivor metrics are computed over the
    honest quorum only.  Byzantine sender selection composes freely: a fake
    node may also be a Byzantine sender.
    """

    fake: tuple[int, ...] = ()

    def __post_init__(self):
        fake = tuple(sorted(int(uid) for uid in self.fake))
        if not fake:
            raise ValueError("a QuorumModel needs at least one fake node")
        if len(set(fake)) != len(fake):
            raise ValueError("duplicate fake quorum uids")
        if fake[0] < 0:
            raise ValueError("fake quorum uids must be >= 0")
        object.__setattr__(self, "fake", fake)


# ----------------------------------------------------------------------
# the fault model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultModel:
    """Declarative description of one run's fault injection.

    Attributes
    ----------
    loss:
        Per-edge Bernoulli erasure probability in ``[0, 1]``.
    duplication:
        Per-edge Bernoulli duplication probability in ``[0, 1]`` (an
        affected delivery is processed twice that round).
    crashes:
        Crash schedule entries, each either ``(uid, down_round)`` — node
        ``uid`` is silent and deaf from ``down_round`` on, permanently — or
        ``(uid, down_round, up_round)`` — the node is down exactly during
        ``[down_round, up_round)`` and rejoins with its pre-crash knowledge
        frozen.  A uid may appear in several entries as long as its
        intervals do not overlap (a permanent entry overlaps everything
        after it).
    byzantine:
        Node uids whose coded wire traffic is adversarially substituted.
        Protocols without a verifiable static generation (the forwarding
        family) treat Byzantine traffic as unverifiable and discard it.
    byzantine_mode:
        ``"malformed"`` (out-of-span vectors, rejected by the span guard)
        or ``"replay"`` (a fixed in-span source vector, accepted but almost
        never innovative).
    partitions:
        Optional :class:`PartitionModel` removing cross-group edges during
        scheduled windows.
    strategy:
        Optional :class:`FaultStrategy` — an adaptive adversary consulted
        every round with the round's topology (and, for ``wants_state``
        strategies, a :class:`StateView` of protocol progress).
    collisions:
        Optional :class:`CollisionModel` applying the radio reception rule
        to each collision round's deliveries.
    quorum:
        Optional :class:`QuorumModel` declaring fake quorum members that
        survivor metrics and stop rules exclude.

    The model is frozen and built from plain data, so scenario fault
    factories pickle into sweep workers (REP201).
    """

    loss: float = 0.0
    duplication: float = 0.0
    crashes: tuple[tuple[int, ...], ...] = ()
    byzantine: tuple[int, ...] = ()
    byzantine_mode: str = "malformed"
    partitions: PartitionModel | None = None
    strategy: FaultStrategy | None = None
    collisions: CollisionModel | None = None
    quorum: QuorumModel | None = None

    def __post_init__(self):
        if not 0.0 <= self.loss <= 1.0:
            raise ValueError(f"loss must be in [0, 1], got {self.loss}")
        if not 0.0 <= self.duplication <= 1.0:
            raise ValueError(f"duplication must be in [0, 1], got {self.duplication}")
        if self.byzantine_mode not in _BYZANTINE_MODES:
            raise ValueError(
                f"byzantine_mode must be one of {_BYZANTINE_MODES}, "
                f"got {self.byzantine_mode!r}"
            )
        crashes = tuple(
            sorted(tuple(int(value) for value in entry) for entry in self.crashes)
        )
        intervals: dict[int, list[tuple[int, int]]] = {}
        for entry in crashes:
            if len(entry) == 2:
                uid, down = entry
                up = _NEVER
            elif len(entry) == 3:
                uid, down, up = entry
                if up <= down:
                    raise ValueError(
                        f"recovery round must follow the crash round, got {entry}"
                    )
            else:
                raise ValueError(
                    f"crash entries are (uid, down) or (uid, down, up), got {entry}"
                )
            if uid < 0:
                raise ValueError(f"crash uid must be >= 0, got {uid}")
            if down < 0:
                raise ValueError(f"crash round must be >= 0, got {down}")
            intervals.setdefault(uid, []).append((down, up))
        for uid, spans in intervals.items():
            previous_up = -1
            for down, up in sorted(spans):
                if down < previous_up:
                    raise ValueError(
                        f"overlapping crash intervals for node {uid}"
                    )
                previous_up = up
        byzantine = tuple(sorted(int(uid) for uid in self.byzantine))
        if len(set(byzantine)) != len(byzantine):
            raise ValueError("duplicate Byzantine uids")
        if byzantine and byzantine[0] < 0:
            raise ValueError("Byzantine uids must be >= 0")
        overlap = set(intervals) & set(byzantine)
        if overlap:
            raise ValueError(
                f"nodes cannot be both crashed and Byzantine: {sorted(overlap)}"
            )
        if self.partitions is not None and not isinstance(
            self.partitions, PartitionModel
        ):
            raise ValueError("partitions must be a PartitionModel")
        if self.strategy is not None and not isinstance(
            self.strategy, FaultStrategy
        ):
            raise ValueError("strategy must be a FaultStrategy")
        if self.collisions is not None and not isinstance(
            self.collisions, CollisionModel
        ):
            raise ValueError("collisions must be a CollisionModel")
        if self.quorum is not None and not isinstance(self.quorum, QuorumModel):
            raise ValueError("quorum must be a QuorumModel")
        object.__setattr__(self, "crashes", crashes)
        object.__setattr__(self, "byzantine", byzantine)

    @property
    def active(self) -> bool:
        """Whether this model injects any fault at all."""
        return bool(
            self.loss
            or self.duplication
            or self.crashes
            or self.byzantine
            or self.partitions is not None
            or self.strategy is not None
            or self.collisions is not None
            or self.quorum is not None
        )

    def bind(self, n: int, rng: np.random.Generator) -> "BoundFaults":
        """Bind the model to a network size and a dedicated rng stream."""
        return BoundFaults(self, n, rng)


class SpanGuard:
    """Receiver-side verification oracle for coded wire traffic.

    Models homomorphic-signature verification: any GF(2) vector inside the
    span of the instance's source vectors verifies, anything outside is
    provably forged and discarded before it can touch the receiver's basis
    (so malformed vectors can never raise a ``GF2BasisBatch`` rank past the
    source span).
    """

    def __init__(self, length: int, source_masks):
        if length <= 0:
            raise ValueError(f"vector length must be positive, got {length}")
        self.length = int(length)
        self._basis = GF2Basis(self.length)
        self._first = 0
        for mask in source_masks:
            mask = int(mask)
            if mask and not self._first:
                self._first = mask
            self._basis.insert(mask)
        if not self._first:
            raise ValueError("SpanGuard needs at least one non-zero source vector")

    @property
    def rank(self) -> int:
        return self._basis.rank

    @property
    def replay_mask(self) -> int:
        """The fixed in-span vector Byzantine replay senders transmit."""
        return self._first

    def contains(self, mask: int) -> bool:
        """Whether ``mask`` verifies (lies inside the source span)."""
        return self._basis.contains(mask)

    def sample_outside(self, rng: np.random.Generator) -> int:
        """Rejection-sample a vector provably outside the source span."""
        if self._basis.rank >= self.length:
            raise ValueError(
                "the source span covers the whole space; no malformed vector exists"
            )
        nbytes = (self.length + 7) // 8
        top = (1 << self.length) - 1
        while True:
            mask = int.from_bytes(rng.bytes(nbytes), "little") & top
            if not self._basis.contains(mask):
                return mask


@dataclass(frozen=True)
class RoundFaultStats:
    """One round's fault accounting (engine-invariant by construction)."""

    dropped: int
    duplicated: int
    corrupted: int
    discarded: int
    collided: int = 0


class BoundFaults:
    """A :class:`FaultModel` bound to a run: size, rng stream, crash clock."""

    def __init__(self, model: FaultModel, n: int, rng: np.random.Generator):
        iv_uid: list[int] = []
        iv_down: list[int] = []
        iv_up: list[int] = []
        permanent = np.zeros(n, dtype=bool)
        for entry in model.crashes:
            uid = entry[0]
            if uid >= n:
                raise ValueError(f"crash uid {uid} out of range for n={n}")
            iv_uid.append(uid)
            iv_down.append(entry[1])
            if len(entry) == 3:
                iv_up.append(entry[2])
            else:
                iv_up.append(_NEVER)
                permanent[uid] = True
        for uid in model.byzantine:
            if uid >= n:
                raise ValueError(f"Byzantine uid {uid} out of range for n={n}")
        fake = np.zeros(n, dtype=bool)
        if model.quorum is not None:
            f = len(model.quorum.fake)
            if model.quorum.fake[-1] >= n:
                raise ValueError(
                    f"fake quorum uid {model.quorum.fake[-1]} out of range for n={n}"
                )
            if n < 2 * f + 1:
                raise ValueError(
                    f"a quorum with {f} fake nodes needs n >= {2 * f + 1}, got n={n}"
                )
            fake[list(model.quorum.fake)] = True
        self.model = model
        self.n = int(n)
        self.rng = rng
        self.iv_uid = np.asarray(iv_uid, dtype=np.int64)
        self.iv_down = np.asarray(iv_down, dtype=np.int64)
        self.iv_up = np.asarray(iv_up, dtype=np.int64)
        self.permanent = permanent
        #: Nodes the adaptive strategy crashed mid-run (grows monotonically).
        self.strategy_crashed = np.zeros(n, dtype=bool)
        self.strategy_state: BoundStrategy | None = (
            model.strategy.bind(n) if model.strategy is not None else None
        )
        self.byz = np.zeros(n, dtype=bool)
        if model.byzantine:
            self.byz[list(model.byzantine)] = True
        #: Fake quorum members (never honest survivors).
        self.fake = fake
        self.guard: SpanGuard | None = None

    @property
    def survivor_indices(self) -> np.ndarray:
        """Nodes never permanently crashed — the population completion and
        correctness are measured over.  Recovering nodes *are* survivors
        (they are expected to reconverge after rejoining), Byzantine nodes
        are survivors (their receive path is honest), fake quorum members
        are *not* (the honest quorum is the population that counts), and
        the set shrinks when an adaptive strategy claims a victim — query
        it per round.
        """
        return np.flatnonzero(
            ~self.permanent & ~self.strategy_crashed & ~self.fake
        )

    @property
    def wants_state(self) -> bool:
        """Whether the bound strategy needs a per-round StateView."""
        return self.model.strategy is not None and self.model.strategy.wants_state

    def down_at(self, round_index: int) -> np.ndarray:
        """Boolean node vector: who is crashed during ``round_index``."""
        down = np.zeros(self.n, dtype=bool)
        if self.iv_uid.size:
            hits = (self.iv_down <= round_index) & (round_index < self.iv_up)
            down[self.iv_uid[hits]] = True
        down |= self.strategy_crashed
        return down

    def recovery_metrics(
        self, rounds_executed: int, survivor_completion_round: int | None
    ) -> tuple[int, int | None]:
        """Post-run recovery accounting: (recoveries, reconvergence rounds).

        A recovery is a crash interval whose node actually came back up
        within the executed window.  Reconvergence is measured from the
        *last* such rejoin to the survivor completion round (``None`` when
        the survivors never completed or nothing recovered).
        """
        observed = (self.iv_up != _NEVER) & (self.iv_up < rounds_executed)
        recoveries = int(np.count_nonzero(observed))
        if recoveries and survivor_completion_round is not None:
            last_up = int(self.iv_up[observed].max())
            return recoveries, max(0, survivor_completion_round - last_up)
        return recoveries, None

    @property
    def wants_guard(self) -> bool:
        """Whether Byzantine faults need a span guard attached."""
        return bool(self.model.byzantine)

    def attach_guard(self, guard: SpanGuard | None) -> None:
        """Attach the protocol's span guard (None: Byzantine traffic is
        unverifiable for this protocol and always discarded).

        When the source span already covers the whole vector space, no
        out-of-span vector exists, so a ``"malformed"`` attack is
        impossible (``sample_outside`` would loop/raise mid-run).  The
        guard is dropped instead: every Byzantine copy is discarded,
        matching the unverifiable (``guard=None``) path and the mode's
        observable outcome — malformed traffic never reaches a basis.
        """
        if (
            guard is not None
            and self.model.byzantine_mode == "malformed"
            and guard.rank >= guard.length
        ):
            guard = None
        self.guard = guard

    def begin_round(self, round_index: int) -> "RoundFaultPlan":
        """Start one round: crash snapshot plus Byzantine wire draws.

        The Byzantine draws happen here — before the adversary sees any
        message and before the topology exists — in ascending uid order, so
        the rng stream is identical across engines and independent of the
        round's graph.
        """
        down = self.down_at(round_index)
        wires: dict[int, int] = {}
        guard = self.guard
        if guard is not None:
            if self.model.byzantine_mode == "replay":
                for uid in self.model.byzantine:
                    wires[uid] = guard.replay_mask
            else:
                for uid in self.model.byzantine:
                    wires[uid] = guard.sample_outside(self.rng)
        return RoundFaultPlan(self, down, wires, round_index)


class RoundFaultPlan:
    """One round's bound fault draws and the effective-CSR editor."""

    def __init__(
        self,
        bound: BoundFaults,
        down: np.ndarray,
        wires: dict[int, int],
        round_index: int = 0,
    ):
        self.bound = bound
        self.down = down
        self.round_index = int(round_index)
        #: Byzantine uid -> wire vector drawn/fixed for this round.
        self.wire_vectors = wires
        #: Non-empty only in replay mode with a guard: the substituted
        #: traffic verifies, so it must actually flow to receivers.
        self.substitute = (
            wires if bound.model.byzantine_mode == "replay" else {}
        )
        self._senders: np.ndarray | None = None
        self._lost: np.ndarray | None = None
        self._extra: np.ndarray | None = None
        self._viable: np.ndarray | None = None
        self._rejected: np.ndarray | None = None
        self._collided: np.ndarray | None = None

    def bind_edges(
        self,
        indices: np.ndarray,
        indptr: np.ndarray,
        active: np.ndarray | None = None,
        state: StateView | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw per-edge faults over the canonical CSR; return the effective CSR.

        The effective CSR removes edges with a crashed endpoint, removes
        partition-crossing edges while a window is open, removes lost edges
        (Bernoulli plus strategy-targeted), discarded (malformed-Byzantine)
        edges and collided edges, and repeats duplicated edges adjacently —
        per-receiver segments stay in the engines' canonical
        ascending-sender order with duplicates adjacent.  Loss is drawn
        before duplication, each only when its probability is non-zero, the
        adaptive strategy is consulted after both, and the collision
        round's single Bernoulli (drawn only when ``0 < probability < 1``)
        comes last, so benign axes consume no rng and existing stochastic
        axes keep their draw order.  Strategy crashes take effect
        immediately: ``self.down`` is final only after this method returns,
        so engines must compute their sending mask afterwards.

        ``active`` is the engines' compose-time transmission mask (who
        composed a message this round); collisions only count transmitting
        senders as occupying air.  ``state`` is the read-only
        :class:`StateView` a ``wants_state`` strategy requires.
        """
        model = self.bound.model
        rng = self.bound.rng
        n = self.bound.n
        edges = indices.size
        senders = indices
        receivers = np.repeat(np.arange(n), np.diff(indptr))
        lost = (
            rng.random(edges) < model.loss
            if model.loss > 0.0
            else np.zeros(edges, dtype=bool)
        )
        extra = (
            rng.random(edges) < model.duplication
            if model.duplication > 0.0
            else np.zeros(edges, dtype=bool)
        )
        strategy = self.bound.strategy_state
        if strategy is not None:
            if self.bound.wants_state:
                if state is None:
                    raise RuntimeError(
                        f"{type(model.strategy).__name__} wants protocol state "
                        "but the engine supplied no StateView to bind_edges"
                    )
                targeted, crashed = strategy.plan_round(
                    self.round_index, senders, receivers, indptr, self.down,
                    rng, state,
                )
            else:
                targeted, crashed = strategy.plan_round(
                    self.round_index, senders, receivers, indptr, self.down, rng
                )
            for uid in crashed:
                self.bound.strategy_crashed[uid] = True
                self.down[uid] = True
            if targeted is not None:
                lost |= targeted
        viable = ~self.down[senders] & ~self.down[receivers]
        if model.partitions is not None and model.partitions.active_at(
            self.round_index
        ):
            group = np.arange(n, dtype=np.int64) % model.partitions.groups
            viable &= group[senders] == group[receivers]
        byz_edge = self.bound.byz[senders]
        if self.substitute:
            rejected = np.zeros(edges, dtype=bool)
        else:
            # Malformed mode, or no span guard for this protocol: every
            # Byzantine copy is discarded at the receiver.
            rejected = byz_edge
        collided = np.zeros(edges, dtype=bool)
        collisions = model.collisions
        if collisions is not None:
            p = collisions.probability
            # One scalar Bernoulli per round from the fault stream, after
            # every per-edge draw; the endpoints consume no randomness.
            collide_round = p >= 1.0 or (p > 0.0 and bool(rng.random() < p))
            if collide_round and edges:
                transmitting = (
                    ~self.down if active is None else (active & ~self.down)
                )
                delivering = viable & ~lost & ~rejected & transmitting[senders]
                flows = np.concatenate(
                    (
                        np.zeros(1, dtype=np.int64),
                        np.cumsum(delivering, dtype=np.int64),
                    )
                )
                crowded = (flows[indptr[1:]] - flows[indptr[:-1]]) >= 2
                collided = delivering & crowded[receivers]
                if collisions.capture:
                    # CSR segments ascend by sender uid, so the first
                    # delivering edge of a segment is the lowest-uid sender
                    # — the capture winner keeps its delivery.
                    seg_start = np.repeat(flows[indptr[:-1]], np.diff(indptr))
                    collided &= (flows[:-1] - seg_start) != 0
        copies = np.where(
            viable & ~lost & ~rejected & ~collided,
            1 + extra.astype(np.int64),
            0,
        )
        eff_indices = np.repeat(senders, copies)
        cumulative = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(copies, dtype=np.int64))
        )
        eff_indptr = cumulative[indptr]
        self._senders = senders
        self._lost = lost
        self._extra = extra
        self._viable = viable
        self._rejected = rejected
        self._byz_edge = byz_edge
        self._collided = collided
        return eff_indices, eff_indptr

    @property
    def partition_active(self) -> bool:
        """Whether a scheduled partition window is open this round."""
        partitions = self.bound.model.partitions
        return partitions is not None and partitions.active_at(self.round_index)

    def account(self, sending: np.ndarray) -> RoundFaultStats:
        """Per-round fault counters, given which nodes actually broadcast.

        ``sending`` must already exclude down nodes.  A transmission toward
        a crashed receiver is counted nowhere (the radio it would reach is
        off), and a partition-crossing edge simply does not exist; faults
        only score against deliveries that would otherwise have happened.
        Collided copies count as ``collided`` and nowhere else (a collided
        duplicate or Byzantine copy died on the air, not at the receiver).
        """
        if self._senders is None:
            raise RuntimeError("bind_edges must run before account")
        live = sending[self._senders] & self._viable
        dropped = int(np.count_nonzero(self._lost & live))
        surviving = ~self._lost & live
        delivered = surviving & ~self._collided
        duplicated = int(np.count_nonzero(self._extra & delivered))
        copies = 1 + self._extra.astype(np.int64)
        corrupted = int(copies[delivered & self._byz_edge].sum())
        discarded = int(copies[delivered & self._rejected].sum())
        collided = int(copies[surviving & self._collided].sum())
        return RoundFaultStats(
            dropped=dropped,
            duplicated=duplicated,
            corrupted=corrupted,
            discarded=discarded,
            collided=collided,
        )


def crash_schedule_from_churn(
    churn, rounds: int, *, recoveries: bool = False
) -> tuple[tuple[int, ...], ...]:
    """Derive a crash schedule from a churn replay.

    Replays ``rounds`` rounds of a :class:`~repro.network.dynamics.ChurnProcess`
    built with ``record_activity=True`` and returns a
    ``FaultModel.crashes`` schedule.  The process is reset before and after
    the replay, so the caller can still hand it to an engine.

    With ``recoveries=False`` (for true-crash semantics, pair with
    ``lifeline=False``) each departed node contributes one permanent
    ``(uid, first_dead_round)`` entry.  With ``recoveries=True`` every
    maximal inactive run becomes an interval: ``(uid, down, up)`` when the
    node re-attached within the window, or a permanent ``(uid, down)`` when
    it was still down at the window's end — including a departure on the
    final replayed round, which a naive down/up event pairing would
    silently drop.
    """
    if not getattr(churn, "record_activity", False):
        raise ValueError("crash_schedule_from_churn needs record_activity=True")
    churn.reset()
    churn.next_batch(rounds)
    history = [np.asarray(active) for active in churn.activity_history[:rounds]]
    churn.reset()
    if not recoveries:
        first_dead: dict[int, int] = {}
        for round_index, active in enumerate(history):
            for uid in np.flatnonzero(~active).tolist():
                first_dead.setdefault(int(uid), round_index)
        return tuple(sorted(first_dead.items()))
    intervals: list[tuple[int, ...]] = []
    if not history:
        return ()
    n = history[0].size
    for uid in range(n):
        down_round: int | None = None
        for round_index, active in enumerate(history):
            if not active[uid]:
                if down_round is None:
                    down_round = round_index
            elif down_round is not None:
                intervals.append((uid, down_round, round_index))
                down_round = None
        if down_round is not None:
            # Still down when the window closed (even if the run started on
            # the very last round): permanent from the caller's viewpoint.
            intervals.append((uid, down_round))
    return tuple(sorted(intervals))
