"""Dynamic-network scenario subsystem: packed-native topology schedules.

The engines (PR 2/3) made round *execution* cheap; what remained expensive —
and thin — was round *generation*: every in-repo adversary builds one
topology per round in Python, and the scenario space stopped at hand-written
shapes (rings, stars, cliques).  This module turns whole topology
*schedules* into first-class packed data: a :class:`DynamicsProcess` yields
batches of rounds as ``(rounds, n, ceil(n/64))`` ``uint64`` adjacency
matrices — the same packed form :meth:`Topology.packed_adjacency` feeds the
kernel engine — with all per-edge work vectorised in numpy.

Three layers:

* **Processes** generate raw dynamic-graph evolutions studied in the
  dynamic-network literature: :class:`EdgeMarkovProcess` (independent
  per-edge birth/death chains, the standard *evolving graph* model),
  :class:`RandomWaypointProcess` (geometric radio connectivity under
  random-waypoint mobility, as in ad-hoc/radio-network work),
  :class:`ChurnProcess` (per-round bounded join/leave with inactive nodes
  isolated), :class:`DegreeBoundedRewiringProcess` (worst-case-flavoured
  edge rewiring under a degree cap) and :class:`PrecomputedSchedule`
  (replay of a recorded schedule).
* **Transformers** are processes wrapping processes, repairing raw
  evolutions into model-compliant adversaries: :class:`ConnectivityPatcher`
  (per-round connectivity, the paper's standing assumption on ``G(t)``)
  and :class:`TIntervalEnforcer` (sliding-window T-interval connectivity in
  the sense of Kuhn–Lynch–Oshman, by unioning a cheap spanning structure
  derived from each window's intersection).
* :class:`ScheduleAdversary` bridges any process into
  :func:`~repro.simulation.runner.run_dissemination`: topologies are served
  from buffered batches as :meth:`Topology.from_packed` views, marked
  ``pre_validated`` when the process guarantees legality, with a cheap
  ``reset()`` for sweep reuse.

The named scenario catalog built on top of these pieces lives in
:mod:`repro.scenarios`.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from .adversary import Adversary
from .topology import Topology

__all__ = [
    "DynamicsProcess",
    "EdgeMarkovProcess",
    "RandomWaypointProcess",
    "ChurnProcess",
    "DegreeBoundedRewiringProcess",
    "PrecomputedSchedule",
    "ConnectivityPatcher",
    "TIntervalEnforcer",
    "ScheduleAdversary",
    "pack_dense_adjacency",
    "packed_components",
    "packed_is_connected",
    "packed_words",
    "spanning_structure",
]


# ----------------------------------------------------------------------
# packed-matrix helpers (shared with the stability checkers)
# ----------------------------------------------------------------------


def packed_words(n: int) -> int:
    """Words per packed adjacency row (at least one, so shapes stay 2-D)."""
    return max(1, (n + 63) // 64)


def pack_dense_adjacency(dense: np.ndarray) -> np.ndarray:
    """Pack a boolean adjacency array along its last axis into uint64 words.

    ``(..., n, n)`` bool -> ``(..., n, ceil(n/64))`` uint64, LSB-first within
    each little-endian word — the exact layout of
    :meth:`Topology.packed_adjacency` (and of the kernel engine's knowledge
    matrices), so packed schedules flow into the engines without any
    re-encoding.
    """
    n = dense.shape[-1]
    words = packed_words(n)
    as_bytes = np.packbits(dense, axis=-1, bitorder="little")
    pad = words * 8 - as_bytes.shape[-1]
    if pad:
        widths = [(0, 0)] * (as_bytes.ndim - 1) + [(0, pad)]
        as_bytes = np.pad(as_bytes, widths)
    return np.ascontiguousarray(as_bytes).view(np.uint64)


def _row_masks(packed: np.ndarray, n: int) -> list[int]:
    """The packed rows as arbitrary-precision Python ints (for mask BFS)."""
    stride = packed.shape[1] * 8
    data = np.ascontiguousarray(packed).astype("<u8", copy=False).tobytes()
    return [
        int.from_bytes(data[u * stride : (u + 1) * stride], "little") for u in range(n)
    ]


def packed_components(packed: np.ndarray, n: int) -> list[int]:
    """Connected components of a packed adjacency matrix, as int bitmasks.

    Mask BFS (the word-parallel frontier expansion of
    :meth:`Topology.is_connected`), one component per unvisited seed;
    components come back ordered by their lowest member.
    """
    masks = _row_masks(packed, n)
    full = (1 << n) - 1
    seen = 0
    components: list[int] = []
    while seen != full:
        remaining = ~seen & full
        reached = remaining & -remaining
        frontier = reached
        while frontier:
            grown = 0
            m = frontier
            while m:
                lsb = m & -m
                grown |= masks[lsb.bit_length() - 1]
                m ^= lsb
            frontier = grown & ~reached
            reached |= frontier
        components.append(reached)
        seen |= reached
    return components


def packed_is_connected(packed: np.ndarray, n: int) -> bool:
    """Connectivity of a packed adjacency matrix via one mask BFS."""
    if n <= 1:
        return True
    masks = _row_masks(packed, n)
    full = (1 << n) - 1
    reached = 1
    frontier = 1
    while frontier:
        grown = 0
        m = frontier
        while m:
            lsb = m & -m
            grown |= masks[lsb.bit_length() - 1]
            m ^= lsb
        frontier = grown & ~reached
        reached |= frontier
    return reached == full


def _set_edge(packed: np.ndarray, u: int, v: int) -> None:
    packed[u, v >> 6] |= np.uint64(1) << np.uint64(v & 63)
    packed[v, u >> 6] |= np.uint64(1) << np.uint64(u & 63)


def spanning_structure(packed: np.ndarray, n: int) -> np.ndarray:
    """A connected spanning structure extending a packed adjacency matrix.

    Returns an ``(n, words)`` packed matrix holding a BFS spanning tree of
    each connected component of the input *plus* a path over the component
    representatives (lowest member of each component, ascending) — at most
    ``n - 1`` tree edges and ``components - 1`` repair edges.  Only the
    repair edges are new; every tree edge already exists in the input.  This
    is the cheap structure the :class:`TIntervalEnforcer` unions over a
    window: repairing via the *intersection's own* BFS forest keeps the
    enforced schedule as close to the raw process as connectivity allows.
    """
    masks = _row_masks(packed, n)
    out = np.zeros((n, packed_words(n)), dtype=np.uint64)
    full = (1 << n) - 1
    seen = 0
    representatives: list[int] = []
    while seen != full:
        remaining = ~seen & full
        root = (remaining & -remaining).bit_length() - 1
        representatives.append(root)
        reached = 1 << root
        frontier = [root]
        while frontier:
            next_frontier: list[int] = []
            for u in frontier:
                new = masks[u] & ~reached
                reached |= new
                while new:
                    lsb = new & -new
                    v = lsb.bit_length() - 1
                    new ^= lsb
                    _set_edge(out, u, v)
                    next_frontier.append(v)
            frontier = next_frontier
        seen |= reached
    for a, b in zip(representatives, representatives[1:]):
        _set_edge(out, a, b)
    return out


def _pack_active(active: np.ndarray, words: int) -> np.ndarray:
    """A boolean node vector as one packed row (the column-clear mask)."""
    as_bytes = np.packbits(active, bitorder="little")
    row = np.zeros(words * 8, dtype=np.uint8)
    row[: as_bytes.size] = as_bytes
    return row.view(np.uint64)


# ----------------------------------------------------------------------
# the process contract
# ----------------------------------------------------------------------


class DynamicsProcess(abc.ABC):
    """A (possibly infinite) topology schedule generated in packed batches.

    Contract:

    * :meth:`next_batch` returns the next ``rounds`` round topologies as a
      *fresh, caller-owned* ``(rounds, n, words)`` ``uint64`` array —
      transformers mutate batches in place, so a process must never hand
      out views of internal state;
    * the schedule is a deterministic function of the constructor arguments:
      :meth:`reset` rewinds to round 0 and replays the identical schedule
      (this is what makes :class:`ScheduleAdversary.reset` cheap and sweep
      reuse sound);
    * rows are symmetric and self-loop free.  *Connectivity is not
      guaranteed* unless :attr:`guarantees_connected` is True — raw
      processes model disconnection (that is what churn and radio fading
      do), and the transformers repair them into model-compliant schedules.
    """

    #: True when every generated round is connected (and hence a legal
    #: paper-model topology) *by construction*; the transformers set it.
    guarantees_connected: bool = False

    def __init__(self, n: int):
        if n < 1:
            raise ValueError(f"need at least one node, got n={n}")
        self.n = int(n)
        self.words = packed_words(self.n)

    @abc.abstractmethod
    def reset(self) -> None:
        """Rewind to round 0; the replayed schedule must be identical."""

    @abc.abstractmethod
    def next_batch(self, rounds: int) -> np.ndarray:
        """The next ``rounds`` topologies, packed ``(rounds, n, words)``."""

    def rounds_remaining(self) -> int | None:
        """Rounds left before the schedule is exhausted (None = unbounded).

        Consumers that pull in fixed-size batches (:class:`ScheduleAdversary`)
        clamp their requests to this, so a finite recorded schedule can drive
        a shorter run without tripping its own exhaustion error.
        """
        return None

    def topologies(self, rounds: int) -> list[Topology]:
        """Materialise the next ``rounds`` rounds as :class:`Topology` objects.

        Convenience for analysis and tests (the engines consume schedules
        through :class:`ScheduleAdversary` instead).  Topologies are marked
        ``pre_validated`` exactly when the process guarantees legality.
        """
        batch = self.next_batch(rounds)
        return [
            Topology.from_packed(self.n, batch[i], pre_validated=self.guarantees_connected)
            for i in range(batch.shape[0])
        ]

    def _empty_batch(self, rounds: int) -> np.ndarray:
        return np.zeros((rounds, self.n, self.words), dtype=np.uint64)


# ----------------------------------------------------------------------
# raw processes
# ----------------------------------------------------------------------


class EdgeMarkovProcess(DynamicsProcess):
    """Independent per-edge birth/death chains (the evolving-graph model).

    Every unordered pair ``{u, v}`` runs its own two-state Markov chain:
    an absent edge appears with probability ``p_birth`` per round, a present
    edge disappears with probability ``p_death``.  The stationary edge
    density is ``p_birth / (p_birth + p_death)``; the initial state is drawn
    iid at that density (override with ``initial_density``), so the schedule
    starts in stationarity.

    Per round the whole edge set updates as three vectorised operations over
    the ``n (n - 1) / 2`` pair slots — no per-edge Python.
    """

    def __init__(
        self,
        n: int,
        p_birth: float = 0.05,
        p_death: float = 0.25,
        seed: int = 0,
        initial_density: float | None = None,
    ):
        super().__init__(n)
        for name, p in (("p_birth", p_birth), ("p_death", p_death)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        self.p_birth = float(p_birth)
        self.p_death = float(p_death)
        if initial_density is None:
            total = self.p_birth + self.p_death
            initial_density = self.p_birth / total if total > 0 else 0.0
        if not 0.0 <= initial_density <= 1.0:
            raise ValueError(f"initial_density must be in [0, 1], got {initial_density}")
        self.initial_density = float(initial_density)
        self.seed = seed
        self._iu = np.triu_indices(self.n, 1)
        self.reset()

    def reset(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        self._edges = self._rng.random(self._iu[0].size) < self.initial_density

    def next_batch(self, rounds: int) -> np.ndarray:
        n = self.n
        rows, cols = self._iu
        dense = np.zeros((rounds, n, n), dtype=bool)
        edges = self._edges
        for r in range(rounds):
            draw = self._rng.random(edges.size)
            edges = np.where(edges, draw >= self.p_death, draw < self.p_birth)
            dense[r, rows, cols] = edges
        self._edges = edges
        dense |= dense.transpose(0, 2, 1)
        return pack_dense_adjacency(dense)


class RandomWaypointProcess(DynamicsProcess):
    """Geometric radio connectivity under random-waypoint mobility.

    Nodes live in an ``area x area`` square; each picks a uniform waypoint,
    moves toward it at ``speed`` per round, and draws a fresh waypoint on
    arrival.  The round topology is the unit-disk graph of the current
    positions: an edge wherever two nodes are within ``radius``.  Positions,
    motion and the pairwise-distance adjacency are all whole-array numpy
    operations.
    """

    def __init__(
        self,
        n: int,
        radius: float,
        speed: float = 0.05,
        seed: int = 0,
        area: float = 1.0,
    ):
        super().__init__(n)
        if radius <= 0 or speed <= 0 or area <= 0:
            raise ValueError("radius, speed and area must all be positive")
        self.radius = float(radius)
        self.speed = float(speed)
        self.area = float(area)
        self.seed = seed
        self.reset()

    def reset(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        self._pos = self._rng.random((self.n, 2)) * self.area
        self._way = self._rng.random((self.n, 2)) * self.area

    def next_batch(self, rounds: int) -> np.ndarray:
        n = self.n
        r2 = self.radius * self.radius
        dense = np.zeros((rounds, n, n), dtype=bool)
        pos, way = self._pos, self._way
        for r in range(rounds):
            delta = way - pos
            dist = np.hypot(delta[:, 0], delta[:, 1])
            arrived = dist <= self.speed
            step = np.divide(
                self.speed, dist, out=np.zeros_like(dist), where=dist > 0
            )
            pos = np.where(arrived[:, None], way, pos + delta * step[:, None])
            count = int(arrived.sum())
            if count:
                way = way.copy()
                way[arrived] = self._rng.random((count, 2)) * self.area
            diff = pos[:, None, :] - pos[None, :, :]
            adjacency = (diff * diff).sum(axis=-1) <= r2
            np.fill_diagonal(adjacency, False)
            dense[r] = adjacency
        self._pos, self._way = pos, way
        return pack_dense_adjacency(dense)


class ChurnProcess(DynamicsProcess):
    """Per-round bounded node churn layered over any inner process.

    An activity mask tracks which nodes are currently up; every round at
    most ``max_churn`` nodes toggle (a uniform count of candidates is drawn,
    each joining if down and leaving if up), and departures are refused
    whenever they would drop the live population below ``min_active``.
    Inactive nodes are *isolated*: their adjacency rows are zeroed and one
    packed AND clears their columns, so the inner process's edges among live
    nodes pass through untouched.

    Raw churn schedules are intentionally disconnected (down nodes have no
    edges); compose with :class:`ConnectivityPatcher` or
    :class:`TIntervalEnforcer` before feeding an engine.  Note what
    composition means for the model: the paper requires every round graph to
    be connected over the *fixed* node set, so a repaired schedule cannot
    keep a down node literally absent — the transformer re-attaches it
    through a repair edge, degrading it from its full process neighbourhood
    to a single lifeline.  The ``max_churn`` bound is therefore a property
    of the underlying activity process, not of the repaired graphs.  With
    ``record_activity`` the per-round activity masks are kept in
    :attr:`activity_history` for analysis and the churn-bound property
    tests.

    With ``lifeline=False`` a departure is *permanent*: a down node is
    never toggled back up, modelling a true crash rather than churn.  This
    deliberately deviates from the paper's model (a fixed node set with
    every round graph connected over all ``n`` nodes — permanently absent
    nodes make that unsatisfiable), so lifeline-free schedules are not fed
    to the engines as topologies; they exist to *derive* crash schedules
    for the fault axis (:func:`~repro.network.faults.crash_schedule_from_churn`),
    where the topology keeps its repair edges and the crash semantics live
    in the delivery layer instead.
    """

    def __init__(
        self,
        inner: DynamicsProcess,
        max_churn: int = 1,
        min_active: int = 2,
        seed: int = 0,
        record_activity: bool = False,
        lifeline: bool = True,
    ):
        super().__init__(inner.n)
        if max_churn < 0:
            raise ValueError(f"max_churn must be >= 0, got {max_churn}")
        if not 1 <= min_active <= inner.n:
            raise ValueError(f"min_active must be in 1..{inner.n}, got {min_active}")
        self.inner = inner
        self.max_churn = int(max_churn)
        self.min_active = int(min_active)
        self.seed = seed
        self.record_activity = bool(record_activity)
        self.lifeline = bool(lifeline)
        self.activity_history: list[np.ndarray] = []
        self.reset()

    def reset(self) -> None:
        self.inner.reset()
        self._rng = np.random.default_rng(self.seed)
        self._active = np.ones(self.n, dtype=bool)
        self.activity_history = []

    def rounds_remaining(self) -> int | None:
        return self.inner.rounds_remaining()

    def next_batch(self, rounds: int) -> np.ndarray:
        batch = self.inner.next_batch(rounds)
        active = self._active
        for r in range(rounds):
            # A bound above n is legal (it just never binds): the candidate
            # draw keeps its distribution, the sample is clamped to the
            # population.
            toggles = min(int(self._rng.integers(0, self.max_churn + 1)), self.n)
            if toggles:
                for uid in self._rng.choice(self.n, size=toggles, replace=False):
                    uid = int(uid)
                    if active[uid]:
                        if int(active.sum()) > self.min_active:
                            active[uid] = False
                    elif self.lifeline:
                        active[uid] = True
            if self.record_activity:
                self.activity_history.append(active.copy())
            batch[r, ~active] = 0
            batch[r] &= _pack_active(active, self.words)
        return batch


class DegreeBoundedRewiringProcess(DynamicsProcess):
    """Adversarial-flavoured edge rewiring under a hard degree cap.

    Starts from a ring and, each round, rewires up to ``rewires_per_round``
    edges: a uniformly random present edge is removed and a uniformly random
    absent pair whose endpoints both have degree below ``degree_bound`` is
    inserted (the removal is rolled back if no legal insertion is found, so
    the edge count is invariant).  The result is a slowly-drifting sparse
    graph that can disconnect at any time — the degree-bounded worst-case
    regime the token-forwarding lower bounds live in.  Compose with a
    transformer for model legality.
    """

    def __init__(
        self,
        n: int,
        degree_bound: int = 4,
        rewires_per_round: int = 2,
        seed: int = 0,
    ):
        super().__init__(n)
        if n < 3:
            raise ValueError(f"rewiring needs n >= 3, got {n}")
        if degree_bound < 2:
            raise ValueError(f"degree_bound must be >= 2 (the ring start), got {degree_bound}")
        if rewires_per_round < 0:
            raise ValueError(f"rewires_per_round must be >= 0, got {rewires_per_round}")
        self.degree_bound = int(degree_bound)
        self.rewires_per_round = int(rewires_per_round)
        self.seed = seed
        self.reset()

    def reset(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        n = self.n
        self._edges = [(u, (u + 1) % n) if u + 1 < n else (0, n - 1) for u in range(n)]
        self._edge_set = {frozenset(e) for e in self._edges}
        self._degrees = np.full(n, 2, dtype=np.int64)

    def _rewire_once(self) -> None:
        rng = self._rng
        edges = self._edges
        index = int(rng.integers(len(edges)))
        u, v = edges[index]
        edges[index] = edges[-1]
        edges.pop()
        self._edge_set.remove(frozenset((u, v)))
        self._degrees[u] -= 1
        self._degrees[v] -= 1
        for _ in range(16):
            x, y = int(rng.integers(self.n)), int(rng.integers(self.n))
            if (
                x != y
                and self._degrees[x] < self.degree_bound
                and self._degrees[y] < self.degree_bound
                and frozenset((x, y)) not in self._edge_set
            ):
                break
        else:
            x, y = u, v  # no legal insertion found: roll the removal back
        edges.append((x, y))
        self._edge_set.add(frozenset((x, y)))
        self._degrees[x] += 1
        self._degrees[y] += 1

    def next_batch(self, rounds: int) -> np.ndarray:
        batch = self._empty_batch(rounds)
        one = np.uint64(1)
        for r in range(rounds):
            for _ in range(self.rewires_per_round):
                self._rewire_once()
            pairs = np.asarray(self._edges, dtype=np.int64)
            rows = np.concatenate([pairs[:, 0], pairs[:, 1]])
            cols = np.concatenate([pairs[:, 1], pairs[:, 0]])
            np.bitwise_or.at(
                batch[r], (rows, cols >> 6), one << (cols & np.int64(63)).astype(np.uint64)
            )
        return batch


class PrecomputedSchedule(DynamicsProcess):
    """Replay a recorded packed schedule (cycling once it is exhausted).

    ``connected`` certifies every recorded round is a legal connected
    topology — set it only for schedules that came out of a transformer or
    validated :class:`Topology` objects.
    """

    def __init__(self, packed: np.ndarray, *, cycle: bool = True, connected: bool = False):
        if packed.ndim != 3 or packed.dtype != np.uint64 or packed.shape[0] == 0:
            raise ValueError(
                "need a non-empty (rounds, n, words) uint64 schedule, got "
                f"{packed.shape} {packed.dtype}"
            )
        n = packed.shape[1]
        super().__init__(n)
        if packed.shape[2] != self.words:
            raise ValueError(
                f"packed schedule rows must be {self.words} words wide, got {packed.shape[2]}"
            )
        self._schedule = np.ascontiguousarray(packed).copy()
        self._cycle = bool(cycle)
        self.guarantees_connected = bool(connected)
        self.reset()

    @classmethod
    def from_topologies(
        cls, topologies: Sequence[Topology], *, cycle: bool = True
    ) -> "PrecomputedSchedule":
        """Build a replayable schedule from recorded :class:`Topology` objects
        (e.g. a ``RunResult.topologies`` trace), validating each round."""
        if not topologies:
            raise ValueError("need at least one topology")
        n = topologies[0].n
        for topology in topologies:
            topology.validate(n)
        packed = np.stack([t.packed_adjacency() for t in topologies])
        return cls(packed, cycle=cycle, connected=True)

    def reset(self) -> None:
        self._position = 0

    def rounds_remaining(self) -> int | None:
        if self._cycle:
            return None
        return max(0, self._schedule.shape[0] - self._position)

    def next_batch(self, rounds: int) -> np.ndarray:
        total = self._schedule.shape[0]
        if not self._cycle and self._position + rounds > total:
            raise ValueError(
                f"non-cycling schedule of {total} rounds exhausted at round "
                f"{self._position} (requested {rounds} more)"
            )
        indices = (self._position + np.arange(rounds)) % total
        self._position += rounds
        return self._schedule[indices].copy()


# ----------------------------------------------------------------------
# transformers: raw process -> model-compliant adversary schedule
# ----------------------------------------------------------------------


class ConnectivityPatcher(DynamicsProcess):
    """Per-round connectivity repair (the paper's standing model assumption).

    Every round that comes out disconnected gets a path over its component
    representatives (lowest member of each component, ascending) — the
    minimum number of edges that restores connectivity, deterministic in
    the round graph.  Rounds that are already connected pass through
    bit-identical.
    """

    guarantees_connected = True

    def __init__(self, inner: DynamicsProcess):
        super().__init__(inner.n)
        self.inner = inner

    def reset(self) -> None:
        self.inner.reset()

    def rounds_remaining(self) -> int | None:
        return self.inner.rounds_remaining()

    def next_batch(self, rounds: int) -> np.ndarray:
        batch = self.inner.next_batch(rounds)
        for r in range(rounds):
            components = packed_components(batch[r], self.n)
            if len(components) > 1:
                representatives = [
                    (component & -component).bit_length() - 1 for component in components
                ]
                for a, b in zip(representatives, representatives[1:]):
                    _set_edge(batch[r], a, b)
        return batch


class TIntervalEnforcer(DynamicsProcess):
    """Enforce sliding-window T-interval connectivity on any raw process.

    The inner schedule is consumed in aligned blocks of ``interval`` rounds.
    For block ``b`` the enforcer intersects the block's rounds, derives a
    cheap connected spanning structure ``S_b`` from that intersection
    (:func:`spanning_structure`: the intersection's own BFS forest plus a
    path over component representatives), and unions ``S_b`` into every
    round of blocks ``b`` *and* ``b + 1``.

    Guarantee: any window of ``interval`` consecutive rounds starts in some
    block ``b`` and ends no later than block ``b + 1``, so the connected
    spanning graph ``S_b`` is present in *every* round of the window — the
    Kuhn–Lynch–Oshman T-interval-connectivity property for all sliding
    windows, not just aligned ones.  Each emitted round contains the
    current block's ``S_b``, so per-round connectivity (and hence engine
    legality) comes for free.
    """

    guarantees_connected = True

    def __init__(self, inner: DynamicsProcess, interval: int):
        super().__init__(inner.n)
        if interval < 1:
            raise ValueError(f"interval T must be >= 1, got {interval}")
        self.inner = inner
        self.interval = int(interval)
        self.reset()

    def reset(self) -> None:
        self.inner.reset()
        self._previous_structure: np.ndarray | None = None
        self._block: np.ndarray | None = None
        self._offset = 0

    def rounds_remaining(self) -> int | None:
        inner = self.inner.rounds_remaining()
        if inner is None:
            return None
        buffered = 0 if self._block is None else self._block.shape[0] - self._offset
        return buffered + (inner // self.interval) * self.interval

    def _next_block(self) -> np.ndarray:
        block = self.inner.next_batch(self.interval)
        intersection = np.bitwise_and.reduce(block, axis=0)
        structure = spanning_structure(intersection, self.n)
        block |= structure
        if self._previous_structure is not None:
            block |= self._previous_structure
        self._previous_structure = structure
        return block

    def next_batch(self, rounds: int) -> np.ndarray:
        out = self._empty_batch(rounds)
        filled = 0
        while filled < rounds:
            if self._block is None or self._offset == self._block.shape[0]:
                self._block = self._next_block()
                self._offset = 0
            take = min(rounds - filled, self._block.shape[0] - self._offset)
            out[filled : filled + take] = self._block[self._offset : self._offset + take]
            self._offset += take
            filled += take
        return out


# ----------------------------------------------------------------------
# the bridge into the engines
# ----------------------------------------------------------------------


class ScheduleAdversary(Adversary):
    """Serve a :class:`DynamicsProcess` schedule to ``run_dissemination``.

    Topologies are pulled from the process in buffered batches
    (``batch_rounds`` at a time, amortising the vectorised generation) and
    handed to the engine as :meth:`Topology.from_packed` objects —
    ``pre_validated`` whenever the process guarantees connectivity, so a
    transformed schedule pays zero per-round validation, while a raw
    process's rounds are validated (and rejected if disconnected) exactly
    like any hand-written adversary's.

    ``reset()`` rewinds the process and the buffer, so one adversary object
    is cheaply reusable across sweep repetitions.  The round index must not
    go backwards between resets; skipping forward is allowed (that is how a
    :class:`~repro.network.adversary.TStableAdversary` wrapper, which only
    asks at block starts, consumes a schedule).

    Accepts a process, a recorded ``(rounds, n, words)`` packed array, or a
    sequence of :class:`Topology` objects (the latter two wrapped in a
    cycling :class:`PrecomputedSchedule`).
    """

    def __init__(
        self,
        schedule: DynamicsProcess | np.ndarray | Sequence[Topology],
        *,
        batch_rounds: int = 64,
    ):
        if batch_rounds < 1:
            raise ValueError(f"batch_rounds must be >= 1, got {batch_rounds}")
        if isinstance(schedule, DynamicsProcess):
            process = schedule
        elif isinstance(schedule, np.ndarray):
            process = PrecomputedSchedule(schedule)
        else:
            process = PrecomputedSchedule.from_topologies(list(schedule))
        self.process = process
        self._batch_rounds = int(batch_rounds)
        self._batch: np.ndarray | None = None
        self._offset = 0
        self._served = 0
        self._last: Topology | None = None

    def reset(self) -> None:
        self.process.reset()
        self._batch = None
        self._offset = 0
        self._served = 0
        self._last = None

    def _next_topology(self) -> Topology:
        if self._batch is None or self._offset == self._batch.shape[0]:
            pull = self._batch_rounds
            remaining = self.process.rounds_remaining()
            if remaining is not None:
                # Clamp to what a finite schedule still holds, so a short
                # non-cycling recording can drive an even shorter run; a
                # request past true exhaustion (pull stays >= 1) surfaces the
                # process's own descriptive error.
                pull = max(1, min(pull, remaining))
            self._batch = self.process.next_batch(pull)
            self._offset = 0
        packed = self._batch[self._offset]
        self._offset += 1
        return Topology.from_packed(
            self.process.n, packed, pre_validated=self.process.guarantees_connected
        )

    def choose_topology(self, round_index, n, states, messages=None) -> Topology:
        if n != self.process.n:
            raise ValueError(
                f"schedule generates n={self.process.n} topologies, run has n={n}"
            )
        if round_index < self._served - 1:
            raise ValueError(
                f"schedule already served round {self._served - 1}; rewinding to "
                f"round {round_index} requires reset()"
            )
        while self._served <= round_index:
            self._last = self._next_topology()
            self._served += 1
        if self._last is None:
            raise RuntimeError(
                f"schedule yielded no topology for round {round_index}"
            )
        return self._last
