"""Maximal independent set algorithms used for graph patching (Section 8.1).

The T-stable patch-sharing algorithm partitions the (temporarily static)
graph into patches around a maximal independent set of the ``D``-th power
graph.  The paper uses Luby's randomized MIS [11] (simulated over the
dynamic-network broadcast primitive) for the randomized algorithms and the
Panconesi–Srinivasan deterministic MIS [13] for the deterministic variants.

We provide:

* :func:`luby_mis` — Luby's permutation/priority algorithm, implemented
  round-by-round the way a distributed system would run it, so the number of
  *rounds* it takes is observable and can be charged ``D log n`` as in the
  paper;
* :func:`greedy_mis` — a deterministic MIS by lowest-identifier greedy,
  standing in for the Panconesi–Srinivasan algorithm (see DESIGN.md
  substitutions; only the MIS *output* affects dissemination correctness,
  the deterministic running time is accounted symbolically in
  ``analysis.bounds``);
* :func:`is_maximal_independent_set` — verification helper used by tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

__all__ = [
    "MisResult",
    "luby_mis",
    "greedy_mis",
    "is_maximal_independent_set",
]


@dataclass(frozen=True)
class MisResult:
    """Outcome of an MIS computation.

    Attributes
    ----------
    members:
        The nodes selected into the maximal independent set.
    rounds:
        Number of synchronous phases the distributed algorithm used.  For the
        greedy deterministic algorithm this counts sequential passes and is
        reported for bookkeeping only.
    """

    members: frozenset
    rounds: int


def is_maximal_independent_set(graph: nx.Graph, candidate: set | frozenset) -> bool:
    """Check independence and maximality of ``candidate`` in ``graph``."""
    candidate = set(candidate)
    for u in candidate:
        if u not in graph:
            return False
        for v in graph.neighbors(u):
            if v in candidate:
                return False
    for u in graph.nodes:
        if u in candidate:
            continue
        if not any(v in candidate for v in graph.neighbors(u)):
            return False
    return True


def luby_mis(graph: nx.Graph, rng: np.random.Generator) -> MisResult:
    """Luby's randomized MIS via random priorities.

    Each phase: every still-active node draws a random priority; a node joins
    the MIS if its priority is strictly larger than all still-active
    neighbours'; it and its neighbours then deactivate.  Terminates in
    O(log n) phases with high probability.

    In the dynamic-network simulation each phase is realised with ``O(D)``
    flooding rounds on the power graph (Section 8.1); the phase count
    returned here is what gets multiplied by that factor.
    """
    active = set(graph.nodes)
    mis: set = set()
    rounds = 0
    # Isolated nodes join immediately (they have no neighbours to contend with).
    for node in list(active):
        if graph.degree(node) == 0:
            mis.add(node)
            active.discard(node)
    while active:
        rounds += 1
        priorities = {node: float(rng.random()) for node in active}
        joined = set()
        for node in active:
            neighbour_priorities = [
                priorities[v] for v in graph.neighbors(node) if v in active
            ]
            if all(priorities[node] > p for p in neighbour_priorities):
                joined.add(node)
        if not joined:
            # Ties with identical float priorities are essentially impossible,
            # but guard against an infinite loop by breaking ties by id.
            best = min(active)
            joined = {best}
        mis |= joined
        deactivated = set(joined)
        for node in joined:
            deactivated |= {v for v in graph.neighbors(node) if v in active}
        active -= deactivated
    return MisResult(members=frozenset(mis), rounds=rounds)


def greedy_mis(graph: nx.Graph, key=None) -> MisResult:
    """Deterministic MIS by greedy selection in ``key`` order (default: node id).

    Stands in for the Panconesi–Srinivasan ``2^{O(sqrt(log n))}``-round
    deterministic distributed MIS: the *set* it outputs has the same
    guarantees (maximal, independent); the deterministic round complexity is
    charged symbolically by ``repro.analysis.bounds.deterministic_mis_rounds``.
    """
    ordering = sorted(graph.nodes, key=key)
    blocked: set = set()
    mis: set = set()
    for node in ordering:
        if node in blocked:
            continue
        mis.add(node)
        blocked.add(node)
        blocked |= set(graph.neighbors(node))
    return MisResult(members=frozenset(mis), rounds=len(graph.nodes))
