"""Stability measures for dynamic graph sequences.

The paper works with two related notions:

* **T-stability** (the paper's own, stronger requirement, Section 8): the
  entire topology is unchanged within every block of ``T`` consecutive
  rounds.
* **T-interval connectivity** (Kuhn et al.): for every window of ``T``
  consecutive rounds there exists a connected spanning subgraph whose edges
  are present in *all* rounds of the window.

This module provides checkers for both, plus a measurement helper that
reports the largest ``T`` for which a recorded topology sequence satisfies
each property.  The checkers are used by property tests to confirm that the
:class:`~repro.network.adversary.TStableAdversary` wrapper really produces
T-stable sequences, and by the experiment harness to sanity-check recorded
runs.
"""

from __future__ import annotations

from typing import Sequence, Union

import networkx as nx

from .topology import Topology

#: The checkers accept any mix of ``networkx`` graphs and mask-native
#: :class:`~repro.network.topology.Topology` objects (the representation the
#: runner records on its fast path) — they only read ``.edges`` / ``.nodes``.
GraphLike = Union[nx.Graph, Topology]

__all__ = [
    "is_t_stable",
    "is_t_interval_connected",
    "max_stability",
    "max_interval_connectivity",
    "stable_intersection",
]


def _edge_set(graph: GraphLike) -> frozenset:
    return frozenset(frozenset(edge) for edge in graph.edges)


def is_t_stable(topologies: Sequence[GraphLike], stability: int) -> bool:
    """True iff the sequence is T-stable for ``T = stability``.

    The blocks are aligned at round 0, matching how the simulator applies
    :class:`TStableAdversary`: rounds ``[iT, (i+1)T)`` share one topology.
    """
    if stability < 1:
        raise ValueError(f"stability must be >= 1, got {stability}")
    for block_start in range(0, len(topologies), stability):
        block = topologies[block_start : block_start + stability]
        if not block:
            continue
        reference = _edge_set(block[0])
        if any(_edge_set(g) != reference for g in block[1:]):
            return False
    return True


def stable_intersection(topologies: Sequence[GraphLike]) -> nx.Graph:
    """The graph of edges present in *every* topology of the sequence."""
    if not topologies:
        raise ValueError("need at least one topology")
    nodes = list(topologies[0].nodes)
    common = _edge_set(topologies[0])
    for graph in topologies[1:]:
        common &= _edge_set(graph)
    out = nx.Graph()
    out.add_nodes_from(nodes)
    out.add_edges_from(tuple(edge) for edge in common)
    return out


def is_t_interval_connected(topologies: Sequence[GraphLike], interval: int) -> bool:
    """True iff every window of ``interval`` rounds has a common connected spanning subgraph."""
    if interval < 1:
        raise ValueError(f"interval must be >= 1, got {interval}")
    if not topologies:
        return True
    n = topologies[0].number_of_nodes()
    for start in range(0, len(topologies) - interval + 1):
        window = topologies[start : start + interval]
        intersection = stable_intersection(window)
        if n > 1 and not nx.is_connected(intersection):
            return False
    return True


def max_stability(topologies: Sequence[GraphLike]) -> int:
    """Largest ``T`` such that the sequence is T-stable (aligned blocks)."""
    if not topologies:
        return 0
    best = 1
    for candidate in range(2, len(topologies) + 1):
        if is_t_stable(topologies, candidate):
            best = candidate
    return best


def max_interval_connectivity(topologies: Sequence[GraphLike]) -> int:
    """Largest ``T`` such that the sequence is T-interval connected."""
    if not topologies:
        return 0
    best = 0
    for candidate in range(1, len(topologies) + 1):
        if is_t_interval_connected(topologies, candidate):
            best = candidate
        else:
            break
    return best
