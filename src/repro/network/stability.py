"""Stability measures for dynamic graph sequences (packed-native).

The paper works with two related notions:

* **T-stability** (the paper's own, stronger requirement, Section 8): the
  entire topology is unchanged within every block of ``T`` consecutive
  rounds.
* **T-interval connectivity** (Kuhn et al.): for every window of ``T``
  consecutive rounds there exists a connected spanning subgraph whose edges
  are present in *all* rounds of the window.

This module provides checkers for both, plus measurement helpers reporting
the largest ``T`` for which a recorded topology sequence satisfies each
property.  They confirm that :class:`~repro.network.adversary.TStableAdversary`
really produces T-stable sequences, that the
:class:`~repro.network.dynamics.TIntervalEnforcer` really produces
T-interval-connected schedules, and they let the experiment harness
sanity-check recorded runs.

Representation: every checker coerces its inputs through
:func:`~repro.network.topology.as_topology` and then works on the stacked
``(rounds, n, ceil(n/64))`` packed ``uint64`` adjacency matrices — block
equality is one array comparison, a window intersection is one
``np.bitwise_and.reduce``, and connectivity is a word-parallel mask BFS —
instead of materialising a frozenset of edge pairs per round.  Inputs may
mix ``networkx`` graphs (on node set ``0..n-1``) and mask-native
:class:`~repro.network.topology.Topology` objects, exactly as the engines
record them.
"""

from __future__ import annotations

from typing import Sequence, Union

import networkx as nx
import numpy as np

from .dynamics import packed_is_connected
from .topology import Topology, as_topology

#: The checkers accept any mix of ``networkx`` graphs and mask-native
#: :class:`~repro.network.topology.Topology` objects (the representation the
#: runner records on its fast paths); ``networkx`` inputs must live on node
#: set ``0..n-1`` (what every in-repo generator produces).
GraphLike = Union[nx.Graph, Topology]

__all__ = [
    "is_t_stable",
    "is_t_interval_connected",
    "max_stability",
    "max_interval_connectivity",
    "stable_intersection",
]


def _packed_stack(topologies: Sequence[GraphLike]) -> tuple[int, np.ndarray]:
    """Coerce a sequence to one ``(rounds, n, words)`` packed uint64 stack."""
    coerced = [as_topology(graph) for graph in topologies]
    n = coerced[0].n
    for topology in coerced[1:]:
        if topology.n != n:
            raise ValueError(
                f"mixed node counts in topology sequence: {topology.n} != {n}"
            )
    return n, np.stack([topology.packed_adjacency() for topology in coerced])


def is_t_stable(topologies: Sequence[GraphLike], stability: int) -> bool:
    """True iff the sequence is T-stable for ``T = stability``.

    The blocks are aligned at round 0, matching how the simulator applies
    :class:`TStableAdversary`: rounds ``[iT, (i+1)T)`` share one topology.
    """
    if stability < 1:
        raise ValueError(f"stability must be >= 1, got {stability}")
    if not topologies:
        return True
    _, stack = _packed_stack(topologies)
    return _stack_is_t_stable(stack, stability)


def _stack_is_t_stable(stack: np.ndarray, stability: int) -> bool:
    for block_start in range(0, stack.shape[0], stability):
        block = stack[block_start : block_start + stability]
        if (block != block[0]).any():
            return False
    return True


def stable_intersection(topologies: Sequence[GraphLike]) -> Topology:
    """The graph of edges present in *every* topology of the sequence.

    Returns a mask-native :class:`~repro.network.topology.Topology` (one
    ``np.bitwise_and.reduce`` over the packed stack — the n-ary twin of
    :meth:`Topology.intersection`).  It duck-types the ``networkx`` read
    surface (``edges``/``nodes``/``neighbors``/...) and converts via
    ``to_nx()`` where a real ``networkx.Graph`` is needed.  The result is
    frequently disconnected — that is the quantity T-interval connectivity
    asks about — so probe it with :meth:`Topology.is_connected`, not
    ``validate``.
    """
    if not topologies:
        raise ValueError("need at least one topology")
    n, stack = _packed_stack(topologies)
    return Topology.from_packed(n, np.bitwise_and.reduce(stack, axis=0))


def is_t_interval_connected(topologies: Sequence[GraphLike], interval: int) -> bool:
    """True iff every window of ``interval`` rounds has a common connected spanning subgraph."""
    if interval < 1:
        raise ValueError(f"interval must be >= 1, got {interval}")
    if not topologies:
        return True
    n, stack = _packed_stack(topologies)
    return _stack_is_interval_connected(stack, n, interval)


def _stack_is_interval_connected(stack: np.ndarray, n: int, interval: int) -> bool:
    if n <= 1:
        return True
    for start in range(0, stack.shape[0] - interval + 1):
        # repro: allow[REP401] loop is per sliding window; the reduce is one whole-matrix op
        window = np.bitwise_and.reduce(stack[start : start + interval], axis=0)
        if not packed_is_connected(window, n):
            return False
    return True


def max_stability(topologies: Sequence[GraphLike]) -> int:
    """Largest ``T`` such that the sequence is T-stable (aligned blocks)."""
    if not topologies:
        return 0
    _, stack = _packed_stack(topologies)
    best = 1
    for candidate in range(2, stack.shape[0] + 1):
        if _stack_is_t_stable(stack, candidate):
            best = candidate
    return best


def max_interval_connectivity(topologies: Sequence[GraphLike]) -> int:
    """Largest ``T`` such that the sequence is T-interval connected."""
    if not topologies:
        return 0
    n, stack = _packed_stack(topologies)
    best = 0
    for candidate in range(1, stack.shape[0] + 1):
        if _stack_is_interval_connected(stack, n, candidate):
            best = candidate
        else:
            break
    return best
