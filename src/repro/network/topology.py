"""Mask-native round topologies: per-node neighbour bitmasks.

The round engine spends most of its non-protocol time on topology work:
building a fresh ``networkx.Graph`` every round, re-checking connectivity,
and iterating adjacency dicts during delivery.  Just as the GF(2) coding
layer became fast by representing coded vectors as single Python ints (see
:mod:`repro.coding.subspace`), the topology layer becomes fast by
representing a round graph as ``n`` integer bitmasks: bit ``v`` of
``masks[u]`` is set iff ``{u, v}`` is an edge.  On that representation

* the two cliques of a bottleneck/split topology are two mask fills
  (O(n) big-int ops) instead of O(n^2) ``add_edges_from`` calls,
* connectivity is a mask BFS whose inner step is one word-parallel OR over
  the frontier (O(E/64) machine words total), and
* delivery iterates the set bits of one int instead of an adjacency dict.

:class:`Topology` is immutable and hashable (structural hash over the mask
rows), which is what lets the runner validate each *distinct* topology once
instead of once per round.  It also duck-types the small slice of the
``networkx.Graph`` API the rest of the code base reads (``nodes``,
``edges``, ``neighbors``, ``has_edge``, ``number_of_nodes/edges``), so
adversaries can emit it natively while stability checkers and tests keep
working unchanged; ``to_nx``/``from_nx`` convert (and cache) the full
``networkx`` projection for consumers that need real graph algorithms
(e.g. the Section 8.1 patch decomposition).

The mask-native builders below are edge-identical twins of the
``networkx`` generators in :mod:`repro.network.graphs` — including their
RNG draw sequences — so switching an adversary to the mask path never
changes which topology it plays (verified by tests).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import networkx as nx
import numpy as np

__all__ = [
    "Topology",
    "as_topology",
    "path_topology",
    "ring_topology",
    "star_topology",
    "complete_topology",
    "split_topology",
    "clique_pair_topology",
    "random_tree_topology",
    "random_connected_topology",
    "shifted_ring_topology",
]


def _full_mask(n: int) -> int:
    return (1 << n) - 1


def _iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in ascending order."""
    while mask:
        lsb = mask & -mask
        yield lsb.bit_length() - 1
        mask ^= lsb


class Topology:
    """An immutable round topology stored as per-node neighbour bitmasks.

    Attributes
    ----------
    n:
        Number of nodes; the node set is always ``0..n-1``.
    masks:
        Tuple of ``n`` ints; bit ``v`` of ``masks[u]`` is set iff ``{u, v}``
        is an edge.  Rows must be symmetric and self-loop free (checked by
        :meth:`validate`, which the runner calls once per distinct object).
    """

    __slots__ = ("n", "masks", "_nx", "_hash")

    def __init__(self, n: int, masks: Sequence[int]):
        self.n = n
        # Coerce rows to Python ints: numpy integers (e.g. node labels drawn
        # from a Generator, reaching here via from_nx/from_edges shifts) would
        # silently wrap at 64 bits and lack arbitrary-precision bit ops.
        self.masks = tuple(int(mask) for mask in masks)
        if len(self.masks) != n:
            raise ValueError(f"need {n} mask rows, got {len(self.masks)}")
        self._nx: nx.Graph | None = None
        self._hash: int | None = None

    # ------------------------------------------------------------------
    # construction / interop
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, n: int, edges: Iterable[tuple[int, int]]) -> "Topology":
        """Build a topology on ``0..n-1`` from an edge list."""
        masks = [0] * n
        for u, v in edges:
            u, v = int(u), int(v)  # numpy ints would wrap the shift at 64 bits
            masks[u] |= 1 << v
            masks[v] |= 1 << u
        return cls(n, masks)

    @classmethod
    def from_nx(cls, graph: nx.Graph) -> "Topology":
        """Convert a ``networkx`` graph on node set ``0..n-1``.

        Self-loops are preserved (as a diagonal bit) so that validation can
        reject them exactly like the ``networkx`` validator did.
        """
        n = graph.number_of_nodes()
        if set(graph.nodes) != set(range(n)):
            raise ValueError(
                f"topology must have node set 0..{n - 1}, got {sorted(graph.nodes)[:10]}..."
            )
        masks = [0] * n
        for u, v in graph.edges:
            u, v = int(u), int(v)  # node labels may be numpy ints
            masks[u] |= 1 << v
            masks[v] |= 1 << u
        return cls(n, masks)

    def to_nx(self) -> nx.Graph:
        """The ``networkx`` projection (built once and cached; do not mutate)."""
        if self._nx is None:
            graph = nx.Graph()
            graph.add_nodes_from(range(self.n))
            graph.add_edges_from(self.edges)
            self._nx = graph
        return self._nx

    # ------------------------------------------------------------------
    # the networkx-compatible read surface
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> range:
        return range(self.n)

    @property
    def edges(self) -> list[tuple[int, int]]:
        """All edges as ``(u, v)`` tuples with ``u < v`` (plus any self-loops)."""
        out = []
        for u, mask in enumerate(self.masks):
            for v in _iter_bits(mask >> u):
                out.append((u, u + v))
        return out

    def neighbors(self, u: int) -> Iterator[int]:
        """The neighbours of ``u`` in ascending order."""
        return _iter_bits(self.masks[u])

    def has_edge(self, u: int, v: int) -> bool:
        return bool((self.masks[u] >> v) & 1)

    def degree_of(self, u: int) -> int:
        return self.masks[u].bit_count()

    def number_of_nodes(self) -> int:
        return self.n

    def number_of_edges(self) -> int:
        total = sum(mask.bit_count() for mask in self.masks)
        loops = sum((mask >> u) & 1 for u, mask in enumerate(self.masks))
        return (total - loops) // 2 + loops

    # ------------------------------------------------------------------
    # structural identity
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return self.n == other.n and self.masks == other.masks

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self.n, self.masks))
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Topology(n={self.n}, edges={self.number_of_edges()})"

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """Mask BFS: expand the frontier by OR-ing neighbour rows.

        Each node joins the frontier at most once, so the total work is one
        word-parallel OR per node — O(E/64) machine words.
        """
        n = self.n
        if n <= 1:
            return True
        masks = self.masks
        reached = 1
        frontier = 1
        while frontier:
            grown = 0
            for u in _iter_bits(frontier):
                grown |= masks[u]
            frontier = grown & ~reached
            reached |= frontier
        return reached == _full_mask(n)

    def validate(self, n: int | None = None) -> None:
        """Check the legality of this object as a round topology.

        Raises ``ValueError`` on a wrong node count, self-loops, asymmetric
        rows (only reachable by hand-built masks), out-of-range neighbour
        bits, or disconnectedness — mirroring
        :func:`repro.network.graphs.validate_topology`.
        """
        if n is not None and n != self.n:
            raise ValueError(f"topology must have node set 0..{n - 1}, got 0..{self.n - 1}")
        full = _full_mask(self.n)
        for u, mask in enumerate(self.masks):
            if mask & ~full:
                raise ValueError(f"mask row {u} has neighbour bits outside 0..{self.n - 1}")
            if (mask >> u) & 1:
                raise ValueError(f"self-loop on node {u} is not allowed")
        for u, mask in enumerate(self.masks):
            for v in _iter_bits(mask >> u):
                if not (self.masks[u + v] >> u) & 1:
                    raise ValueError(f"asymmetric edge ({u}, {u + v})")
        if not self.is_connected():
            raise ValueError("round topology must be connected")


def as_topology(graph: "Topology | nx.Graph", n: int | None = None) -> Topology:
    """Coerce a round graph to :class:`Topology` (the adversary adapter).

    ``Topology`` inputs pass through unchanged (preserving their identity,
    which the runner's validation cache keys on); ``networkx`` graphs are
    converted.  ``n``, when given, is checked against the node count.
    """
    if isinstance(graph, Topology):
        topology = graph
    elif isinstance(graph, nx.Graph):
        topology = Topology.from_nx(graph)
    else:
        raise TypeError(
            f"adversary returned {type(graph).__name__}; expected Topology or networkx.Graph"
        )
    if n is not None and topology.n != n:
        raise ValueError(f"topology must have node set 0..{n - 1}, got 0..{topology.n - 1}")
    return topology


# ----------------------------------------------------------------------
# mask-native builders (edge-identical twins of repro.network.graphs)
# ----------------------------------------------------------------------


def path_topology(n: int, order: Sequence[int] | None = None) -> Topology:
    """A path over the nodes, optionally in a caller-provided order."""
    nodes = [int(v) for v in order] if order is not None else list(range(n))
    if sorted(nodes) != list(range(n)):
        raise ValueError("order must be a permutation of 0..n-1")
    masks = [0] * n
    for u, v in zip(nodes, nodes[1:]):
        masks[u] |= 1 << v
        masks[v] |= 1 << u
    return Topology(n, masks)


def ring_topology(n: int) -> Topology:
    """A cycle over the nodes (falls back to a path for n < 3)."""
    if n < 3:
        return path_topology(n)
    masks = [0] * n
    for u in range(n):
        v = (u + 1) % n
        masks[u] |= 1 << v
        masks[v] |= 1 << u
    return Topology(n, masks)


def star_topology(n: int, center: int = 0) -> Topology:
    """A star with the given center node: two mask fills."""
    if not 0 <= center < n:
        raise ValueError(f"center {center} out of range for n={n}")
    center_bit = 1 << center
    others = _full_mask(n) ^ center_bit
    masks = [center_bit] * n
    masks[center] = others
    return Topology(n, masks)


def complete_topology(n: int) -> Topology:
    """The complete graph K_n."""
    full = _full_mask(n)
    return Topology(n, [full ^ (1 << u) for u in range(n)])


def clique_pair_topology(
    n: int,
    group_a: Sequence[int],
    group_b: Sequence[int],
    bridges: Iterable[tuple[int, int]],
) -> Topology:
    """Two cliques joined by explicit bridge edges — the adaptive-cut shape.

    Each clique is two passes of O(|group|) big-int operations: one to build
    the group mask, one to write every member's row.
    """
    masks = [0] * n
    for group in (group_a, group_b):
        group_mask = 0
        for u in group:
            group_mask |= 1 << u
        for u in group:
            masks[u] |= group_mask ^ (1 << u)
    for u, v in bridges:
        masks[u] |= 1 << v
        masks[v] |= 1 << u
    return Topology(n, masks)


def split_topology(n: int, informed: Iterable[int], bridge_pairs: int = 1) -> Topology:
    """Mask-native twin of :func:`repro.network.graphs.split_graph`."""
    informed_list = sorted({v for v in informed if 0 <= v < n})
    informed_set = set(informed_list)
    uninformed = [v for v in range(n) if v not in informed_set]
    bridges = []
    if informed_list and uninformed:
        for i in range(max(1, bridge_pairs)):
            bridges.append(
                (informed_list[i % len(informed_list)], uninformed[i % len(uninformed)])
            )
    return clique_pair_topology(n, informed_list, uninformed, bridges)


def random_tree_topology(n: int, rng: np.random.Generator) -> Topology:
    """A random tree drawing the same RNG sequence as ``graphs.random_tree``."""
    masks = [0] * n
    if n <= 1:
        return Topology(n, masks)
    order = list(rng.permutation(n))
    for i in range(1, n):
        parent = int(order[int(rng.integers(0, i))])
        child = int(order[i])
        masks[child] |= 1 << parent
        masks[parent] |= 1 << child
    return Topology(n, masks)


def random_connected_topology(
    n: int, rng: np.random.Generator, extra_edge_prob: float = 0.1
) -> Topology:
    """Random spanning tree plus iid extra edges (twin of ``graphs.random_connected_graph``)."""
    if not 0 <= extra_edge_prob <= 1:
        raise ValueError(f"extra_edge_prob must be in [0,1], got {extra_edge_prob}")
    tree = random_tree_topology(n, rng)
    if n < 3 or extra_edge_prob == 0:
        return tree
    masks = list(tree.masks)
    expected = extra_edge_prob * n * (n - 1) / 2
    count = int(rng.poisson(expected))
    for _ in range(count):
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u != v:
            masks[u] |= 1 << v
            masks[v] |= 1 << u
    return Topology(n, masks)


def shifted_ring_topology(n: int, round_index: int) -> Topology:
    """Mask-native twin of ``graphs.shifted_ring``."""
    if n < 3:
        return path_topology(n)
    shift = round_index % n
    stride = 1 + (round_index % max(1, n - 2))
    while np.gcd(stride, n) != 1:
        stride += 1
    masks = [0] * n
    for i in range(n):
        u = (shift + i * stride) % n
        v = (shift + (i + 1) * stride) % n
        masks[u] |= 1 << v
        masks[v] |= 1 << u
    return Topology(n, masks)
