"""Mask-native round topologies: per-node neighbour bitmasks.

The round engine spends most of its non-protocol time on topology work:
building a fresh ``networkx.Graph`` every round, re-checking connectivity,
and iterating adjacency dicts during delivery.  Just as the GF(2) coding
layer became fast by representing coded vectors as single Python ints (see
:mod:`repro.coding.subspace`), the topology layer becomes fast by
representing a round graph as ``n`` integer bitmasks: bit ``v`` of
``masks[u]`` is set iff ``{u, v}`` is an edge.  On that representation

* the two cliques of a bottleneck/split topology are two mask fills
  (O(n) big-int ops) instead of O(n^2) ``add_edges_from`` calls,
* connectivity is a mask BFS whose inner step is one word-parallel OR over
  the frontier (O(E/64) machine words total), and
* delivery iterates the set bits of one int instead of an adjacency dict.

:class:`Topology` is immutable and hashable (structural hash over the mask
rows), which is what lets the runner validate each *distinct* topology once
instead of once per round (:class:`TopologyValidationCache` packages that
single-slot identity cache for every engine).  It also duck-types the small
slice of the ``networkx.Graph`` API the rest of the code base reads
(``nodes``, ``edges``, ``neighbors``, ``has_edge``,
``number_of_nodes/edges``), so adversaries can emit it natively while
stability checkers and tests keep working unchanged; ``to_nx``/``from_nx``
convert (and cache) the full ``networkx`` projection for consumers that
need real graph algorithms (e.g. the Section 8.1 patch decomposition).

Three derived adjacency representations are cached per object for the
round engines:

* :meth:`Topology.neighbors_tuple` — the per-node neighbour tuple the mask
  engine's delivery loop reads (filled lazily node by node, so a static or
  T-stable topology pays the bit iteration once, not once per round);
* :meth:`Topology.packed_adjacency` — the ``(n, ceil(n/64))`` ``uint64``
  matrix (bit ``v`` of row ``u`` ⇔ edge ``{u, v}``, 64 neighbours per
  machine word) that the vectorised kernel engine consumes;
* :meth:`Topology.csr_adjacency` — the flattened neighbour-index /
  offset (CSR) arrays that turn whole-network delivery into one numpy
  gather plus one ``reduceat``.

The mask-native builders below are edge-identical twins of the
``networkx`` generators in :mod:`repro.network.graphs` — including their
RNG draw sequences — so switching an adversary to the mask path never
changes which topology it plays (verified by tests).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import networkx as nx
import numpy as np

__all__ = [
    "Topology",
    "TopologyValidationCache",
    "as_topology",
    "path_topology",
    "ring_topology",
    "star_topology",
    "complete_topology",
    "split_topology",
    "clique_pair_topology",
    "random_tree_topology",
    "random_connected_topology",
    "shifted_ring_topology",
]


def _full_mask(n: int) -> int:
    return (1 << n) - 1


def _iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in ascending order."""
    while mask:
        lsb = mask & -mask
        yield lsb.bit_length() - 1
        mask ^= lsb


class Topology:
    """An immutable round topology stored as per-node neighbour bitmasks.

    Attributes
    ----------
    n:
        Number of nodes; the node set is always ``0..n-1``.
    masks:
        Tuple of ``n`` ints; bit ``v`` of ``masks[u]`` is set iff ``{u, v}``
        is an edge.  Rows must be symmetric and self-loop free (checked by
        :meth:`validate`, which the runner calls once per distinct object).
    """

    __slots__ = (
        "n",
        "_masks",
        "_nx",
        "_hash",
        "_neighbor_tuples",
        "_packed",
        "_csr",
        "_valid",
    )

    def __init__(
        self,
        n: int,
        masks: Sequence[int] | None = None,
        *,
        packed: np.ndarray | None = None,
        pre_validated: bool = False,
    ):
        self.n = n
        if (masks is None) == (packed is None):
            raise ValueError("give exactly one of masks / packed")
        if masks is not None:
            # Coerce rows to Python ints: numpy integers (e.g. node labels
            # drawn from a Generator, reaching here via from_nx/from_edges
            # shifts) would silently wrap at 64 bits and lack
            # arbitrary-precision bit ops.
            self._masks: tuple[int, ...] | None = tuple(int(mask) for mask in masks)
            if len(self._masks) != n:
                raise ValueError(f"need {n} mask rows, got {len(self._masks)}")
            self._packed: np.ndarray | None = None
        else:
            words = max(1, (n + 63) // 64)
            if packed.shape != (n, words) or packed.dtype != np.uint64:
                raise ValueError(
                    f"packed adjacency must be a ({n}, {words}) uint64 matrix, "
                    f"got {packed.shape} {packed.dtype}"
                )
            # Take a private frozen copy: freezing the caller's array in
            # place (or adopting a view over a writable base) would let
            # external code mutate this "immutable" object after the hash,
            # validity flag or mask rows were derived.
            packed = np.ascontiguousarray(packed)
            if packed.base is not None or packed.flags.writeable:
                packed = packed.copy()
            packed.flags.writeable = False
            self._masks = None
            self._packed = packed
        self._nx: nx.Graph | None = None
        self._hash: int | None = None
        self._neighbor_tuples: list[tuple[int, ...] | None] | None = None
        self._csr: tuple[np.ndarray, np.ndarray] | None = None
        #: True once legality is certain — set by builders whose output is
        #: valid by construction, or after the first successful validate().
        self._valid = bool(pre_validated)

    @property
    def masks(self) -> tuple[int, ...]:
        """The per-node neighbour bitmask rows (lazily derived when the
        topology was constructed from a packed matrix)."""
        if self._masks is None:
            packed = self._packed
            stride = packed.shape[1] * 8
            data = packed.astype("<u8", copy=False).tobytes()
            self._masks = tuple(
                int.from_bytes(data[u * stride : (u + 1) * stride], "little")
                for u in range(self.n)
            )
        return self._masks

    # ------------------------------------------------------------------
    # construction / interop
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, n: int, edges: Iterable[tuple[int, int]]) -> "Topology":
        """Build a topology on ``0..n-1`` from an edge list."""
        masks = [0] * n
        for u, v in edges:
            u, v = int(u), int(v)  # numpy ints would wrap the shift at 64 bits
            masks[u] |= 1 << v
            masks[v] |= 1 << u
        return cls(n, masks)

    @classmethod
    def from_packed(
        cls, n: int, packed: np.ndarray, *, pre_validated: bool = False
    ) -> "Topology":
        """Build a topology directly from a packed ``uint64`` adjacency matrix.

        The integer mask rows are derived lazily, so fully vectorised
        builders (and the kernel engine consuming :meth:`packed_adjacency` /
        :meth:`csr_adjacency`) never materialise per-node Python ints.
        ``pre_validated`` certifies the matrix is a legal round topology by
        construction — reserve it for builders that guarantee symmetry,
        no self-loops and connectedness.
        """
        return cls(n, packed=packed, pre_validated=pre_validated)

    @classmethod
    def from_nx(cls, graph: nx.Graph) -> "Topology":
        """Convert a ``networkx`` graph on node set ``0..n-1``.

        Self-loops are preserved (as a diagonal bit) so that validation can
        reject them exactly like the ``networkx`` validator did.
        """
        n = graph.number_of_nodes()
        if set(graph.nodes) != set(range(n)):
            raise ValueError(
                f"topology must have node set 0..{n - 1}, got {sorted(graph.nodes)[:10]}..."
            )
        masks = [0] * n
        for u, v in graph.edges:
            u, v = int(u), int(v)  # node labels may be numpy ints
            masks[u] |= 1 << v
            masks[v] |= 1 << u
        return cls(n, masks)

    def to_nx(self) -> nx.Graph:
        """The ``networkx`` projection (built once and cached; do not mutate)."""
        if self._nx is None:
            graph = nx.Graph()
            graph.add_nodes_from(range(self.n))
            graph.add_edges_from(self.edges)
            self._nx = graph
        return self._nx

    # ------------------------------------------------------------------
    # the networkx-compatible read surface
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> range:
        return range(self.n)

    @property
    def edges(self) -> list[tuple[int, int]]:
        """All edges as ``(u, v)`` tuples with ``u < v`` (plus any self-loops)."""
        out = []
        for u, mask in enumerate(self.masks):
            for v in _iter_bits(mask >> u):
                out.append((u, u + v))
        return out

    def neighbors(self, u: int) -> Iterator[int]:
        """The neighbours of ``u`` in ascending order."""
        return _iter_bits(self.masks[u])

    def neighbors_tuple(self, u: int) -> tuple[int, ...]:
        """The neighbours of ``u`` in ascending order, as a cached tuple.

        Filled lazily one node at a time, so the first delivery loop over a
        static or T-stable topology pays the per-bit iteration once and
        every later round reads the tuple directly.
        """
        cache = self._neighbor_tuples
        if cache is None:
            cache = self._neighbor_tuples = [None] * self.n
        cached = cache[u]
        if cached is None:
            cached = cache[u] = tuple(_iter_bits(self.masks[u]))
        return cached

    def packed_adjacency(self) -> np.ndarray:
        """The adjacency as an ``(n, ceil(n/64))`` ``uint64`` matrix.

        Bit ``v`` of row ``u`` (word ``v // 64``, bit ``v % 64``,
        little-endian words) is set iff ``{u, v}`` is an edge — the same
        LSB-first convention as the integer ``masks``.  Built once per
        object and cached; the returned array is marked read-only.
        """
        if self._packed is None:
            words = max(1, (self.n + 63) // 64)
            data = b"".join(mask.to_bytes(words * 8, "little") for mask in self.masks)
            packed = np.frombuffer(data, dtype="<u8").reshape(self.n, words)
            packed = np.ascontiguousarray(packed).astype(np.uint64, copy=False)
            packed.flags.writeable = False
            self._packed = packed
        return self._packed

    def csr_adjacency(self) -> tuple[np.ndarray, np.ndarray]:
        """Flattened neighbour indices plus row offsets (CSR form).

        Returns ``(indices, indptr)`` where ``indices[indptr[u]:indptr[u+1]]``
        are the neighbours of ``u`` in ascending order.  This is what lets
        the kernel engine deliver a whole round with one fancy-index gather
        and one ``np.bitwise_or.reduceat`` instead of per-node Python loops.
        Cached per object, like :meth:`packed_adjacency`.
        """
        if self._csr is None:
            packed = self.packed_adjacency()
            bits = np.unpackbits(
                packed.view(np.uint8).reshape(self.n, -1),
                axis=1,
                count=self.n,
                bitorder="little",
            ).view(bool)  # flatnonzero's bool fast path skips a != 0 temp
            indices = np.flatnonzero(bits) % self.n
            indptr = np.zeros(self.n + 1, dtype=np.int64)
            np.cumsum(bits.sum(axis=1, dtype=np.int64), out=indptr[1:])
            self._csr = (indices, indptr)
        return self._csr

    def has_edge(self, u: int, v: int) -> bool:
        return bool((self.masks[u] >> v) & 1)

    # ------------------------------------------------------------------
    # packed set algebra (whole-graph bitwise ops)
    # ------------------------------------------------------------------
    def union(self, other: "Topology") -> "Topology":
        """The edge-union of two topologies on the same node set.

        One elementwise OR over the packed adjacency matrices.  When both
        operands are known-valid round topologies the union is too
        (symmetry and loop-freeness are preserved bitwise, and a connected
        subgraph stays connected under edge addition), so the result skips
        re-validation.
        """
        if self.n != other.n:
            raise ValueError(f"node-count mismatch: {self.n} != {other.n}")
        return Topology.from_packed(
            self.n,
            self.packed_adjacency() | other.packed_adjacency(),
            pre_validated=self._valid and other._valid,
        )

    def intersection(self, other: "Topology") -> "Topology":
        """The edge-intersection of two topologies on the same node set.

        One elementwise AND over the packed adjacency matrices.  The result
        is *not* marked pre-validated: intersecting two connected graphs can
        disconnect (that is the whole point of T-interval connectivity), so
        callers probing the common structure should use
        :meth:`is_connected` rather than :meth:`validate`.
        """
        if self.n != other.n:
            raise ValueError(f"node-count mismatch: {self.n} != {other.n}")
        return Topology.from_packed(
            self.n, self.packed_adjacency() & other.packed_adjacency()
        )

    def degrees(self) -> np.ndarray:
        """Per-node degrees as one popcount pass over the packed rows.

        Returns an ``int64`` array of length ``n``.  A self-loop bit (only
        possible on unvalidated hand-built inputs) counts once; legal round
        topologies have none.
        """
        return np.bitwise_count(self.packed_adjacency()).sum(axis=1, dtype=np.int64)

    def degree_of(self, u: int) -> int:
        return self.masks[u].bit_count()

    def number_of_nodes(self) -> int:
        return self.n

    def number_of_edges(self) -> int:
        total = sum(mask.bit_count() for mask in self.masks)
        loops = sum((mask >> u) & 1 for u, mask in enumerate(self.masks))
        return (total - loops) // 2 + loops

    # ------------------------------------------------------------------
    # structural identity
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return self.n == other.n and self.masks == other.masks

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self.n, self.masks))
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Topology(n={self.n}, edges={self.number_of_edges()})"

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """Mask BFS: expand the frontier by OR-ing neighbour rows.

        Each node joins the frontier at most once, so the total work is one
        word-parallel OR per node — O(E/64) machine words.
        """
        n = self.n
        if n <= 1:
            return True
        masks = self.masks
        reached = 1
        frontier = 1
        while frontier:
            grown = 0
            for u in _iter_bits(frontier):
                grown |= masks[u]
            frontier = grown & ~reached
            reached |= frontier
        return reached == _full_mask(n)

    def validate(self, n: int | None = None) -> None:
        """Check the legality of this object as a round topology.

        Raises ``ValueError`` on a wrong node count, self-loops, asymmetric
        rows (only reachable by hand-built masks), out-of-range neighbour
        bits, or disconnectedness — mirroring
        :func:`repro.network.graphs.validate_topology`.

        Topologies that are valid by construction — built by the mask-native
        builders below, or already validated once (the object is immutable)
        — short-circuit, so the per-round validation cost of trusted
        adversaries is a flag test.
        """
        if n is not None and n != self.n:
            raise ValueError(f"topology must have node set 0..{n - 1}, got 0..{self.n - 1}")
        if self._valid:
            return
        full = _full_mask(self.n)
        for u, mask in enumerate(self.masks):
            if mask & ~full:
                raise ValueError(f"mask row {u} has neighbour bits outside 0..{self.n - 1}")
            if (mask >> u) & 1:
                raise ValueError(f"self-loop on node {u} is not allowed")
        for u, mask in enumerate(self.masks):
            for v in _iter_bits(mask >> u):
                if not (self.masks[u + v] >> u) & 1:
                    raise ValueError(f"asymmetric edge ({u}, {u + v})")
        if not self.is_connected():
            raise ValueError("round topology must be connected")
        self._valid = True


def as_topology(graph: "Topology | nx.Graph", n: int | None = None) -> Topology:
    """Coerce a round graph to :class:`Topology` (the adversary adapter).

    ``Topology`` inputs pass through unchanged (preserving their identity,
    which the runner's validation cache keys on); ``networkx`` graphs are
    converted.  ``n``, when given, is checked against the node count.
    """
    if isinstance(graph, Topology):
        topology = graph
    elif isinstance(graph, nx.Graph):
        topology = Topology.from_nx(graph)
    else:
        raise TypeError(
            f"adversary returned {type(graph).__name__}; expected Topology or networkx.Graph"
        )
    if n is not None and topology.n != n:
        raise ValueError(f"topology must have node set 0..{n - 1}, got 0..{topology.n - 1}")
    return topology


class TopologyValidationCache:
    """Single-slot identity-keyed round-topology validation cache.

    Static and T-stable adversaries return the same topology object round
    after round, so remembering only the most recent one already gives the
    once-per-topology (instead of once-per-round) validation win without
    pinning every per-round topology of a long run.  Only immutable
    :class:`Topology` objects are cached by identity — an adversary may
    legally mutate and re-return one ``networkx.Graph`` between rounds, so
    nx inputs are re-converted and re-validated every time.  Shared by the
    mask and kernel engines.
    """

    __slots__ = ("_last",)

    def __init__(self) -> None:
        self._last: tuple[Topology, Topology] | None = None

    def validated(self, graph: "Topology | nx.Graph", n: int) -> Topology:
        """Coerce ``graph`` to a :class:`Topology` validated for ``n`` nodes."""
        if self._last is not None and self._last[0] is graph:
            return self._last[1]
        topology = as_topology(graph, n)
        topology.validate(n)
        if isinstance(graph, Topology):
            self._last = (graph, topology)
        return topology


# ----------------------------------------------------------------------
# mask-native builders (edge-identical twins of repro.network.graphs)
# ----------------------------------------------------------------------
#
# Every builder below produces a legal round topology by construction
# (symmetric, self-loop free, connected), so it passes ``pre_validated``
# and the engines' per-round validation collapses to a flag test.


def path_topology(n: int, order: Sequence[int] | None = None) -> Topology:
    """A path over the nodes, optionally in a caller-provided order."""
    nodes = [int(v) for v in order] if order is not None else list(range(n))
    if sorted(nodes) != list(range(n)):
        raise ValueError("order must be a permutation of 0..n-1")
    masks = [0] * n
    for u, v in zip(nodes, nodes[1:]):
        masks[u] |= 1 << v
        masks[v] |= 1 << u
    return Topology(n, masks, pre_validated=True)


def ring_topology(n: int) -> Topology:
    """A cycle over the nodes (falls back to a path for n < 3)."""
    if n < 3:
        return path_topology(n)
    masks = [0] * n
    for u in range(n):
        v = (u + 1) % n
        masks[u] |= 1 << v
        masks[v] |= 1 << u
    return Topology(n, masks, pre_validated=True)


def star_topology(n: int, center: int = 0) -> Topology:
    """A star with the given center node: two mask fills."""
    if not 0 <= center < n:
        raise ValueError(f"center {center} out of range for n={n}")
    center_bit = 1 << center
    others = _full_mask(n) ^ center_bit
    masks = [center_bit] * n
    masks[center] = others
    return Topology(n, masks, pre_validated=True)


def complete_topology(n: int) -> Topology:
    """The complete graph K_n."""
    full = _full_mask(n)
    return Topology(n, [full ^ (1 << u) for u in range(n)], pre_validated=True)


def clique_pair_topology(
    n: int,
    group_a: Sequence[int],
    group_b: Sequence[int],
    bridges: Iterable[tuple[int, int]],
) -> Topology:
    """Two cliques joined by explicit bridge edges — the adaptive-cut shape.

    Each clique is two passes of O(|group|) big-int operations: one to build
    the group mask, one to write every member's row.
    """
    masks = [0] * n
    group_masks = []
    for group in (group_a, group_b):
        group_mask = 0
        for u in group:
            group_mask |= 1 << u
        group_masks.append(group_mask)
        for u in group:
            masks[u] |= group_mask ^ (1 << u)
    bridges = list(bridges)
    for u, v in bridges:
        masks[u] |= 1 << v
        masks[v] |= 1 << u
    # Valid by construction when the groups cover every node, no bridge is
    # degenerate (a (u, u) bridge would write a self-loop bit), and a bridge
    # joins the two (possibly overlapping) cliques: each clique is
    # internally connected and the cross edge connects them.
    mask_a, mask_b = group_masks
    valid = (
        (mask_a | mask_b) == _full_mask(n)
        and all(u != v for u, v in bridges)
        and (
            bool(mask_a & mask_b)
            or any(
                ((mask_a >> u) & 1 and (mask_b >> v) & 1)
                or ((mask_b >> u) & 1 and (mask_a >> v) & 1)
                for u, v in bridges
            )
        )
    )
    return Topology(n, masks, pre_validated=valid and n > 0)


def split_topology(n: int, informed: Iterable[int], bridge_pairs: int = 1) -> Topology:
    """Mask-native twin of :func:`repro.network.graphs.split_graph`."""
    informed_list = sorted({v for v in informed if 0 <= v < n})
    informed_set = set(informed_list)
    uninformed = [v for v in range(n) if v not in informed_set]
    bridges = []
    if informed_list and uninformed:
        for i in range(max(1, bridge_pairs)):
            bridges.append(
                (informed_list[i % len(informed_list)], uninformed[i % len(uninformed)])
            )
    return clique_pair_topology(n, informed_list, uninformed, bridges)


def random_tree_topology(n: int, rng: np.random.Generator) -> Topology:
    """A random tree drawing the same RNG sequence as ``graphs.random_tree``."""
    masks = [0] * n
    if n <= 1:
        return Topology(n, masks, pre_validated=True)
    order = list(rng.permutation(n))
    for i in range(1, n):
        parent = int(order[int(rng.integers(0, i))])
        child = int(order[i])
        masks[child] |= 1 << parent
        masks[parent] |= 1 << child
    return Topology(n, masks, pre_validated=True)


def random_connected_topology(
    n: int, rng: np.random.Generator, extra_edge_prob: float = 0.1
) -> Topology:
    """Random spanning tree plus iid extra edges (twin of ``graphs.random_connected_graph``)."""
    if not 0 <= extra_edge_prob <= 1:
        raise ValueError(f"extra_edge_prob must be in [0,1], got {extra_edge_prob}")
    tree = random_tree_topology(n, rng)
    if n < 3 or extra_edge_prob == 0:
        return tree
    masks = list(tree.masks)
    expected = extra_edge_prob * n * (n - 1) / 2  # repro: allow[REP402] scalar float expectation, no uint64 operands
    count = int(rng.poisson(expected))
    for _ in range(count):
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u != v:
            masks[u] |= 1 << v
            masks[v] |= 1 << u
    return Topology(n, masks, pre_validated=True)


def shifted_ring_topology(n: int, round_index: int) -> Topology:
    """Mask-native twin of ``graphs.shifted_ring``.

    Built fully vectorised in packed form — a fresh per-round ring is the
    kernel engine's hottest topology workload, and a Python per-node edge
    loop would dominate its round cost.  The stride is coprime to ``n``, so
    the walk is one ``n``-cycle: connected by construction.
    """
    if n < 3:
        return path_topology(n)
    shift = round_index % n
    stride = 1 + (round_index % max(1, n - 2))
    while np.gcd(stride, n) != 1:
        stride += 1
    walk = (shift + np.arange(n + 1, dtype=np.int64) * stride) % n
    u, v = walk[:-1], walk[1:]
    rows = np.concatenate([u, v])
    cols = np.concatenate([v, u])
    packed = np.zeros((n, (n + 63) // 64), dtype=np.uint64)
    np.bitwise_or.at(
        packed,
        (rows, cols >> 6),
        np.uint64(1) << (cols & np.int64(63)).astype(np.uint64),
    )
    return Topology.from_packed(n, packed, pre_validated=True)
