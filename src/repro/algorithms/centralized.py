"""Centralized network-coding algorithms (Corollary 2.6).

A *centralized* algorithm (footnote 1 of the paper) is a distributed
algorithm whose nodes are additionally given: knowledge of past topologies,
the initial token distribution (but not the token contents), and shared
randomness.  Under central control the two costs that dominate the
distributed algorithms disappear:

* **indexing is trivial** — the controller knows which node holds which
  token, so distinct indices 1..k can be assigned up front; and
* **the coefficient header is free** — every node can infer which random
  combination every other node sent from the shared randomness and the known
  past topologies, so only the ``d`` payload bits need to be transmitted.

The resulting randomized algorithm is order-optimal ``Theta(n)`` for
``k <= n`` (Corollary 2.6).  :class:`CentralizedCodedNode` implements it:
operationally it is RLNC over the full augmented vectors, but the *message
accounting* only charges the payload bits, reflecting the inferable header.

The deterministic centralized variant replaces the shared randomness by the
pre-committed schedule of Section 6 over the large field, with field-size
constraints limiting how many blocks can be coded together; its round
complexity is evaluated analytically in :mod:`repro.analysis.bounds`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..coding.rlnc import Generation
from ..tokens.message import CodedMessage, Message
from ..tokens.token import Token
from .base import ProtocolConfig, ProtocolNode
from .blocks import block_bits, decode_block, encode_block

__all__ = ["CentralizedCodedNode", "FreeHeaderCodedMessage"]


class FreeHeaderCodedMessage(CodedMessage):
    """A coded message whose coefficient header is charged zero bits.

    Centralized algorithms can reconstruct the coefficients from shared
    randomness and known topologies, so the header does not consume message
    budget (Section 8.3: "the coefficient overhead can be ignored since it is
    easy to infer the coefficients from knowing the past topologies").
    The coefficients are still *carried* (tuple or packed mask form) so the
    simulation does not have to re-derive them — only their cost model
    changes.
    """

    @property
    def header_bits(self) -> int:  # type: ignore[override]
        return 0


class CentralizedCodedNode(ProtocolNode):
    """RLNC indexed broadcast with centrally-assigned indices and free headers."""

    def __init__(self, uid: int, config: ProtocolConfig, rng: np.random.Generator):
        super().__init__(uid, config, rng)
        self.generation = Generation(
            k=max(1, config.k),
            payload_bits=block_bits(config, tokens_per_block=1),
            field_order=config.field_order,
            generation_id=0,
        )
        self.state = self.generation.new_state()
        # The central controller's index assignment: a mapping provided in
        # config.extra, or the canonical origin-UID indexing.
        self._index_of = config.extra.get("index_of")
        self._decoded = False

    def _index_for(self, token: Token) -> int:
        if self._index_of is not None:
            return int(self._index_of[token.token_id])  # type: ignore[index]
        return token.token_id.origin % self.generation.k

    def setup(self, initial_tokens: Sequence[Token]) -> None:
        super().setup(initial_tokens)
        for token in initial_tokens:
            payload = encode_block(self.config, [token], tokens_per_block=1)
            self.state.add_source(self._index_for(token), payload)

    def compose(self, round_index: int) -> Message | None:
        # GenerationState owns the mask/array dispatch; rewrap its message
        # (packed or tuple form) in the free-header cost model.
        message = self.state.compose(self.uid, self.rng)
        if message is None:
            return None
        if message.is_packed:
            return FreeHeaderCodedMessage(
                sender=message.sender,
                generation=message.generation,
                mask=message.mask,
                k=message.k,
                payload_symbols=message.payload_symbols,
            )
        return FreeHeaderCodedMessage(
            sender=message.sender,
            coefficients=message.coefficients,
            payload=message.payload,
            field_order=message.field_order,
            generation=message.generation,
        )

    def deliver(self, round_index: int, messages: Sequence[Message]) -> None:
        for message in messages:
            if isinstance(message, CodedMessage):
                self.state.receive(message)
        if not self._decoded and self.state.can_decode():
            payloads = self.state.decode_payloads()
            if payloads is not None:
                for payload in payloads:
                    for token in decode_block(self.config, payload, tokens_per_block=1):
                        self._learn_token(token)
                self._decoded = True

    def coded_rank(self) -> int:
        return self.state.rank

    def finished(self) -> bool:
        return self._decoded
