"""All dissemination protocols: baselines, network-coded algorithms, reductions."""

from .base import ProtocolConfig, ProtocolFactory, ProtocolNode, log2_ceil
from .blocks import block_bits, decode_block, encode_block, max_tokens_per_block, token_slot_bits
from .centralized import CentralizedCodedNode, FreeHeaderCodedMessage
from .counting import CountingOutcome, count_nodes_via_doubling
from .deterministic import (
    DeterministicIndexedBroadcastNode,
    deterministic_broadcast_config,
)
from .greedy_forward import GreedyForwardNode
from .indexed_broadcast import IndexedBroadcastNode, indexed_broadcast_generation
from .naive_coded import NaiveCodedNode
from .priority_forward import BlockDescriptor, PriorityForwardNode
from .random_forward import GatherState, LeaderInfo, RandomForwardNode
from .token_forwarding import (
    PipelinedTokenForwardingNode,
    TokenForwardingNode,
    tokens_per_message,
)
from .tstable import (
    PatchShareCoordinator,
    TStablePatchFactory,
    TStablePatchNode,
    make_tstable_factory,
)

__all__ = [
    "BlockDescriptor",
    "CentralizedCodedNode",
    "CountingOutcome",
    "DeterministicIndexedBroadcastNode",
    "FreeHeaderCodedMessage",
    "GatherState",
    "GreedyForwardNode",
    "IndexedBroadcastNode",
    "LeaderInfo",
    "NaiveCodedNode",
    "PatchShareCoordinator",
    "PipelinedTokenForwardingNode",
    "PriorityForwardNode",
    "ProtocolConfig",
    "ProtocolFactory",
    "ProtocolNode",
    "RandomForwardNode",
    "TStablePatchFactory",
    "TStablePatchNode",
    "TokenForwardingNode",
    "block_bits",
    "count_nodes_via_doubling",
    "decode_block",
    "deterministic_broadcast_config",
    "encode_block",
    "indexed_broadcast_generation",
    "log2_ceil",
    "make_tstable_factory",
    "max_tokens_per_block",
    "token_slot_bits",
    "tokens_per_message",
]
