"""The priority-forward algorithm (Section 7, Lemma 7.4 / Theorem 7.5).

greedy-forward works well for small ``b`` but for very large message sizes
the random-forward primitive cannot gather ``b^2/d`` tokens at one node.
priority-forward avoids the single-gatherer bottleneck: nodes group the
tokens they know into blocks of ``~b/d`` tokens, give every block a random
``O(log n)``-bit priority, agree on the ``Theta(b)`` smallest priorities by
flooding, and broadcast the corresponding blocks with network-coded indexed
broadcast; broadcast tokens leave consideration and the loop repeats.
Lemma 7.4 shows ``O((1 + kd/b^2) log n)`` iterations suffice.

Implementation notes (documented in DESIGN.md / EXPERIMENTS.md):

* We implement the variant the paper describes *before* its final
  log-factor optimisation: the ``Theta(b)`` smallest block priorities are
  indexed by naive flooding rather than by the recursive call marked ``(*)``
  in the pseudo-code.  This gives the ``O(log^2 n / b^2 * nkd + n log^2 n)``
  bound the paper states explicitly as the fallback; the extra ``log n``
  does not change who wins any comparison we benchmark.
* Each iteration is preceded by a short random-forward window so every token
  is replicated onto ``Omega(n/b)`` nodes, which is the precondition
  Lemma 7.4's analysis starts from (the paper obtains it from the
  greedy-forward prefix).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..coding.rlnc import Generation, GenerationState
from ..gf import field_bits
from ..tokens.message import CodedMessage, ControlMessage, Message, TokenForwardMessage
from ..tokens.token import TokenId
from .base import ProtocolConfig, ProtocolNode
from .blocks import block_bits, decode_block, encode_block, max_tokens_per_block
from .token_forwarding import tokens_per_message

__all__ = ["PriorityForwardNode", "BlockDescriptor"]


@dataclass(frozen=True, order=True)
class BlockDescriptor:
    """A block's identity during the priority flood: (priority, holder, seq)."""

    priority: int
    holder: int
    sequence: int

    def as_tuple(self) -> tuple[int, int, int]:
        return (self.priority, self.holder, self.sequence)


class PriorityForwardNode(ProtocolNode):
    """One node of the priority-forward protocol."""

    def __init__(self, uid: int, config: ProtocolConfig, rng: np.random.Generator):
        super().__init__(uid, config, rng)
        n = config.n
        # Capacity planning uses the nominal b; the budget slack only absorbs
        # constant-factor bookkeeping overhead.
        limit = config.b

        self.spread_rounds = config.extra_int("spread_rounds", n)
        self.flood_rounds = config.extra_int("flood_rounds", n)

        # Block structure: ~b/d tokens per block (half the budget for payload).
        self.tokens_per_block = max_tokens_per_block(config, limit // 2)
        self.block_payload_bits = block_bits(config, self.tokens_per_block)
        symbol_bits = field_bits(config.field_order)
        header_budget = max(symbol_bits, limit - self.block_payload_bits - 32)
        blocks_by_header = max(1, header_budget // symbol_bits)

        # How many block descriptors fit into one flooding message; the number
        # of blocks selected per iteration is capped by it so the smallest
        # priorities actually flood everywhere within the window.
        descriptor_bits = 3 * config.id_bits + 16
        self.descriptors_per_message = max(1, limit // descriptor_bits)
        self.select_count = max(1, min(blocks_by_header, self.descriptors_per_message))

        # O(n + #blocks) with the q = 2 constant of ~2, plus slack.
        self.broadcast_rounds = config.extra_int(
            "broadcast_rounds", 2 * n + 2 * self.select_count + 16
        )
        self.iteration_length = (
            self.spread_rounds + self.flood_rounds + self.broadcast_rounds
        )
        self.forward_batch = tokens_per_message(config)
        self.priority_bits = 2 * config.log_n + 4

        self.delivered: set[TokenId] = set()
        self._my_blocks: dict[tuple[int, int], list[TokenId]] = {}
        self._candidates: set[BlockDescriptor] = set()
        self._selected: list[BlockDescriptor] = []
        self._generation_state: GenerationState | None = None

    # ------------------------------------------------------------------
    def _phase(self, round_index: int) -> tuple[str, int, int]:
        iteration = round_index // self.iteration_length
        offset = round_index % self.iteration_length
        if offset < self.spread_rounds:
            return "spread", offset, iteration
        offset -= self.spread_rounds
        if offset < self.flood_rounds:
            return "flood", offset, iteration
        return "broadcast", offset - self.flood_rounds, iteration

    def _eligible_tokens(self) -> list[TokenId]:
        return sorted(tid for tid in self.known if tid not in self.delivered)

    # ------------------------------------------------------------------
    # phase transitions
    # ------------------------------------------------------------------
    def _form_blocks(self) -> None:
        """Group eligible tokens into blocks and draw their random priorities."""
        self._my_blocks = {}
        self._candidates = set()
        eligible = self._eligible_tokens()
        for seq, start in enumerate(range(0, len(eligible), self.tokens_per_block)):
            block_ids = eligible[start : start + self.tokens_per_block]
            priority = int(self.rng.integers(0, 1 << self.priority_bits))
            descriptor = BlockDescriptor(priority=priority, holder=self.uid, sequence=seq)
            self._my_blocks[(self.uid, seq)] = block_ids
            self._candidates.add(descriptor)

    def _start_broadcast(self, iteration: int) -> None:
        self._selected = sorted(self._candidates)[: self.select_count]
        self._generation_state = None
        if not self._selected:
            return
        generation = Generation(
            k=len(self._selected),
            payload_bits=self.block_payload_bits,
            field_order=self.config.field_order,
            generation_id=iteration + 1,
        )
        state = generation.new_state()
        for index, descriptor in enumerate(self._selected):
            key = (descriptor.holder, descriptor.sequence)
            if descriptor.holder == self.uid and key in self._my_blocks:
                block_ids = [tid for tid in self._my_blocks[key] if tid in self.known]
                if block_ids:
                    payload = encode_block(
                        self.config,
                        [self.known[tid] for tid in block_ids[: self.tokens_per_block]],
                        self.tokens_per_block,
                    )
                    state.add_source(index, payload)
        self._generation_state = state

    def _finish_broadcast(self) -> None:
        state = self._generation_state
        if state is not None and state.can_decode():
            payloads = state.decode_payloads()
            if payloads is not None:
                for payload in payloads:
                    for token in decode_block(self.config, payload, self.tokens_per_block):
                        self._learn_token(token)
                        self.delivered.add(token.token_id)
        # Our own selected blocks leave consideration regardless; their tokens
        # are known to us already.
        for descriptor in self._selected:
            key = (descriptor.holder, descriptor.sequence)
            if descriptor.holder == self.uid and key in self._my_blocks:
                for tid in self._my_blocks[key]:
                    self.delivered.add(tid)
        self._generation_state = None
        self._selected = []
        self._candidates = set()

    # ------------------------------------------------------------------
    # protocol interface
    # ------------------------------------------------------------------
    def compose(self, round_index: int) -> Message | None:
        phase, offset, iteration = self._phase(round_index)
        if phase == "spread":
            eligible = self._eligible_tokens()
            if not eligible:
                return None
            if len(eligible) <= self.forward_batch:
                chosen_ids = eligible
            else:
                indices = self.rng.choice(
                    len(eligible), size=self.forward_batch, replace=False
                )
                chosen_ids = [eligible[int(i)] for i in indices]
            return TokenForwardMessage(
                sender=self.uid, tokens=tuple(self.known[tid] for tid in chosen_ids)
            )
        if phase == "flood":
            if offset == 0:
                self._form_blocks()
            smallest = sorted(self._candidates)[: self.descriptors_per_message]
            if not smallest:
                return None
            return ControlMessage(
                sender=self.uid,
                fields={"blocks": tuple(d.as_tuple() for d in smallest)},
            )
        # broadcast phase
        if offset == 0:
            self._start_broadcast(iteration)
        if self._generation_state is None:
            return None
        return self._generation_state.compose(self.uid, self.rng)

    def deliver(self, round_index: int, messages: Sequence[Message]) -> None:
        phase, offset, _iteration = self._phase(round_index)
        if phase == "spread":
            for message in messages:
                if isinstance(message, TokenForwardMessage):
                    for token in message.tokens:
                        self._learn_token(token)
            return
        if phase == "flood":
            for message in messages:
                if isinstance(message, ControlMessage):
                    for entry in message.fields.get("blocks", ()):  # type: ignore[union-attr]
                        priority, holder, sequence = entry
                        self._candidates.add(
                            BlockDescriptor(
                                priority=int(priority),
                                holder=int(holder),
                                sequence=int(sequence),
                            )
                        )
            # Keep only the current smallest window so the flood converges.
            self._candidates = set(sorted(self._candidates)[: self.select_count])
            return
        for message in messages:
            if isinstance(message, CodedMessage):
                state = self._generation_from_message(message)
                if state is not None and message.num_coefficients == state.generation.k:
                    state.receive(message)
        if offset == self.broadcast_rounds - 1:
            self._finish_broadcast()

    def _generation_from_message(self, message: CodedMessage) -> GenerationState | None:
        if self._generation_state is None:
            symbol_bits = field_bits(message.field_order)
            generation = Generation(
                k=message.num_coefficients,
                payload_bits=message.num_payload_symbols * symbol_bits,
                field_order=message.field_order,
                generation_id=message.generation,
            )
            self._generation_state = generation.new_state()
        return self._generation_state

    def coded_rank(self) -> int:
        return self._generation_state.rank if self._generation_state else 0
