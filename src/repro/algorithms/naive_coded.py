"""The naive coded dissemination algorithm (Corollary 7.1).

Each iteration has two phases:

1. **ID flood** (``n`` rounds): every node floods the smallest
   ``Theta(b / log n)`` identifiers of tokens it knows that have not been
   disseminated yet.  After ``n`` rounds all nodes know the globally smallest
   such identifiers and sort them to obtain a consistent index assignment.
2. **Coded broadcast** (``n + m`` rounds): the selected tokens are
   disseminated with network-coded indexed broadcast; all nodes then mark
   them delivered.

Corollary 7.1: this takes ``O(nk log n / b)`` rounds — only a ``log n / d``
factor better than token forwarding, which is the motivation for the
gathering-based algorithms (greedy-forward / priority-forward) that follow
it in the paper.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..coding.rlnc import Generation, GenerationState
from ..gf import field_bits
from ..tokens.message import CodedMessage, ControlMessage, Message
from ..tokens.token import TokenId
from .base import ProtocolConfig, ProtocolNode
from .blocks import block_bits, decode_block, encode_block

__all__ = ["NaiveCodedNode"]


class NaiveCodedNode(ProtocolNode):
    """Flood-the-smallest-IDs indexing + coded indexed broadcast."""

    def __init__(self, uid: int, config: ProtocolConfig, rng: np.random.Generator):
        super().__init__(uid, config, rng)
        n = config.n
        # How many token ids fit in one flooding message (Theta(b / log n)).
        per_id_bits = 2 * config.id_bits + 8
        self.ids_per_message = max(1, config.b // per_id_bits)
        self.flood_rounds = config.extra_int("flood_rounds", n)
        # O(n + #selected) with the q = 2 constant of ~2, plus slack.
        self.broadcast_rounds = config.extra_int(
            "broadcast_rounds", 2 * n + 2 * self.ids_per_message + 16
        )
        self.iteration_length = self.flood_rounds + self.broadcast_rounds

        self.delivered: set[TokenId] = set()
        self._candidate_ids: set[TokenId] = set()
        self._selected: list[TokenId] = []
        self._generation_state: GenerationState | None = None
        self._exhausted = False

    # ------------------------------------------------------------------
    def _phase(self, round_index: int) -> tuple[str, int, int]:
        iteration = round_index // self.iteration_length
        offset = round_index % self.iteration_length
        if offset < self.flood_rounds:
            return "flood", offset, iteration
        return "broadcast", offset - self.flood_rounds, iteration

    def _undelivered_ids(self) -> list[TokenId]:
        return sorted(tid for tid in self.known if tid not in self.delivered)

    def _flood_candidates(self) -> list[TokenId]:
        pending = sorted(set(self._undelivered_ids()) | self._candidate_ids - self.delivered)
        return pending[: self.ids_per_message]

    # ------------------------------------------------------------------
    def compose(self, round_index: int) -> Message | None:
        if self._exhausted:
            return None
        phase, offset, iteration = self._phase(round_index)
        if phase == "flood":
            if offset == 0:
                self._candidate_ids = set(self._undelivered_ids()[: self.ids_per_message])
                self._selected = []
                self._generation_state = None
            candidates = self._flood_candidates()
            if not candidates:
                return None
            return ControlMessage(sender=self.uid, fields={"ids": tuple(candidates)})
        # broadcast phase
        if offset == 0:
            self._start_broadcast(iteration)
        if self._generation_state is None:
            return None
        return self._generation_state.compose(self.uid, self.rng)

    def deliver(self, round_index: int, messages: Sequence[Message]) -> None:
        if self._exhausted:
            return
        phase, offset, _iteration = self._phase(round_index)
        if phase == "flood":
            for message in messages:
                if isinstance(message, ControlMessage):
                    ids = message.fields.get("ids", ())
                    for tid in ids:  # type: ignore[union-attr]
                        if isinstance(tid, TokenId) and tid not in self.delivered:
                            self._candidate_ids.add(tid)
            # Keep only the smallest window so the flood converges on the
            # globally smallest identifiers.
            self._candidate_ids = set(sorted(self._candidate_ids)[: self.ids_per_message])
            return
        for message in messages:
            if isinstance(message, CodedMessage):
                state = self._generation_from_message(message)
                if state is not None and message.num_coefficients == state.generation.k:
                    state.receive(message)
        if offset == self.broadcast_rounds - 1:
            self._finish_broadcast()

    # ------------------------------------------------------------------
    def _start_broadcast(self, iteration: int) -> None:
        self._selected = sorted(self._candidate_ids)[: self.ids_per_message]
        if not self._selected and not self._undelivered_ids():
            # Nothing anywhere that we know of; we may be done (other nodes
            # may still flood ids in later iterations, which would revive us).
            self._generation_state = None
            return
        if not self._selected:
            self._generation_state = None
            return
        generation = Generation(
            k=len(self._selected),
            payload_bits=block_bits(self.config, tokens_per_block=1),
            field_order=self.config.field_order,
            generation_id=iteration + 1,
        )
        state = generation.new_state()
        for index, tid in enumerate(self._selected):
            if tid in self.known:
                payload = encode_block(self.config, [self.known[tid]], tokens_per_block=1)
                state.add_source(index, payload)
        self._generation_state = state

    def _generation_from_message(self, message: CodedMessage) -> GenerationState | None:
        if self._generation_state is None:
            symbol_bits = field_bits(message.field_order)
            generation = Generation(
                k=message.num_coefficients,
                payload_bits=message.num_payload_symbols * symbol_bits,
                field_order=message.field_order,
                generation_id=message.generation,
            )
            self._generation_state = generation.new_state()
        return self._generation_state

    def _finish_broadcast(self) -> None:
        state = self._generation_state
        if state is not None and state.can_decode():
            payloads = state.decode_payloads()
            if payloads is not None:
                for payload in payloads:
                    for token in decode_block(self.config, payload, tokens_per_block=1):
                        self._learn_token(token)
                        self.delivered.add(token.token_id)
        for tid in self._selected:
            # Only mark a selected token delivered if we actually hold it now;
            # otherwise its identifier keeps being flooded until it arrives.
            if tid in self.known:
                self.delivered.add(tid)
        self._candidate_ids = set()
        self._selected = []
        self._generation_state = None

    def coded_rank(self) -> int:
        return self._generation_state.rank if self._generation_state else 0
