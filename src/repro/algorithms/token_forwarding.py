"""Knowledge-based token-forwarding baselines (Theorem 2.1 / Kuhn et al.).

Two variants are provided:

* :class:`TokenForwardingNode` — the phase-based flooding algorithm of Kuhn
  et al., generalised to ``b >= d`` as described after Theorem 2.1: in each
  phase of ``n`` rounds all nodes flood the ``b/d`` smallest not-yet-delivered
  tokens they know; at the end of the phase those tokens are (consistently)
  marked delivered.  This solves k-token dissemination in ``O(nkd/b + n)``
  rounds against any adversary, which is tight for knowledge-based token
  forwarding.

* :class:`PipelinedTokenForwardingNode` — a pipelined variant for more
  stable networks: within each stable block of ``T`` rounds a node never
  repeats a token it has already broadcast during the block, so on a static
  (or T-stable) topology tokens flow in a pipeline instead of one batch per
  ``n``-round phase.  This captures the factor-``T`` (but, per the KLO lower
  bound, no more) speedup available to token forwarding.

Both are *knowledge-based*: the broadcast depends only on the set of tokens
the node currently knows (plus the round number and the shared parameters).
"""

from __future__ import annotations

import bisect
from typing import Sequence

import numpy as np

from ..tokens.message import Message, TokenForwardMessage
from ..tokens.token import Token, TokenId
from .base import ProtocolConfig, ProtocolNode

__all__ = [
    "TokenForwardingNode",
    "PipelinedTokenForwardingNode",
    "tokens_per_message",
]


def _token_sort_key(token: Token) -> TokenId:
    return token.token_id


#: Sentinel distinguishing "no cached compose yet" from a cached ``None``
#: (a node with nothing pending legitimately broadcasts nothing).
_STALE = object()


def tokens_per_message(config: ProtocolConfig) -> int:
    """How many (id, payload) token copies fit into one ``b``-bit message.

    The paper charges a token ``d`` bits and treats its identifier as free
    metadata of size ``O(log n) <= b``; we account the identifier explicitly,
    which only changes constants.
    """
    per_token_bits = config.token_bits + 2 * config.id_bits
    return max(1, config.budget.b // per_token_bits)


class TokenForwardingNode(ProtocolNode):
    """Phase-based flooding token forwarding (the KLO baseline).

    The pending (known, not yet delivered) tokens are kept in an
    incrementally-maintained sorted list — one ``bisect.insort`` per newly
    learned token — instead of being re-sorted from the ``known`` dict on
    every ``compose``, which was the protocol's dominant per-round cost.
    Delivered tokens are compacted out at each phase boundary (they are
    never broadcast again), keeping the per-round prefix scan short.

    Tuning knobs (``config.extra``):

    * ``phase_length`` — rounds per flooding phase (default ``n``).
    """

    def __init__(self, uid: int, config: ProtocolConfig, rng: np.random.Generator):
        super().__init__(uid, config, rng)
        self.delivered: set[TokenId] = set()
        self.phase_length = config.extra_int("phase_length", config.n)
        self.batch = tokens_per_message(config)
        #: Known tokens sorted by id, possibly still containing a few
        #: delivered stragglers between phase-boundary compactions.
        self._sorted_known: list[Token] = []
        #: Memoised compose() result; invalidated whenever pending changes.
        self._compose_cache: Message | None | object = _STALE

    def setup(self, initial_tokens: Sequence[Token]) -> None:
        super().setup(initial_tokens)
        self._sorted_known = sorted(self.known.values(), key=_token_sort_key)
        self._compose_cache = _STALE

    # ------------------------------------------------------------------
    def _undelivered_prefix(self, limit: int) -> list[Token]:
        """The up-to-``limit`` smallest known-but-undelivered tokens."""
        out: list[Token] = []
        delivered = self.delivered
        for token in self._sorted_known:
            if token.token_id not in delivered:
                out.append(token)
                if len(out) == limit:
                    break
        return out

    def _invalidate_compose_cache(self) -> None:
        """Drop the memoised compose() result (state restored out-of-band)."""
        self._compose_cache = _STALE

    def compose(self, round_index: int) -> Message | None:
        # The broadcast depends only on the pending set, which changes far
        # less often than once per round; reuse the (immutable) message until
        # a learn or a phase commit invalidates it.
        if self._compose_cache is not _STALE:
            return self._compose_cache  # type: ignore[return-value]
        pending = self._undelivered_prefix(self.batch)
        message = (
            TokenForwardMessage(sender=self.uid, tokens=tuple(pending))
            if pending
            else None
        )
        self._compose_cache = message
        return message

    def deliver(self, round_index: int, messages: Sequence[Message]) -> None:
        for message in messages:
            if isinstance(message, TokenForwardMessage):
                for token in message.tokens:
                    if self._learn_token(token):
                        bisect.insort(self._sorted_known, token, key=_token_sort_key)
                        self._compose_cache = _STALE
        # At a phase boundary, commit the smallest pending tokens as delivered.
        # All nodes see the same global minimum set after a full flooding
        # phase, so the delivered sets stay consistent across nodes.
        if (round_index + 1) % self.phase_length == 0:
            for token in self._undelivered_prefix(self.batch):
                self.delivered.add(token.token_id)
            self._sorted_known = [
                t for t in self._sorted_known if t.token_id not in self.delivered
            ]
            self._compose_cache = _STALE


class PipelinedTokenForwardingNode(ProtocolNode):
    """Pipelined (round-robin sweep) flooding that benefits from stability.

    Every round a node broadcasts the smallest tokens it knows that it has
    not yet broadcast in the current *sweep*; once everything it knows has
    been sent, a new sweep starts.  On a static topology this is the classic
    pipelined flood finishing in ``O(n + kd/b)`` rounds; on a T-stable
    topology neighbours stay fixed long enough for a sweep to hand over many
    distinct tokens per neighbour, which is where the factor-``T`` advantage
    of stable networks for token forwarding comes from (Theorem 2.1).

    The "fewest sends first, then smallest id" candidate order is kept in
    incrementally-maintained buckets (send count -> id-sorted token list)
    instead of re-sorting every known token each round: compose pops the
    prefix of the lowest buckets (O(batch) plus the shifted list tails) and
    a newly learned token is one ``bisect.insort`` into bucket zero —
    mirroring :class:`TokenForwardingNode`'s sorted-pending list.
    """

    def __init__(self, uid: int, config: ProtocolConfig, rng: np.random.Generator):
        super().__init__(uid, config, rng)
        self.batch = tokens_per_message(config)
        #: How many times each known token has been broadcast by this node.
        self._send_counts: dict[TokenId, int] = {}
        #: send count -> known tokens with that count, sorted by id.
        self._buckets: dict[int, list[Token]] = {}

    def setup(self, initial_tokens: Sequence[Token]) -> None:
        super().setup(initial_tokens)
        if self.known:
            self._buckets = {0: sorted(self.known.values(), key=_token_sort_key)}

    def compose(self, round_index: int) -> Message | None:
        if not self.known:
            return None
        # Forward never-sent tokens first (classic pipelining); once every
        # known token has been sent at least once, keep cycling so nodes that
        # meet us later in a dynamic network still receive everything.  The
        # chosen tokens are the prefix of the buckets in ascending (count,
        # id) order — exactly sorted(known, key=(count, id))[:batch].
        chosen: list[Token] = []
        moved: list[tuple[int, list[Token]]] = []
        for count in sorted(self._buckets):
            bucket = self._buckets[count]
            take = self.batch - len(chosen)
            if take <= 0:
                break
            taken = bucket[:take]
            del bucket[:take]
            if not bucket:
                del self._buckets[count]
            chosen.extend(taken)
            moved.append((count + 1, taken))
        # Re-file after the scan so a token sent this round cannot be taken
        # again from the next bucket within the same compose.
        for target, taken in moved:
            destination = self._buckets.setdefault(target, [])
            for token in taken:
                self._send_counts[token.token_id] = target
                bisect.insort(destination, token, key=_token_sort_key)
        return TokenForwardMessage(sender=self.uid, tokens=tuple(chosen))

    def _learn_token(self, token: Token) -> bool:
        if super()._learn_token(token):
            bisect.insort(
                self._buckets.setdefault(0, []), token, key=_token_sort_key
            )
            return True
        return False

    def deliver(self, round_index: int, messages: Sequence[Message]) -> None:
        for message in messages:
            if isinstance(message, TokenForwardMessage):
                for token in message.tokens:
                    self._learn_token(token)
