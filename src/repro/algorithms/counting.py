"""Counting the number of nodes by repeated doubling (Section 4.1 remark).

The paper observes that the assumption "all nodes know ``n``" is without
loss of generality for n-token dissemination: start with the guess
``n_hat = 2``, run n-token dissemination (every node's token is its own
UID) parameterised by the guess, detect failure (more UIDs discovered than
the guess allows, or the guess's round bound elapsing without completion),
double the guess and restart.  The geometric sum of the restarted runs costs
at most a constant factor over the final successful run.

This is a *driver* around whole dissemination executions rather than a node
protocol, so it lives as a function orchestrating the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..algorithms.base import ProtocolConfig, ProtocolFactory
from ..network.adversary import Adversary
from ..simulation.runner import run_dissemination
from ..tokens.message import MessageBudget
from ..tokens.token import one_token_per_node

__all__ = ["CountingOutcome", "count_nodes_via_doubling"]


@dataclass(frozen=True)
class CountingOutcome:
    """Result of the doubling-based counting procedure.

    Attributes
    ----------
    estimate:
        The final estimate ``n_hat`` (the first guess whose dissemination
        succeeded); guaranteed to satisfy ``n <= estimate < 2n`` when the
        underlying dissemination protocol is correct.
    exact_count:
        The number of distinct UIDs actually discovered in the successful
        run — the true ``n``.
    total_rounds:
        Rounds summed over all attempts, including the failed small guesses.
    final_rounds:
        Rounds of the successful attempt alone.
    attempts:
        Number of (guess, run) attempts performed.
    """

    estimate: int
    exact_count: int
    total_rounds: int
    final_rounds: int
    attempts: int

    @property
    def overhead_factor(self) -> float:
        """Total rounds divided by the final run's rounds (paper: <= 2-ish)."""
        if self.final_rounds == 0:
            return float("inf")
        return self.total_rounds / self.final_rounds


def count_nodes_via_doubling(
    factory: ProtocolFactory,
    n_true: int,
    token_bits: int,
    b: int,
    adversary_factory: Callable[[], Adversary],
    *,
    round_bound: Callable[[int], int] | None = None,
    field_order: int = 2,
    seed: int = 0,
    max_guess_doublings: int = 32,
) -> CountingOutcome:
    """Estimate ``n`` by repeatedly doubling a guess and running dissemination.

    ``round_bound(n_hat)`` gives the number of rounds allotted to the attempt
    with guess ``n_hat``; the default is the generous token-forwarding bound
    ``4 * n_hat^2`` which upper-bounds every protocol in this library for the
    one-token-per-node instance.
    """
    if round_bound is None:
        round_bound = lambda n_hat: 4 * n_hat * n_hat + 8 * n_hat + 16
    rng = np.random.default_rng(seed)
    placement = one_token_per_node(n_true, token_bits, rng)

    guess = 2
    total_rounds = 0
    attempts = 0
    while True:
        attempts += 1
        budget = MessageBudget(b=b)
        # The protocol is parameterised by the *guess*; the physical network
        # still has n_true nodes.  We therefore run it on the true network but
        # with the guess-derived configuration, exactly as the remark
        # describes.  Protocols sized for a too-small guess either fail to
        # complete within the bound or reveal more UIDs than the guess allows.
        physical_config = ProtocolConfig(
            n=n_true,
            k=n_true,
            token_bits=token_bits,
            budget=budget,
            field_order=field_order,
            extra={"phase_length": guess},
        )
        limit = round_bound(guess)
        result = run_dissemination(
            factory,
            physical_config,
            placement,
            adversary_factory(),
            seed=seed + attempts,
            max_rounds=limit,
        )
        total_rounds += result.metrics.rounds_executed
        discovered = max(len(node.known_token_ids()) for node in result.nodes)
        success = result.completed and discovered <= guess
        if success:
            return CountingOutcome(
                estimate=guess,
                exact_count=len(placement.tokens),
                total_rounds=total_rounds,
                final_rounds=result.metrics.rounds_executed,
                attempts=attempts,
            )
        guess *= 2
        if attempts >= max_guess_doublings:
            raise RuntimeError(
                "counting failed to converge; the underlying dissemination "
                "protocol never completed within its round bound"
            )
