"""Packing tokens into blocks ("meta-tokens") and back.

Several algorithms (greedy-forward, priority-forward, the T-stable
patch-sharing broadcast) gather tokens and group them into larger blocks so
that fewer coding coefficients are needed per bit of payload (Section 7:
"grouped together to a smaller number of larger meta-tokens").

A block is encoded as a fixed-width bit string so it can be used directly as
the payload of one coded dimension:

``[count : 16 bits][token_0][token_1]...``

where each token slot is ``2 * id_bits + d`` bits wide (origin UID, sequence
number, payload).  Encoding the identifiers inside the block is what lets a
decoder recover *which* tokens it received without any global pre-agreed
index — the indexing problem the paper spends Section 7 solving is exactly
the problem of agreeing which blocks occupy which coded dimension, and the
block content carries the rest.
"""

from __future__ import annotations

from typing import Sequence

from ..tokens.token import Token, TokenId
from .base import ProtocolConfig

__all__ = [
    "token_slot_bits",
    "block_bits",
    "max_tokens_per_block",
    "encode_block",
    "decode_block",
]

_COUNT_BITS = 16


def token_slot_bits(config: ProtocolConfig) -> int:
    """Width of one token slot inside a block."""
    return 2 * config.id_bits + config.token_bits


def block_bits(config: ProtocolConfig, tokens_per_block: int) -> int:
    """Total width of a block holding up to ``tokens_per_block`` tokens."""
    if tokens_per_block < 1:
        raise ValueError(f"a block must hold at least one token, got {tokens_per_block}")
    return _COUNT_BITS + tokens_per_block * token_slot_bits(config)


def max_tokens_per_block(config: ProtocolConfig, payload_budget_bits: int) -> int:
    """Largest number of tokens whose block fits into ``payload_budget_bits``."""
    slot = token_slot_bits(config)
    available = payload_budget_bits - _COUNT_BITS
    return max(1, available // slot) if available >= slot else 1


def encode_block(config: ProtocolConfig, tokens: Sequence[Token], tokens_per_block: int) -> int:
    """Pack up to ``tokens_per_block`` tokens into a block payload integer."""
    if len(tokens) > tokens_per_block:
        raise ValueError(
            f"block capacity is {tokens_per_block} tokens, got {len(tokens)}"
        )
    if len(tokens) >= (1 << _COUNT_BITS):
        raise ValueError("block count field overflow")
    slot = token_slot_bits(config)
    value = len(tokens)
    offset = _COUNT_BITS
    for token in tokens:
        if token.size_bits != config.token_bits:
            raise ValueError(
                f"token size {token.size_bits} != configured d={config.token_bits}"
            )
        slot_value = (
            (token.token_id.origin & ((1 << config.id_bits) - 1))
            | ((token.token_id.sequence & ((1 << config.id_bits) - 1)) << config.id_bits)
            | (token.payload << (2 * config.id_bits))
        )
        value |= slot_value << offset
        offset += slot
    return value


def decode_block(config: ProtocolConfig, value: int, tokens_per_block: int) -> list[Token]:
    """Unpack a block payload integer back into its tokens."""
    slot = token_slot_bits(config)
    count = value & ((1 << _COUNT_BITS) - 1)
    if count > tokens_per_block:
        raise ValueError(
            f"decoded block claims {count} tokens but capacity is {tokens_per_block}"
        )
    tokens = []
    offset = _COUNT_BITS
    id_mask = (1 << config.id_bits) - 1
    payload_mask = (1 << config.token_bits) - 1
    for _ in range(count):
        slot_value = (value >> offset) & ((1 << slot) - 1)
        origin = slot_value & id_mask
        sequence = (slot_value >> config.id_bits) & id_mask
        payload = (slot_value >> (2 * config.id_bits)) & payload_mask
        tokens.append(
            Token(
                token_id=TokenId(origin=origin, sequence=sequence),
                payload=payload,
                size_bits=config.token_bits,
            )
        )
        offset += slot
    return tokens
