"""The protocol interface all dissemination algorithms implement.

A protocol is a per-node state machine driven by the simulator in
synchronous rounds (Section 4.1):

1. the node *composes* a message for the round knowing only its own state
   (never its neighbours — broadcast is anonymous);
2. the adversary fixes the round topology;
3. the node *delivers* the set of messages broadcast by its neighbours.

Everything a node may legitimately know is provided through
:class:`ProtocolConfig` (the problem parameters ``n``, ``k``, ``d``, ``b``,
``T`` — all assumed known in the paper) plus its own initial tokens.

Protocols signal what they have learned through :meth:`ProtocolNode.known_token_ids`
and :meth:`ProtocolNode.decoded_tokens`; the simulator uses these for
completion detection and correctness checking, and exposes a sanitised
:class:`~repro.network.adversary.NodeStateView` of them to adaptive
adversaries.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from ..network.adversary import NodeStateView
from ..tokens.message import Message, MessageBudget, uid_bits
from ..tokens.token import Token, TokenId

__all__ = [
    "ProtocolConfig",
    "ProtocolNode",
    "ProtocolFactory",
    "log2_ceil",
]


def log2_ceil(n: int) -> int:
    """``ceil(log2(n))`` clamped below at 1; the ubiquitous ``log n`` of the paper."""
    return max(1, math.ceil(math.log2(max(2, n))))


@dataclass(frozen=True)
class ProtocolConfig:
    """Shared problem parameters every node knows.

    Attributes
    ----------
    n:
        Number of nodes (the paper assumes ``n`` is known up to a factor 2).
    k:
        Number of tokens to disseminate.
    token_bits:
        Token size ``d`` in bits.
    budget:
        The per-round message budget (``b`` and its constant slack).
    stability:
        The network's stability parameter ``T`` (1 = fully dynamic).
    field_order:
        Field size ``q`` used by coding protocols.
    extra:
        Free-form per-protocol tuning knobs (phase-length constants etc.).
    """

    n: int
    k: int
    token_bits: int
    budget: MessageBudget
    stability: int = 1
    field_order: int = 2
    extra: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"n must be >= 1, got {self.n}")
        if self.k < 0:
            raise ValueError(f"k must be >= 0, got {self.k}")
        if self.token_bits < 1:
            raise ValueError(f"token size d must be >= 1, got {self.token_bits}")
        if self.token_bits > self.budget.b:
            raise ValueError(
                f"the model requires d <= b, got d={self.token_bits} > b={self.budget.b}"
            )
        if self.stability < 1:
            raise ValueError(f"stability T must be >= 1, got {self.stability}")
        self.budget.validate_parameters(self.n)

    @property
    def b(self) -> int:
        """The nominal message size in bits."""
        return self.budget.b

    @property
    def d(self) -> int:
        """The token size in bits."""
        return self.token_bits

    @property
    def log_n(self) -> int:
        """``ceil(log2 n)``, the id/identifier size scale."""
        return log2_ceil(self.n)

    @property
    def id_bits(self) -> int:
        """Bits of a node UID."""
        return uid_bits(self.n)

    def extra_int(self, key: str, default: int) -> int:
        """Read an integer tuning knob from ``extra``."""
        value = self.extra.get(key, default)
        return int(value)  # type: ignore[arg-type]


class ProtocolNode(abc.ABC):
    """Per-node protocol state machine.

    Knowledge is tracked twice: the authoritative ``known`` dict (id ->
    Token) and, when the runner enables it, an incremental integer
    ``knowledge_mask`` — one bit per token index of the run's placement —
    maintained by :meth:`_learn_token`.  The mask is what makes the
    runner's per-round completion / progress / useless-delivery accounting
    O(1) per node instead of O(k) frozenset rebuilding.
    """

    def __init__(self, uid: int, config: ProtocolConfig, rng: np.random.Generator):
        self.uid = uid
        self.config = config
        self.rng = rng
        #: Tokens (id -> Token) this node can currently output.
        self.known: dict[TokenId, Token] = {}
        #: Token-id -> bit index mapping installed by the runner's mask engine.
        self._token_index: Mapping[TokenId, int] | None = None
        self._knowledge_mask: int = 0
        #: ``len(self.known)`` the last time the mask was known to be in sync.
        self._mask_synced: int = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def setup(self, initial_tokens: Sequence[Token]) -> None:
        """Install the node's initial tokens (called once before round 0)."""
        for token in initial_tokens:
            self.known[token.token_id] = token

    @abc.abstractmethod
    def compose(self, round_index: int) -> Message | None:
        """Choose the message to broadcast this round (None = stay silent).

        The node does not know who its neighbours will be; the message may
        depend only on the node's own state and shared problem parameters.
        """

    @abc.abstractmethod
    def deliver(self, round_index: int, messages: Sequence[Message]) -> None:
        """Receive all messages broadcast by this round's neighbours."""

    # ------------------------------------------------------------------
    # knowledge inspection (used for completion detection / adversaries)
    # ------------------------------------------------------------------
    def known_token_ids(self) -> frozenset:
        """Identifiers of tokens this node can currently reconstruct."""
        return frozenset(self.known)

    def decoded_tokens(self) -> dict[TokenId, Token]:
        """The tokens this node can output, keyed by identifier."""
        return dict(self.known)

    def coded_rank(self) -> int:
        """Dimension of any coded subspace held (0 for non-coding protocols)."""
        return 0

    def finished(self) -> bool:
        """True when the node has locally terminated (optional; default False)."""
        return False

    def state_view(self) -> NodeStateView:
        """The sanitised (lazy) view handed to adaptive adversaries.

        The frozenset of known ids is only materialised if the adversary
        reads ``known_token_ids``; the count and membership accessors the
        in-repo adversaries use are O(1) suppliers.  Subclasses that
        override :meth:`known_token_ids` fall back to supplier-only views
        so the advertised set stays authoritative.
        """
        default_ids = type(self).known_token_ids is ProtocolNode.known_token_ids
        return NodeStateView(
            uid=self.uid,
            rank=self.coded_rank(),
            known_supplier=self.known_token_ids,
            known_count=len(self.known) if default_ids else None,
            membership=self.known.__contains__ if default_ids else None,
        )

    # ------------------------------------------------------------------
    # incremental knowledge-mask tracking (the runner's fast-path contract)
    # ------------------------------------------------------------------
    def enable_mask_tracking(self, token_index: Mapping[TokenId, int]) -> bool:
        """Install the run's token-id -> bit-index mapping.

        Called once by the runner after :meth:`setup`.  Returns False (and
        leaves tracking off) for subclasses that override
        :meth:`known_token_ids`, since the ``known`` dict is then not
        guaranteed to be the authoritative knowledge record.
        """
        if type(self).known_token_ids is not ProtocolNode.known_token_ids:
            return False
        self._token_index = token_index
        self._knowledge_mask = 0
        self._mask_synced = 0
        return True

    def knowledge_mask(self) -> int:
        """The node's knowledge as a bitmask over the run's token indices.

        O(1) when in sync (the common case — :meth:`_learn_token` maintains
        the mask incrementally); resynchronises from ``known`` only after an
        out-of-band mutation.  Requires :meth:`enable_mask_tracking`.
        """
        if self._token_index is None:
            raise RuntimeError("mask tracking not enabled")
        if self._mask_synced != len(self.known):
            index = self._token_index
            mask = 0
            for token_id in self.known:
                bit = index.get(token_id)
                if bit is not None:
                    mask |= 1 << bit
            self._knowledge_mask = mask
            self._mask_synced = len(self.known)
        return self._knowledge_mask

    # ------------------------------------------------------------------
    # small shared helpers
    # ------------------------------------------------------------------
    def _learn_token(self, token: Token) -> bool:
        """Record a token; return True if it was new to this node."""
        if token.token_id in self.known:
            return False
        if self._token_index is not None and self._mask_synced == len(self.known):
            bit = self._token_index.get(token.token_id)
            if bit is not None:
                self._knowledge_mask |= 1 << bit
            self._mask_synced += 1
        self.known[token.token_id] = token
        return True


#: A protocol factory builds one node instance given (uid, config, rng).
ProtocolFactory = Callable[[int, ProtocolConfig, np.random.Generator], ProtocolNode]
