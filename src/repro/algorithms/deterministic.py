"""Deterministic network-coding dissemination (Theorem 2.5 / Corollary 6.2).

The deterministic algorithms replace the per-round fresh randomness of RLNC
by a pre-committed coefficient schedule over a large field (Section 6).
The schedule plays the role of the non-uniform advice / lexicographically
first good matrix; see :mod:`repro.coding.deterministic` for the
quantitative side (field size, witness counting) and DESIGN.md for the
substitution note.

This module provides convenience constructors that wire a
:class:`~repro.coding.deterministic.DeterministicSchedule` into the indexed
broadcast protocol and compute the field/overhead parameters Corollary 6.2
prescribes.  The full Theorem 2.5 dissemination pipeline (deterministic MIS
gathering + deterministic patch broadcast) is evaluated analytically in
:mod:`repro.analysis.bounds`; the executable piece here is the deterministic
k-indexed broadcast, which is the component Theorem 6.1 / Corollary 6.2 are
about.
"""

from __future__ import annotations

import numpy as np

from ..coding.deterministic import DeterministicSchedule, omniscient_field_order
from ..tokens.message import MessageBudget
from .base import ProtocolConfig
from .indexed_broadcast import IndexedBroadcastNode

__all__ = [
    "DeterministicIndexedBroadcastNode",
    "deterministic_broadcast_config",
]


class DeterministicIndexedBroadcastNode(IndexedBroadcastNode):
    """Indexed broadcast driven by a pre-committed coefficient schedule.

    Identical to :class:`IndexedBroadcastNode` except that it *requires* a
    ``deterministic_schedule`` entry in ``config.extra`` — constructing it
    without one is a configuration error rather than a silent fallback to
    randomness.
    """

    def __init__(self, uid: int, config: ProtocolConfig, rng: np.random.Generator):
        if "deterministic_schedule" not in config.extra:
            raise ValueError(
                "DeterministicIndexedBroadcastNode requires "
                "config.extra['deterministic_schedule']"
            )
        super().__init__(uid, config, rng)


def deterministic_broadcast_config(
    n: int,
    k: int,
    token_bits: int,
    *,
    schedule_seed: int = 0,
    exponent_constant: float = 4.0,
    budget_slack: float = 8.0,
) -> ProtocolConfig:
    """Build the configuration Corollary 6.2 prescribes for ``n`` nodes, ``k`` tokens.

    The field order is the Theorem 6.1 requirement ``q >= n^{ck}``; the
    message budget is sized for the resulting ``k^2 log n + d``-bit messages.
    """
    field_order = omniscient_field_order(n, k, exponent_constant)
    symbol_bits = max(1, (field_order - 1).bit_length())
    message_bits = k * symbol_bits + token_bits + 8 * max(1, n.bit_length())
    schedule = DeterministicSchedule(field_order=field_order, seed=schedule_seed)
    return ProtocolConfig(
        n=n,
        k=k,
        token_bits=token_bits,
        budget=MessageBudget(b=message_bits, slack=budget_slack),
        field_order=field_order,
        extra={"deterministic_schedule": schedule},
    )
