"""T-stable patch-sharing network coding (Section 8).

In a T-stable network the topology changes only every ``T`` rounds.  The
paper's share–pass–share algorithm exploits this:

1. partition the (temporarily static) graph into patches of size ``Omega(D)``
   and diameter ``O(D)`` around an MIS of the ``D``-th power graph,
   with ``D = O(T / log n)`` (Section 8.1);
2. **share** — all nodes of a patch jointly form a random linear combination
   of the union of their received vectors, which every member adds to its
   own set (implemented by pipelined aggregation up and down the patch's
   shortest-path tree);
3. **pass** — each node broadcasts its patch's combined vector to its
   (static) neighbours, a ``bT``-bit vector sent as ``T`` chunks of ``b``
   bits;
4. **share** again, now including the vectors received from neighbouring
   patches.

Each such meta-round moves every still-missing coefficient direction into at
least one entire new patch (Ω(D) nodes) or, once every patch senses it,
halves the number of non-sensing nodes — giving Lemma 8.1's
``O((n + bT^2) log n)`` bound and, through the Section 8.3 reductions, the
``T^2`` dissemination speedup of Theorem 2.4.

Simulation fidelity (documented substitution, see DESIGN.md):

The patch computation and the intra-patch aggregation are *structured*
rather than message-by-message: a shared :class:`PatchShareCoordinator`
computes the decomposition from the block's topology with
:func:`repro.network.patches.compute_patches` and performs the share steps
by directly combining member subspaces, while charging the same number of
rounds the distributed implementation would use (``setup_rounds`` for
MIS+trees, ``T`` rounds for the chunked pass, pipelined share rounds).  The
*inter-patch* information flow — the part the adversary constrains — still
travels only along real edges of the round topology, so the measured round
counts exercise the same bottlenecks the analysis bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..coding.rlnc import Generation, GenerationState
from ..coding.subspace import Subspace
from ..network.patches import PatchDecomposition, compute_patches
from ..tokens.message import ControlMessage, Message
from ..tokens.token import Token
from .base import ProtocolConfig, ProtocolNode, log2_ceil
from .blocks import block_bits, decode_block, encode_block

__all__ = [
    "PatchShareCoordinator",
    "TStablePatchNode",
    "TStablePatchFactory",
    "make_tstable_factory",
]


class PatchShareCoordinator:
    """Shared orchestration of the per-block patching and share steps.

    One instance is shared by all nodes of a run (the runner detects it via
    the ``shared_coordinator`` attribute and calls :meth:`on_topology` /
    :meth:`after_round` each round).
    """

    def __init__(self, config: ProtocolConfig, seed: int = 0):
        self.config = config
        self.stability = max(1, config.stability)
        self.rng = np.random.default_rng(seed)
        log_n = log2_ceil(config.n)
        #: Patch radius D = O(T / log n), at least 1.
        self.radius = max(1, self.stability // max(1, log_n))
        #: Rounds charged for the distributed MIS + tree construction.
        self.setup_rounds = min(
            max(1, self.stability // 2), self.radius * log_n + self.radius
        )
        #: Rounds charged for one chunked pass of a bT-bit vector.
        self.pass_rounds = max(1, self.stability - self.setup_rounds)
        self.decomposition: PatchDecomposition | None = None
        self._block_index = -1

    # ------------------------------------------------------------------
    def phase_in_block(self, round_index: int) -> str:
        """Which sub-phase of the stable block this round belongs to."""
        offset = round_index % self.stability
        if offset < self.setup_rounds:
            return "setup"
        return "pass"

    def on_topology(self, round_index: int, graph, nodes: Sequence["TStablePatchNode"]) -> None:
        """Called by the runner once the round topology is fixed."""
        block = round_index // self.stability
        if block != self._block_index:
            self._block_index = block
            # The topology is static for the whole block; computing the patch
            # decomposition here stands in for the first `setup_rounds` rounds
            # of distributed MIS + tree construction on exactly this graph.
            self.decomposition = compute_patches(graph, self.radius, rng=self.rng)

    def after_round(self, round_index: int, graph, nodes: Sequence["TStablePatchNode"]) -> None:
        """Perform share/pass state updates at the sub-phase boundaries."""
        if self.decomposition is None:
            return
        offset = round_index % self.stability
        if offset == self.setup_rounds - 1 or (
            self.setup_rounds == 0 and offset == 0
        ):
            # End of setup: first share step.
            self._share(nodes)
        if offset == self.stability - 1:
            # End of the block: the pass has delivered each patch's combined
            # vector to neighbouring nodes; run the pass delivery and the
            # second share step.
            self._pass(graph, nodes)
            self._share(nodes)
            for node in nodes:
                node.try_decode()

    # ------------------------------------------------------------------
    def _share(self, nodes: Sequence["TStablePatchNode"]) -> None:
        """Every patch jointly forms one random combination of its union span.

        The union of the members' bases is collected into a scratch
        :class:`~repro.coding.subspace.Subspace`, whose shared samplers
        (mask-native over GF(2)) draw the combination — a uniform draw over
        the union span, never the information-free zero vector.
        """
        if self.decomposition is None:
            raise RuntimeError(
                "patch decomposition not initialised; start_block() must "
                "run before sharing"
            )
        for patch in self.decomposition.patches:
            members = sorted(patch.members)
            generation = nodes[members[0]].generation
            union = Subspace(generation.field, generation.vector_length)
            for uid in members:
                member_space = nodes[uid].state.subspace
                if generation.field.q == 2:
                    union.extend(member_space.basis_masks())
                else:
                    union.extend(member_space.basis_matrix())
            if union.is_empty:
                continue
            combined: int | np.ndarray
            if generation.field.q == 2:
                combined = union.random_combination_mask(self.rng)
            else:
                combined = union.random_combination(self.rng)
            for uid in members:
                nodes[uid].state.receive_vector(combined)
                nodes[uid].patch_vector = combined

    def _pass(self, graph, nodes: Sequence["TStablePatchNode"]) -> None:
        """Each node hands its patch's combined vector to its graph neighbours."""
        for uid in range(self.config.n):
            vector = nodes[uid].patch_vector
            if vector is None:
                continue
            for neighbour in graph.neighbors(uid):
                nodes[neighbour].state.receive_vector(vector)


class TStablePatchNode(ProtocolNode):
    """One node of the T-stable patch-sharing indexed broadcast.

    The coded generation has one dimension per token (the Section 8.3
    gathering into ``bT``-bit super-blocks is a packing optimisation on top;
    the share–pass–share engine is identical), and each dimension's payload
    embeds the token identifier so decoding yields actual tokens.
    """

    def __init__(self, uid: int, config: ProtocolConfig, rng: np.random.Generator):
        super().__init__(uid, config, rng)
        self.generation = Generation(
            k=max(1, config.k),
            payload_bits=block_bits(config, tokens_per_block=1),
            field_order=config.field_order,
            generation_id=0,
        )
        self.state: GenerationState = self.generation.new_state()
        #: The patch's combined vector: a bit mask over GF(2), else an array.
        self.patch_vector: int | np.ndarray | None = None
        self._index_of = config.extra.get("index_of")
        self._decoded = False
        #: Shared coordinator, attached by :func:`make_tstable_factory`.
        self.shared_coordinator: PatchShareCoordinator | None = None

    def _index_for(self, token: Token) -> int:
        if self._index_of is not None:
            return int(self._index_of[token.token_id])  # type: ignore[index]
        return token.token_id.origin % self.generation.k

    def setup(self, initial_tokens: Sequence[Token]) -> None:
        super().setup(initial_tokens)
        for token in initial_tokens:
            payload = encode_block(self.config, [token], tokens_per_block=1)
            self.state.add_source(self._index_for(token), payload)

    # ------------------------------------------------------------------
    def compose(self, round_index: int) -> Message | None:
        # The real information flow is orchestrated by the coordinator; the
        # per-round broadcast is the b-bit chunk of the current patch vector
        # (or a control chunk during setup), charged at the full budget.
        phase = (
            self.shared_coordinator.phase_in_block(round_index)
            if self.shared_coordinator is not None
            else "pass"
        )
        chunk_bits = min(self.config.budget.limit_bits, self.config.b)
        return ControlMessage(
            sender=self.uid,
            fields={"phase": 1 if phase == "pass" else 0, "chunk": (1 << max(1, chunk_bits - 8)) - 1},
        )

    def deliver(self, round_index: int, messages: Sequence[Message]) -> None:
        # Chunk reassembly is handled by the coordinator at block boundaries.
        return

    def try_decode(self) -> None:
        """Decode all tokens once the coefficient span is complete."""
        if self._decoded or not self.state.can_decode():
            return
        payloads = self.state.decode_payloads()
        if payloads is None:
            return
        for payload in payloads:
            for token in decode_block(self.config, payload, tokens_per_block=1):
                self._learn_token(token)
        self._decoded = True

    def coded_rank(self) -> int:
        return self.state.rank

    def finished(self) -> bool:
        return self._decoded


class TStablePatchFactory:
    """Picklable protocol factory whose nodes share one :class:`PatchShareCoordinator`.

    A fresh coordinator is created each time node 0 is built — the runner
    always constructs nodes in uid order, so each ``run_dissemination`` call
    gets its own coordinator (no state leaks across the repetitions of a
    :class:`~repro.simulation.SweepTask`), while all nodes of one run share
    it.  Being a plain picklable object (unlike the closure this replaces),
    it can ride a sweep task into worker processes.
    """

    def __init__(self, config: ProtocolConfig, seed: int = 0):
        self.config = config
        self.seed = seed
        self._coordinator: PatchShareCoordinator | None = None

    def __call__(
        self, uid: int, cfg: ProtocolConfig, rng: np.random.Generator
    ) -> TStablePatchNode:
        if uid == 0 or self._coordinator is None:
            self._coordinator = PatchShareCoordinator(self.config, seed=self.seed)
        node = TStablePatchNode(uid, cfg, rng)
        node.shared_coordinator = self._coordinator
        return node

    def __getstate__(self) -> dict:
        # The coordinator is per-run scratch state; never ship it to workers.
        return {"config": self.config, "seed": self.seed}

    def __setstate__(self, state: dict) -> None:
        self.config = state["config"]
        self.seed = state["seed"]
        self._coordinator = None


def make_tstable_factory(config: ProtocolConfig, seed: int = 0) -> TStablePatchFactory:
    """Build a factory whose nodes share one :class:`PatchShareCoordinator`."""
    return TStablePatchFactory(config, seed=seed)
