"""Network-coded k-indexed broadcast (Section 5, Lemma 5.3).

The k-indexed-broadcasting subproblem: ``k`` tokens carrying distinct,
globally-agreed indices ``1..k`` must reach every node.  The algorithm is
random linear network coding in its purest form: every source injects the
augmented vector ``e_i || t_i`` for its token(s), and in every round every
node broadcasts a uniformly random linear combination of everything it has
received.  Lemma 5.3: with field size ``q >= 2`` this completes in
``O(n + k)`` rounds w.h.p. using messages of ``k lg q + d`` bits.

Because this is the standalone subproblem, the index of each initially-held
token is part of the input; it is supplied through ``config.extra``:

* ``index_of`` — a mapping ``TokenId -> index`` (0-based).  If absent, the
  token's origin UID is used as its index, which is exactly the canonical
  ``k = n`` "one token per node" instance.

The block payload of each dimension embeds the token identifier next to the
token bits (see :mod:`repro.algorithms.blocks`), so decoding recovers the
actual tokens, not just anonymous payloads.

Performance: over GF(2) the whole compose → broadcast → deliver → decode
loop is mask-native — every coded vector is one Python integer bit mask (see
:mod:`repro.coding.subspace` and the packed
:class:`~repro.tokens.message.CodedMessage` wire format), which is what
makes n = 64+ sweeps of this benchmark cheap.

The same node class also implements the *deterministic* variant of
Corollary 6.2 when ``config.extra['deterministic_schedule']`` carries a
:class:`~repro.coding.deterministic.DeterministicSchedule`: instead of fresh
randomness, coefficients come from the pre-committed schedule (and the field
must then be the large field of Theorem 6.1 for the guarantee to hold
against an omniscient adversary).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..coding.deterministic import DeterministicSchedule
from ..coding.rlnc import Generation
from ..tokens.message import CodedMessage, Message
from ..tokens.token import Token, TokenId
from .base import ProtocolConfig, ProtocolNode
from .blocks import block_bits, decode_block, encode_block

__all__ = ["IndexedBroadcastNode", "indexed_broadcast_generation"]


def indexed_broadcast_generation(config: ProtocolConfig, generation_id: int = 0) -> Generation:
    """The coding generation for a plain k-indexed broadcast of single tokens."""
    return Generation(
        k=max(1, config.k),
        payload_bits=block_bits(config, tokens_per_block=1),
        field_order=config.field_order,
        generation_id=generation_id,
    )


class IndexedBroadcastNode(ProtocolNode):
    """Pure RLNC indexed broadcast (Lemma 5.3 / Corollary 6.2)."""

    def __init__(self, uid: int, config: ProtocolConfig, rng: np.random.Generator):
        super().__init__(uid, config, rng)
        self.generation = indexed_broadcast_generation(config)
        self.state = self.generation.new_state()
        self._index_of: Mapping[TokenId, int] | None = config.extra.get("index_of")  # type: ignore[assignment]
        self._schedule: DeterministicSchedule | None = config.extra.get(  # type: ignore[assignment]
            "deterministic_schedule"
        )
        self._decoded = False
        #: True while the span may have grown since the last decode attempt.
        #: ``can_decode`` can only flip when an insert is innovative, so the
        #: per-round decode check is skipped entirely once the span stops
        #: growing (in particular every delivery round after span completion).
        self._span_dirty = False

    # ------------------------------------------------------------------
    def _index_for(self, token: Token) -> int:
        if self._index_of is not None:
            return int(self._index_of[token.token_id])
        # Canonical instance: one token per node, indexed by origin UID.
        return token.token_id.origin % self.generation.k

    def setup(self, initial_tokens: Sequence[Token]) -> None:
        super().setup(initial_tokens)
        for token in initial_tokens:
            payload = encode_block(self.config, [token], tokens_per_block=1)
            if self.state.add_source(self._index_for(token), payload):
                self._span_dirty = True

    # ------------------------------------------------------------------
    def compose(self, round_index: int) -> Message | None:
        if self._schedule is not None:
            coefficients = self._schedule.coefficients(
                self.uid, round_index, self.state.rank
            )
            return self.state.compose_with_coefficients(self.uid, coefficients)
        return self.state.compose(self.uid, self.rng)

    def deliver(self, round_index: int, messages: Sequence[Message]) -> None:
        for message in messages:
            if isinstance(message, CodedMessage) and message.generation == self.generation.generation_id:
                if self.state.receive(message):
                    self._span_dirty = True
        self._try_decode()

    # ------------------------------------------------------------------
    def _try_decode(self) -> None:
        if self._decoded or not self._span_dirty:
            return
        self._span_dirty = False
        if not self.state.can_decode():
            return
        payloads = self.state.decode_payloads()
        if payloads is None:
            return
        for payload in payloads:
            for token in decode_block(self.config, payload, tokens_per_block=1):
                self._learn_token(token)
        self._decoded = True

    def coded_rank(self) -> int:
        return self.state.rank

    def finished(self) -> bool:
        return self._decoded
