"""The greedy-forward algorithm (Section 7, Theorem 7.3).

Each iteration of the outer loop has three synchronised phases whose lengths
are fixed functions of the shared parameters (so all nodes agree on phase
boundaries without communication):

1. **gather** (``Theta(n)`` rounds): the random-forward primitive — every
   node broadcasts ``b/d`` random tokens it knows that are still "in
   consideration" (Lemma 7.2);
2. **elect** (``Theta(n)`` rounds): flood the maximum (token count, UID)
   pair to identify a node that gathered the most tokens;
3. **broadcast** (``Theta(n + #blocks)`` rounds): the identified leader
   groups up to ``~b^2/d`` of its tokens into blocks of ``~b/2d`` tokens and
   disseminates them with network-coded indexed broadcast; every node that
   decodes removes those tokens from consideration.

The loop repeats until an election reports that no tokens remain.  Theorem
7.3: the whole process takes ``O(nkd/b^2 + nb)`` rounds w.h.p. — a factor
``~b`` faster than the token-forwarding lower bound.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..coding.rlnc import Generation, GenerationState
from ..gf import field_bits
from ..tokens.message import CodedMessage, ControlMessage, Message, TokenForwardMessage
from ..tokens.token import TokenId
from .base import ProtocolConfig, ProtocolNode
from .blocks import block_bits, decode_block, encode_block, max_tokens_per_block
from .random_forward import GatherState

__all__ = ["GreedyForwardNode", "resolved_phase_windows"]


def resolved_phase_windows(config: ProtocolConfig) -> tuple[int, int, int]:
    """The (gather, elect, broadcast) window lengths a node derives from config.

    Single source of truth for the phase defaults: the node's constructor
    and :meth:`~repro.simulation.coded_kernels.GreedyForwardKernel.supports`
    must agree on them, or the kernel's phase arithmetic would diverge from
    the object engines'.
    """
    n = config.n
    return (
        config.extra_int("gather_rounds", n),
        config.extra_int("elect_rounds", n),
        # The coded broadcast of up to ~b/2 blocks needs O(n + #blocks)
        # rounds; with q = 2 the hidden constant is ~2 (each crossing
        # succeeds with probability 1/2), so the default window is
        # 2(n + #blocks) plus slack.
        config.extra_int("broadcast_rounds", 2 * n + 2 * min(config.b, n) + 16),
    )


class GreedyForwardNode(ProtocolNode):
    """One node of the greedy-forward protocol.

    Tuning knobs (``config.extra``):

    * ``gather_rounds`` — length of the random-forward window (default ``n``).
    * ``elect_rounds`` — length of the leader-election flood (default ``n``).
    * ``broadcast_rounds`` — length of the coded broadcast window
      (default ``n + min(b, n)``).
    """

    def __init__(self, uid: int, config: ProtocolConfig, rng: np.random.Generator):
        super().__init__(uid, config, rng)
        self.gather_rounds, self.elect_rounds, self.broadcast_rounds = (
            resolved_phase_windows(config)
        )
        self.iteration_length = (
            self.gather_rounds + self.elect_rounds + self.broadcast_rounds
        )

        # Block structure: split the budget roughly in half between payload
        # (one block of ~b/2d tokens) and coefficient header (~b/2 blocks).
        # Capacity planning uses the nominal b; the slack constant of the
        # budget only absorbs the O(b) bookkeeping overhead.
        limit = config.b
        self.tokens_per_block = max_tokens_per_block(config, limit // 2)
        self.block_payload_bits = block_bits(config, self.tokens_per_block)
        symbol_bits = field_bits(config.field_order)
        header_budget = max(symbol_bits, limit - self.block_payload_bits - 32)
        self.max_blocks = max(1, header_budget // symbol_bits)

        #: Tokens already disseminated by a completed coded broadcast.
        self.delivered: set[TokenId] = set()
        self._gather: GatherState | None = None
        self._leader_uid: int | None = None
        self._leader_count: int = 0
        self._generation_state: GenerationState | None = None
        self._broadcast_token_ids: list[TokenId] = []
        self._exhausted = False

    # ------------------------------------------------------------------
    # phase bookkeeping
    # ------------------------------------------------------------------
    def _phase(self, round_index: int) -> tuple[str, int, int]:
        """Return (phase name, round within phase, iteration index)."""
        iteration = round_index // self.iteration_length
        offset = round_index % self.iteration_length
        if offset < self.gather_rounds + self.elect_rounds:
            return "gather", offset, iteration
        return "broadcast", offset - self.gather_rounds - self.elect_rounds, iteration

    def _eligible_ids(self) -> set[TokenId]:
        return {tid for tid in self.known if tid not in self.delivered}

    def _ensure_gather(self) -> GatherState:
        if self._gather is None:
            self._gather = GatherState(
                owner=self,
                forward_rounds=self.gather_rounds,
                flood_rounds=self.elect_rounds,
                excluded=self.delivered,
            )
        return self._gather

    # ------------------------------------------------------------------
    # broadcast phase helpers
    # ------------------------------------------------------------------
    def _start_broadcast(self, iteration: int) -> None:
        gather = self._ensure_gather()
        self._leader_uid = gather.elected_leader()
        self._leader_count = gather.elected_count()
        self._gather = None
        self._generation_state = None
        self._broadcast_token_ids = []
        if self._leader_count <= 0:
            self._exhausted = True
            return
        if self._leader_uid != self.uid:
            return
        # We are the leader: group our eligible tokens into blocks and seed a
        # fresh coding generation for this iteration.
        eligible = sorted(self._eligible_ids())
        capacity = self.max_blocks * self.tokens_per_block
        chosen = eligible[:capacity]
        if not chosen:
            return
        blocks = [
            chosen[i : i + self.tokens_per_block]
            for i in range(0, len(chosen), self.tokens_per_block)
        ]
        generation = Generation(
            k=len(blocks),
            payload_bits=self.block_payload_bits,
            field_order=self.config.field_order,
            generation_id=iteration + 1,
        )
        state = generation.new_state()
        for index, block_ids in enumerate(blocks):
            payload = encode_block(
                self.config,
                [self.known[tid] for tid in block_ids],
                self.tokens_per_block,
            )
            state.add_source(index, payload)
        self._generation_state = state
        self._broadcast_token_ids = chosen

    def _generation_from_message(self, message: CodedMessage) -> GenerationState:
        """Lazily join the leader's generation based on observed dimensions."""
        if self._generation_state is None:
            symbol_bits = field_bits(message.field_order)
            generation = Generation(
                k=message.num_coefficients,
                payload_bits=message.num_payload_symbols * symbol_bits,
                field_order=message.field_order,
                generation_id=message.generation,
            )
            self._generation_state = generation.new_state()
        return self._generation_state

    def _finish_broadcast(self) -> None:
        state = self._generation_state
        if state is not None and state.can_decode():
            payloads = state.decode_payloads()
            if payloads is not None:
                for payload in payloads:
                    for token in decode_block(self.config, payload, self.tokens_per_block):
                        self._learn_token(token)
                        self.delivered.add(token.token_id)
        # Leaders mark their broadcast tokens delivered even if (improbably)
        # some other node failed to decode; re-gathering would pick strays up.
        for tid in self._broadcast_token_ids:
            self.delivered.add(tid)
        self._generation_state = None
        self._broadcast_token_ids = []

    # ------------------------------------------------------------------
    # protocol interface
    # ------------------------------------------------------------------
    def compose(self, round_index: int) -> Message | None:
        if self._exhausted:
            return None
        phase, offset, iteration = self._phase(round_index)
        if phase == "gather":
            if offset == 0:
                self._gather = None  # fresh gather state per iteration
            return self._ensure_gather().compose(offset)
        # broadcast phase
        if offset == 0:
            self._start_broadcast(iteration)
        if self._exhausted or self._generation_state is None:
            return None
        return self._generation_state.compose(self.uid, self.rng)

    def deliver(self, round_index: int, messages: Sequence[Message]) -> None:
        if self._exhausted:
            return
        phase, offset, _iteration = self._phase(round_index)
        if phase == "gather":
            self._ensure_gather().deliver(offset, messages)
            return
        for message in messages:
            if isinstance(message, CodedMessage):
                state = self._generation_from_message(message)
                if message.num_coefficients == state.generation.k:
                    state.receive(message)
            elif isinstance(message, (TokenForwardMessage, ControlMessage)):
                # Stragglers from a neighbour still in its gather window.
                if isinstance(message, TokenForwardMessage):
                    for token in message.tokens:
                        self._learn_token(token)
        if offset == self.broadcast_rounds - 1:
            self._finish_broadcast()

    def coded_rank(self) -> int:
        return self._generation_state.rank if self._generation_state else 0

    def finished(self) -> bool:
        return self._exhausted
