"""The random-forward gathering primitive (Lemma 7.2) and its standalone protocol.

``random-forward``: for ``O(n)`` rounds every node broadcasts ``b/d`` tokens
chosen uniformly at random from those it knows; afterwards the node with the
maximum token count is identified by ``O(n)`` rounds of flooding.  Lemma 7.2
shows the identified node then knows either all remaining tokens or at least
``sqrt(bk/d)`` of them with high probability.

Two pieces live here:

* :class:`RandomForwardNode` — the primitive run forever, used as an
  *uncoordinated* dissemination baseline (it alone already matches the
  token-forwarding bound ``O(nkd/b)`` in expectation, with most broadcasts
  wasted towards the end, exactly the effect Section 5.2 describes);
* :class:`GatherState` — the reusable phase logic (random forwarding +
  max-count leader election) that ``greedy-forward`` and
  ``priority-forward`` embed as their gathering step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..tokens.message import ControlMessage, Message, TokenForwardMessage
from ..tokens.token import Token, TokenId
from .base import ProtocolConfig, ProtocolNode
from .token_forwarding import tokens_per_message

__all__ = ["RandomForwardNode", "GatherState", "LeaderInfo"]


class RandomForwardNode(ProtocolNode):
    """Forward ``b/d`` uniformly random known tokens every round, forever."""

    def __init__(self, uid: int, config: ProtocolConfig, rng: np.random.Generator):
        super().__init__(uid, config, rng)
        self.batch = tokens_per_message(config)

    def compose(self, round_index: int) -> Message | None:
        if not self.known:
            return None
        tokens = list(self.known.values())
        if len(tokens) <= self.batch:
            chosen = tokens
        else:
            indices = self.rng.choice(len(tokens), size=self.batch, replace=False)
            chosen = [tokens[int(i)] for i in indices]
        return TokenForwardMessage(sender=self.uid, tokens=tuple(chosen))

    def deliver(self, round_index: int, messages: Sequence[Message]) -> None:
        for message in messages:
            if isinstance(message, TokenForwardMessage):
                for token in message.tokens:
                    self._learn_token(token)


@dataclass
class LeaderInfo:
    """Current best (count, uid) pair seen during max-count flooding."""

    count: int = -1
    uid: int = -1

    def update(self, count: int, uid: int) -> None:
        """Keep the lexicographically largest (count, -uid) — max count, min uid tie-break."""
        if count > self.count or (count == self.count and (self.uid < 0 or uid < self.uid)):
            self.count = count
            self.uid = uid

    def as_fields(self) -> dict:
        return {"count": max(0, self.count), "leader": max(0, self.uid)}


class GatherState:
    """The embeddable gather phase: random-forward then leader identification.

    The embedding protocol drives it with :meth:`compose` / :meth:`deliver`
    during its gather window and reads off :attr:`leader` afterwards.  The
    phase has two sub-windows of configurable length (both ``Theta(n)``):
    ``forward_rounds`` of random forwarding, then ``flood_rounds`` of flooding
    the best ``(token count, uid)`` pair seen so far.
    """

    def __init__(
        self,
        owner: ProtocolNode,
        forward_rounds: int,
        flood_rounds: int,
        excluded: set[TokenId] | None = None,
    ):
        self.owner = owner
        self.config = owner.config
        self.forward_rounds = max(1, forward_rounds)
        self.flood_rounds = max(1, flood_rounds)
        self.batch = tokens_per_message(owner.config)
        self.leader = LeaderInfo()
        #: Token ids no longer "in consideration" (already disseminated); the
        #: set is held by reference so the embedding protocol can keep it live.
        self.excluded = excluded if excluded is not None else set()
        self._local_counted = False

    # ------------------------------------------------------------------
    @property
    def total_rounds(self) -> int:
        """Length of the whole gather phase in rounds."""
        return self.forward_rounds + self.flood_rounds

    def _eligible_tokens(self) -> list[Token]:
        return [
            token
            for tid, token in self.owner.known.items()
            if tid not in self.excluded
        ]

    def _ensure_local_count(self) -> None:
        if not self._local_counted:
            self.leader.update(len(self._eligible_tokens()), self.owner.uid)
            self._local_counted = True

    # ------------------------------------------------------------------
    def compose(self, phase_round: int) -> Message | None:
        """Message for round ``phase_round`` (0-based within the gather phase)."""
        if phase_round < self.forward_rounds:
            tokens = self._eligible_tokens()
            if not tokens:
                return None
            if len(tokens) <= self.batch:
                chosen = tokens
            else:
                indices = self.owner.rng.choice(len(tokens), size=self.batch, replace=False)
                chosen = [tokens[int(i)] for i in indices]
            return TokenForwardMessage(sender=self.owner.uid, tokens=tuple(chosen))
        # Leader-election flooding window.
        self._ensure_local_count()
        return ControlMessage(sender=self.owner.uid, fields=self.leader.as_fields())

    def deliver(self, phase_round: int, messages: Sequence[Message]) -> None:
        """Process the round's inbound messages."""
        for message in messages:
            if isinstance(message, TokenForwardMessage):
                for token in message.tokens:
                    self.owner._learn_token(token)
            elif isinstance(message, ControlMessage):
                count = int(message.fields.get("count", 0))  # type: ignore[arg-type]
                leader = int(message.fields.get("leader", 0))  # type: ignore[arg-type]
                self._ensure_local_count()
                self.leader.update(count, leader)
        if phase_round == self.forward_rounds - 1:
            # Random forwarding just ended: seed the flood with our own count.
            self._ensure_local_count()

    # ------------------------------------------------------------------
    def elected_leader(self) -> int:
        """UID of the node identified as holding the maximum token count."""
        self._ensure_local_count()
        return self.leader.uid

    def elected_count(self) -> int:
        """The maximum token count that was flooded."""
        self._ensure_local_count()
        return max(0, self.leader.count)
