"""Tests for the headline regression gate (benchmarks/check_regression.py).

The script compares live machine-normalised figures (written by
``benchmarks/common.record_headline``) against the reference recorded in
``BENCH_*.json`` files and fails CI on a > ``TOLERANCE`` regression.
These tests drive it against synthetic fixtures in a tmp tree: the
failure path, the within-tolerance pass, missing-baseline and
missing-measurement skips, the stale source-digest skip, and the
smaller-is-better bound direction.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

BENCHMARKS = Path(__file__).resolve().parent.parent / "benchmarks"
if str(BENCHMARKS) not in sys.path:
    sys.path.insert(0, str(BENCHMARKS))

import check_regression as cr  # noqa: E402
import common  # noqa: E402

DIGEST = "digest-abc123"


@pytest.fixture
def bench_tree(tmp_path, monkeypatch):
    """Point the checker (and record_headline) at a synthetic repo root."""
    headlines = tmp_path / ".benchmarks" / "headlines"
    monkeypatch.setattr(cr, "ROOT", tmp_path)
    monkeypatch.setattr(cr, "HEADLINE_DIR", headlines)
    monkeypatch.setattr(common, "HEADLINE_DIR", headlines)
    monkeypatch.setattr(common, "_source_digest", lambda: DIGEST)
    return tmp_path


def write_baseline(root: Path, name: str, value: float, *, larger_is_better=True, bench="BENCH_e99.json"):
    path = root / bench
    payload = json.loads(path.read_text()) if path.exists() else {}
    payload["headline"] = {
        "name": name,
        "value": value,
        "larger_is_better": larger_is_better,
    }
    path.write_text(json.dumps(payload))


def write_live(root: Path, name: str, value: float, *, digest=DIGEST, larger_is_better=True):
    headlines = root / ".benchmarks" / "headlines"
    headlines.mkdir(parents=True, exist_ok=True)
    (headlines / f"{name}.json").write_text(
        json.dumps(
            {
                "name": name,
                "value": value,
                "larger_is_better": larger_is_better,
                "source_digest": digest,
            }
        )
    )


def test_clean_run_passes(bench_tree, capsys):
    write_baseline(bench_tree, "kernel_speedup", 10.0)
    write_live(bench_tree, "kernel_speedup", 9.8)
    assert cr.check() == []
    assert cr.main() == 0
    out = capsys.readouterr().out
    assert "ok" in out and "no headline regressions" in out


def test_regression_beyond_tolerance_fails(bench_tree, capsys):
    write_baseline(bench_tree, "kernel_speedup", 10.0)
    write_live(bench_tree, "kernel_speedup", 7.4)  # floor is 10 * 0.75 = 7.5
    failures = cr.check()
    assert len(failures) == 1
    assert "kernel_speedup regressed" in failures[0]
    assert cr.main() == 1
    captured = capsys.readouterr()
    assert "FAIL" in captured.out
    assert "regressed" in captured.err


def test_boundary_value_is_not_a_regression(bench_tree):
    write_baseline(bench_tree, "kernel_speedup", 10.0)
    write_live(bench_tree, "kernel_speedup", 7.5)  # exactly the floor
    assert cr.check() == []


def test_smaller_is_better_uses_a_ceiling(bench_tree):
    write_baseline(bench_tree, "decode_overhead", 2.0, larger_is_better=False)
    write_live(bench_tree, "decode_overhead", 2.4)  # ceiling is 2 * 1.25 = 2.5
    assert cr.check() == []
    write_live(bench_tree, "decode_overhead", 2.6)
    failures = cr.check()
    assert len(failures) == 1 and "decode_overhead" in failures[0]


def test_missing_baseline_means_nothing_to_check(bench_tree):
    write_live(bench_tree, "kernel_speedup", 1.0)
    assert cr.check() == []
    assert cr.main() == 0


def test_missing_live_measurement_is_skipped(bench_tree, capsys):
    write_baseline(bench_tree, "kernel_speedup", 10.0)
    assert cr.check() == []
    assert "no live measurement" in capsys.readouterr().out


def test_stale_digest_is_skipped_not_compared(bench_tree, capsys):
    """A figure measured on different source must neither pass nor fail."""
    write_baseline(bench_tree, "kernel_speedup", 10.0)
    write_live(bench_tree, "kernel_speedup", 1.0, digest="other-digest")
    assert cr.check() == []
    assert "stale measurement" in capsys.readouterr().out


def test_malformed_files_are_ignored(bench_tree):
    (bench_tree / "BENCH_e98.json").write_text("{not json")
    (bench_tree / "BENCH_e97.json").write_text(json.dumps({"headline": {"name": "x"}}))
    headlines = bench_tree / ".benchmarks" / "headlines"
    headlines.mkdir(parents=True)
    (headlines / "junk.json").write_text("[broken")
    (headlines / "nokey.json").write_text(json.dumps({"source_digest": DIGEST}))
    write_baseline(bench_tree, "kernel_speedup", 10.0)
    write_live(bench_tree, "kernel_speedup", 9.0)
    assert cr.check() == []


def test_tolerance_parameter_is_respected(bench_tree):
    write_baseline(bench_tree, "kernel_speedup", 10.0)
    write_live(bench_tree, "kernel_speedup", 9.0)
    assert cr.check(tolerance=0.25) == []
    assert len(cr.check(tolerance=0.05)) == 1


def test_record_headline_roundtrip(bench_tree):
    """The producer side: record_headline output is what the checker reads."""
    common.record_headline("kernel_speedup", 9.9)
    write_baseline(bench_tree, "kernel_speedup", 10.0)
    assert cr.check() == []
    recorded = json.loads(
        (bench_tree / ".benchmarks" / "headlines" / "kernel_speedup.json").read_text()
    )
    assert recorded["source_digest"] == DIGEST
    assert recorded["larger_is_better"] is True


def test_multiple_headlines_report_each_failure(bench_tree):
    write_baseline(bench_tree, "a_ratio", 4.0, bench="BENCH_e01.json")
    write_baseline(bench_tree, "b_ratio", 8.0, bench="BENCH_e02.json")
    write_live(bench_tree, "a_ratio", 1.0)
    write_live(bench_tree, "b_ratio", 2.0)
    failures = cr.check()
    assert len(failures) == 2
    assert failures[0].startswith("a_ratio") and failures[1].startswith("b_ratio")
