"""Unit tests for matrix algebra over prime fields (repro.gf.matrix)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gf import (
    GF,
    identity,
    inverse,
    is_invertible,
    null_space_basis,
    random_invertible_matrix,
    random_matrix,
    rank,
    row_space_basis,
    rref,
    solve,
    vandermonde,
)


@pytest.fixture
def f5():
    return GF(5)


@pytest.fixture
def f2():
    return GF(2)


class TestRref:
    def test_identity_is_fixed_point(self, f5):
        eye = identity(f5, 3)
        result = rref(f5, eye)
        assert result.rank == 3
        assert result.matrix.tolist() == eye.tolist()
        assert result.pivot_columns == (0, 1, 2)

    def test_zero_matrix(self, f5):
        result = rref(f5, f5.zeros((3, 4)))
        assert result.rank == 0
        assert result.pivot_columns == ()

    def test_known_reduction(self, f5):
        # Rows are multiples of each other over GF(5): rank 1.
        result = rref(f5, [[1, 2, 3], [2, 4, 1], [3, 1, 4]])
        assert result.rank == rank(f5, [[1, 2, 3], [2, 4, 1], [3, 1, 4]])

    def test_dependent_rows(self, f5):
        m = [[1, 2, 3], [2, 4, 6]]  # second row = 2 * first
        assert rank(f5, m) == 1

    def test_gf2_rank(self, f2):
        m = [[1, 0, 1], [0, 1, 1], [1, 1, 0]]  # third = first + second
        assert rank(f2, m) == 2

    def test_pivots_are_unit_columns(self, f5):
        result = rref(f5, [[2, 1, 0], [1, 1, 1], [0, 3, 2]])
        for row_idx, col in enumerate(result.pivot_columns):
            column = [int(result.matrix[r, col]) for r in range(result.matrix.shape[0])]
            expected = [1 if r == row_idx else 0 for r in range(result.matrix.shape[0])]
            assert column == expected

    def test_rank_of_empty(self, f5):
        assert rank(f5, np.zeros((0, 3), dtype=np.int64)) == 0

    def test_vector_input_promoted(self, f5):
        result = rref(f5, [1, 2, 3])
        assert result.rank == 1


class TestRowAndNullSpace:
    def test_row_space_basis_spans(self, f5):
        m = [[1, 2, 0], [0, 1, 1], [1, 3, 1]]
        basis = row_space_basis(f5, m)
        assert basis.shape[0] == rank(f5, m)

    def test_null_space_orthogonal(self, f5, rng):
        m = random_matrix(f5, rng, 3, 6)
        ns = null_space_basis(f5, m)
        assert ns.shape[0] == 6 - rank(f5, m)
        for v in ns:
            product = f5.matmul(m, v.reshape(-1, 1))
            assert all(int(x) == 0 for x in product.ravel().tolist())

    def test_null_space_of_full_rank_square(self, f5):
        eye = identity(f5, 4)
        assert null_space_basis(f5, eye).shape[0] == 0

    def test_rank_nullity_theorem(self, f2, rng):
        for _ in range(5):
            m = random_matrix(f2, rng, 4, 7)
            assert rank(f2, m) + null_space_basis(f2, m).shape[0] == 7


class TestSolve:
    def test_solve_identity(self, f5):
        eye = identity(f5, 3)
        x = solve(f5, eye, [1, 2, 3])
        assert x.tolist() == [1, 2, 3]

    def test_solve_consistent_system(self, f5, rng):
        a = random_invertible_matrix(f5, rng, 4)
        x_true = f5.asarray([1, 4, 2, 3])
        b = f5.matmul(a, x_true.reshape(-1, 1)).ravel()
        x = solve(f5, a, b)
        assert x.tolist() == x_true.tolist()

    def test_solve_inconsistent_returns_none(self, f5):
        a = [[1, 0], [1, 0]]
        b = [1, 2]
        assert solve(f5, a, b) is None

    def test_solve_matrix_rhs(self, f5, rng):
        a = random_invertible_matrix(f5, rng, 3)
        rhs = random_matrix(f5, rng, 3, 2)
        x = solve(f5, a, rhs)
        assert f5.matmul(a, x).tolist() == rhs.tolist()

    def test_solve_shape_mismatch(self, f5):
        with pytest.raises(ValueError):
            solve(f5, [[1, 2], [3, 4]], [1, 2, 3])


class TestInverse:
    def test_inverse_roundtrip(self, f5, rng):
        a = random_invertible_matrix(f5, rng, 4)
        a_inv = inverse(f5, a)
        assert f5.matmul(a, a_inv).tolist() == identity(f5, 4).tolist()

    def test_singular_raises(self, f5):
        with pytest.raises(ValueError):
            inverse(f5, [[1, 2], [2, 4]])

    def test_non_square_raises(self, f5):
        with pytest.raises(ValueError):
            inverse(f5, [[1, 2, 3], [4, 5, 6]])

    def test_is_invertible(self, f5):
        assert is_invertible(f5, [[1, 1], [0, 1]])
        assert not is_invertible(f5, [[1, 2], [2, 4]])
        assert not is_invertible(f5, [[1, 2, 3]])

    def test_gf2_inverse(self, f2):
        a = [[1, 1, 0], [0, 1, 1], [0, 0, 1]]
        a_inv = inverse(f2, a)
        assert f2.matmul(f2.asarray(a), a_inv).tolist() == identity(f2, 3).tolist()


class TestRandomAndVandermonde:
    def test_random_matrix_shape_and_range(self, f5, rng):
        m = random_matrix(f5, rng, 3, 7)
        assert m.shape == (3, 7)
        assert all(0 <= int(x) < 5 for x in m.ravel().tolist())

    def test_random_invertible_is_invertible(self, f2, rng):
        for _ in range(5):
            assert is_invertible(f2, random_invertible_matrix(f2, rng, 5))

    def test_vandermonde_distinct_points_full_rank(self):
        f = GF(11)
        v = vandermonde(f, [1, 2, 3, 4], 4)
        assert rank(f, v) == 4

    def test_vandermonde_values(self):
        f = GF(7)
        v = vandermonde(f, [3], 4)
        assert v.tolist() == [[1, 3, 2, 6]]  # 3^0..3^3 mod 7
