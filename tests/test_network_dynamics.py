"""Unit tests for the packed-native dynamics subsystem.

Covers the raw processes (edge-Markov, waypoint mobility, churn, rewiring,
precomputed replay), the model-compliance transformers (connectivity
patcher, T-interval enforcer), the packed-graph helpers, and the
:class:`ScheduleAdversary` bridge into the engines.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.algorithms import TokenForwardingNode
from repro.network import (
    ChurnProcess,
    ConnectivityPatcher,
    DegreeBoundedRewiringProcess,
    EdgeMarkovProcess,
    PrecomputedSchedule,
    RandomWaypointProcess,
    ScheduleAdversary,
    TIntervalEnforcer,
    Topology,
    pack_dense_adjacency,
    packed_components,
    packed_is_connected,
    ring_topology,
    spanning_structure,
)
from repro.network.stability import is_t_interval_connected, max_interval_connectivity
from repro.simulation import run_dissemination, standard_instance
from tests.conftest import make_config


def _processes(n: int, seed: int):
    """One instance of every raw process family at size ``n``."""
    return [
        EdgeMarkovProcess(n, p_birth=0.05, p_death=0.25, seed=seed),
        RandomWaypointProcess(n, radius=0.3, speed=0.07, seed=seed),
        ChurnProcess(
            EdgeMarkovProcess(n, p_birth=0.1, p_death=0.3, seed=seed),
            max_churn=2,
            seed=seed + 1,
        ),
        DegreeBoundedRewiringProcess(n, degree_bound=4, rewires_per_round=3, seed=seed),
    ]


def _assert_legal_rows(batch: np.ndarray, n: int) -> None:
    """Symmetric, self-loop free, no bits outside 0..n-1 (connectivity aside)."""
    for r in range(batch.shape[0]):
        topology = Topology.from_packed(n, batch[r])
        masks = topology.masks
        for u in range(n):
            assert not (masks[u] >> u) & 1, f"self-loop on {u} in round {r}"
            assert not masks[u] >> n, f"out-of-range bits in row {u} round {r}"
        for u in range(n):
            mask = masks[u]
            while mask:
                v = (mask & -mask).bit_length() - 1
                mask &= mask - 1
                assert (masks[v] >> u) & 1, f"asymmetric edge ({u},{v}) round {r}"


class TestPackedHelpers:
    @pytest.mark.parametrize("n", [5, 64, 100])
    def test_pack_dense_adjacency_matches_topology_layout(self, n):
        rng = np.random.default_rng(0)
        dense = rng.random((n, n)) < 0.2
        dense |= dense.T
        np.fill_diagonal(dense, False)
        packed = pack_dense_adjacency(dense[None])[0]
        topology = Topology.from_edges(n, np.argwhere(np.triu(dense)))
        assert np.array_equal(packed, topology.packed_adjacency())

    def test_packed_components_and_connectivity(self):
        # Two disjoint triangles: {0,1,2} and {3,4,5}.
        dense = np.zeros((6, 6), dtype=bool)
        for a, b in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]:
            dense[a, b] = dense[b, a] = True
        packed = pack_dense_adjacency(dense[None])[0]
        assert not packed_is_connected(packed, 6)
        components = packed_components(packed, 6)
        assert components == [0b000111, 0b111000]
        ring = ring_topology(6).packed_adjacency()
        assert packed_is_connected(ring, 6)
        assert packed_components(ring, 6) == [0b111111]

    @pytest.mark.parametrize("n", [1, 6, 80])
    def test_spanning_structure_is_connected_spanning(self, n):
        rng = np.random.default_rng(1)
        dense = rng.random((n, n)) < 1.5 / max(1, n)  # sparse, usually disconnected
        dense |= dense.T
        np.fill_diagonal(dense, False)
        packed = pack_dense_adjacency(dense[None])[0]
        structure = spanning_structure(packed, n)
        assert packed_is_connected(structure, n)
        # Tree edges come from the input; only representative-path edges are new.
        extra = structure & ~packed
        new_edges = int(np.bitwise_count(extra).sum()) // 2
        assert new_edges == len(packed_components(packed, n)) - 1


class TestRawProcesses:
    @pytest.mark.parametrize("n", [9, 70])
    def test_batches_are_legal_and_resume(self, n):
        for process in _processes(n, seed=3):
            first = process.next_batch(4)
            second = process.next_batch(3)
            assert first.shape == (4, n, process.words)
            assert second.shape == (3, n, process.words)
            _assert_legal_rows(np.concatenate([first, second]), n)

    def test_reset_replays_identical_schedule(self):
        for process in _processes(24, seed=5):
            a = process.next_batch(6).copy()
            b = process.next_batch(5).copy()
            process.reset()
            assert np.array_equal(process.next_batch(6), a)
            assert np.array_equal(process.next_batch(5), b)

    def test_edge_markov_density_tracks_stationary_point(self):
        process = EdgeMarkovProcess(40, p_birth=0.1, p_death=0.3, seed=0)
        batch = process.next_batch(80)
        density = np.bitwise_count(batch).sum() / (batch.shape[0] * 40 * 39)
        assert abs(density - 0.25) < 0.05

    def test_edge_markov_extreme_rates(self):
        frozen = EdgeMarkovProcess(10, p_birth=0.0, p_death=0.0, seed=1)
        batch = frozen.next_batch(4)
        assert not batch.any()  # stationary density 0, nothing is ever born
        # p_birth = p_death = 1 flips every edge every round: starting from an
        # empty graph the schedule alternates complete / empty.
        flickering = EdgeMarkovProcess(10, p_birth=1.0, p_death=1.0, seed=1, initial_density=0.0)
        batch = flickering.next_batch(4)
        assert Topology.from_packed(10, batch[0]).number_of_edges() == 45
        assert not batch[1].any()
        assert np.array_equal(batch[0], batch[2])

    def test_waypoint_positions_stay_in_area(self):
        process = RandomWaypointProcess(30, radius=0.2, speed=0.2, seed=2, area=2.0)
        process.next_batch(50)
        assert (process._pos >= 0).all() and (process._pos <= 2.0).all()

    def test_churn_isolates_inactive_nodes(self):
        process = ChurnProcess(
            EdgeMarkovProcess(20, p_birth=0.4, p_death=0.1, seed=0),
            max_churn=3,
            min_active=5,
            seed=1,
            record_activity=True,
        )
        batch = process.next_batch(30)
        assert len(process.activity_history) == 30
        for r, active in enumerate(process.activity_history):
            assert active.sum() >= 5
            degrees = np.bitwise_count(batch[r]).sum(axis=1)
            assert (degrees[~active] == 0).all()

    def test_rewiring_respects_degree_bound_and_edge_count(self):
        n, bound = 30, 4
        process = DegreeBoundedRewiringProcess(
            n, degree_bound=bound, rewires_per_round=5, seed=7
        )
        batch = process.next_batch(40)
        for r in range(40):
            degrees = np.bitwise_count(batch[r]).sum(axis=1)
            assert degrees.max() <= bound
            assert degrees.sum() == 2 * n  # edge count invariant: |E| = n (the ring's)

    def test_precomputed_schedule_cycles_and_rejects_bad_shapes(self):
        topologies = [ring_topology(8), ring_topology(8).union(Topology.from_edges(8, [(0, 4)]))]
        process = PrecomputedSchedule.from_topologies(topologies)
        assert process.guarantees_connected
        batch = process.next_batch(5)
        assert np.array_equal(batch[0], batch[2])  # cycled
        assert np.array_equal(batch[1], batch[3])
        strict = PrecomputedSchedule(batch[:2].copy(), cycle=False)
        strict.next_batch(2)
        with pytest.raises(ValueError):
            strict.next_batch(1)
        with pytest.raises(ValueError):
            PrecomputedSchedule(np.zeros((0, 4, 1), dtype=np.uint64))


class TestTransformers:
    def test_patcher_makes_every_round_connected(self):
        process = ConnectivityPatcher(RandomWaypointProcess(40, radius=0.12, seed=4))
        for topology in process.topologies(25):
            assert topology.is_connected()
            topology.validate(40)  # legal by construction

    def test_patcher_passes_connected_rounds_through(self):
        inner = EdgeMarkovProcess(12, p_birth=0.9, p_death=0.05, seed=0)  # dense
        raw = inner.next_batch(10)
        inner.reset()
        patched = ConnectivityPatcher(inner).next_batch(10)
        for r in range(10):
            if packed_is_connected(raw[r], 12):
                assert np.array_equal(raw[r], patched[r])

    @pytest.mark.parametrize("interval", [1, 3, 5])
    def test_enforcer_output_is_t_interval_connected(self, interval):
        process = TIntervalEnforcer(
            EdgeMarkovProcess(32, p_birth=0.02, p_death=0.4, seed=6), interval
        )
        topologies = process.topologies(4 * interval + 3)
        assert all(t.is_connected() for t in topologies)
        assert is_t_interval_connected(topologies, interval)

    def test_enforcer_only_adds_edges(self):
        inner = EdgeMarkovProcess(20, p_birth=0.05, p_death=0.3, seed=8)
        raw = inner.next_batch(12)
        inner.reset()
        enforced = TIntervalEnforcer(inner, 4).next_batch(12)
        assert not (raw & ~enforced).any()

    def test_enforcer_beats_raw_interval_connectivity(self):
        inner = EdgeMarkovProcess(24, p_birth=0.03, p_death=0.5, seed=9)
        raw = inner.topologies(16)
        inner.reset()
        enforced = TIntervalEnforcer(inner, 4).topologies(16)
        assert max_interval_connectivity(enforced) >= 4
        assert max_interval_connectivity(enforced) >= max_interval_connectivity(raw)


class TestScheduleAdversary:
    def test_serves_process_rounds_in_order(self):
        process = ConnectivityPatcher(EdgeMarkovProcess(10, seed=1))
        expected = process.topologies(7)
        process.reset()
        adversary = ScheduleAdversary(process, batch_rounds=3)
        served = [adversary.choose_topology(r, 10, []) for r in range(7)]
        assert [t.masks for t in served] == [t.masks for t in expected]

    def test_pre_validated_only_for_guaranteed_processes(self):
        patched = ScheduleAdversary(ConnectivityPatcher(EdgeMarkovProcess(10, seed=1)))
        assert patched.choose_topology(0, 10, [])._valid
        raw = ScheduleAdversary(EdgeMarkovProcess(10, seed=1))
        assert not raw.choose_topology(0, 10, [])._valid

    def test_skipping_forward_and_replay_protection(self):
        adversary = ScheduleAdversary(ConnectivityPatcher(EdgeMarkovProcess(8, seed=2)))
        first = adversary.choose_topology(0, 8, [])
        assert adversary.choose_topology(0, 8, []) is first  # re-ask same round
        adversary.choose_topology(5, 8, [])  # T-stable wrappers skip forward
        with pytest.raises(ValueError):
            adversary.choose_topology(2, 8, [])
        with pytest.raises(ValueError):
            adversary.choose_topology(0, 9, [])  # wrong n

    def test_short_non_cycling_schedule_drives_a_shorter_run(self):
        # A 5-round recorded trace must serve a <=5-round consumer even
        # though the adversary's default pull is a much larger batch.
        process = ConnectivityPatcher(EdgeMarkovProcess(6, seed=1))
        recorded = process.topologies(5)
        strict = PrecomputedSchedule.from_topologies(recorded, cycle=False)
        adversary = ScheduleAdversary(strict, batch_rounds=64)
        served = [adversary.choose_topology(r, 6, []) for r in range(5)]
        assert [t.masks for t in served] == [t.masks for t in recorded]
        with pytest.raises(ValueError, match="exhausted"):
            adversary.choose_topology(5, 6, [])

    def test_accepts_topology_sequence_and_packed_array(self):
        topologies = [ring_topology(6)] * 3
        for source in (topologies, np.stack([t.packed_adjacency() for t in topologies])):
            adversary = ScheduleAdversary(source)
            served = adversary.choose_topology(0, 6, [])
            assert served.masks == ring_topology(6).masks

    def test_run_and_reset_determinism_on_all_engines(self):
        n = 12
        config = make_config(n)
        placement = standard_instance(n, n, 8, seed=0)
        adversary = ScheduleAdversary(
            TIntervalEnforcer(EdgeMarkovProcess(n, p_birth=0.05, p_death=0.3, seed=3), 3)
        )
        results = {
            engine: run_dissemination(
                TokenForwardingNode,
                config,
                placement,
                adversary,  # reused: run_dissemination resets it
                seed=1,
                engine=engine,
                record_topologies=True,
            )
            for engine in ("kernel", "mask", "legacy")
        }
        kernel, mask, legacy = results["kernel"], results["mask"], results["legacy"]
        assert kernel.engine == "kernel" and kernel.completed and kernel.correct
        assert dataclasses.asdict(kernel.metrics) == dataclasses.asdict(mask.metrics)
        assert dataclasses.asdict(kernel.metrics) == dataclasses.asdict(legacy.metrics)
        kernel_edges = [{frozenset(e) for e in t.edges} for t in kernel.topologies]
        mask_edges = [{frozenset(e) for e in t.edges} for t in mask.topologies]
        legacy_edges = [{frozenset(e) for e in g.edges} for g in legacy.topologies]
        assert kernel_edges == mask_edges == legacy_edges
