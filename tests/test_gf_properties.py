"""Property-based tests (hypothesis) for the finite-field substrate."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import GF, GF2Basis, pack_bits, rank, rref, solve, unpack_bits

FIELDS = [2, 3, 5, 13, 257]

field_orders = st.sampled_from(FIELDS)


@st.composite
def field_and_elements(draw, count=2):
    q = draw(field_orders)
    values = [draw(st.integers(min_value=0, max_value=q - 1)) for _ in range(count)]
    return GF(q), values


class TestFieldAxioms:
    @given(field_and_elements(count=3))
    @settings(max_examples=80, deadline=None)
    def test_addition_associative_commutative(self, data):
        f, (a, b, c) = data
        assert f.add(a, f.add(b, c)) == f.add(f.add(a, b), c)
        assert f.add(a, b) == f.add(b, a)

    @given(field_and_elements(count=3))
    @settings(max_examples=80, deadline=None)
    def test_multiplication_associative_commutative(self, data):
        f, (a, b, c) = data
        assert f.mul(a, f.mul(b, c)) == f.mul(f.mul(a, b), c)
        assert f.mul(a, b) == f.mul(b, a)

    @given(field_and_elements(count=3))
    @settings(max_examples=80, deadline=None)
    def test_distributivity(self, data):
        f, (a, b, c) = data
        assert f.mul(a, f.add(b, c)) == f.add(f.mul(a, b), f.mul(a, c))

    @given(field_and_elements(count=1))
    @settings(max_examples=60, deadline=None)
    def test_additive_inverse(self, data):
        f, (a,) = data
        assert f.add(a, f.neg(a)) == 0

    @given(field_and_elements(count=1))
    @settings(max_examples=60, deadline=None)
    def test_multiplicative_inverse(self, data):
        f, (a,) = data
        if a != 0:
            assert f.mul(a, f.inv(a)) == 1

    @given(field_and_elements(count=2))
    @settings(max_examples=60, deadline=None)
    def test_subtraction_inverts_addition(self, data):
        f, (a, b) = data
        assert f.sub(f.add(a, b), b) == a


class TestMatrixProperties:
    @given(
        q=st.sampled_from([2, 3, 5]),
        rows=st.integers(min_value=1, max_value=5),
        cols=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_rref_idempotent(self, q, rows, cols, seed):
        f = GF(q)
        rng = np.random.default_rng(seed)
        m = f.random_elements(rng, (rows, cols))
        once = rref(f, m)
        twice = rref(f, once.matrix)
        assert once.matrix.tolist() == twice.matrix.tolist()
        assert once.rank == twice.rank

    @given(
        q=st.sampled_from([2, 5]),
        rows=st.integers(min_value=1, max_value=5),
        cols=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_rank_bounded(self, q, rows, cols, seed):
        f = GF(q)
        rng = np.random.default_rng(seed)
        m = f.random_elements(rng, (rows, cols))
        r = rank(f, m)
        assert 0 <= r <= min(rows, cols)

    @given(
        q=st.sampled_from([2, 5, 13]),
        n=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_solve_recovers_solution(self, q, n, seed):
        f = GF(q)
        rng = np.random.default_rng(seed)
        m = f.random_elements(rng, (n, n))
        x = f.random_elements(rng, (n,))
        b = f.matmul(m, x.reshape(-1, 1)).ravel()
        found = solve(f, m, b)
        # Any solution must reproduce b (the system is consistent by construction).
        assert found is not None
        assert f.matmul(m, found.reshape(-1, 1)).ravel().tolist() == b.tolist()


class TestGF2BasisProperties:
    @given(
        length=st.integers(min_value=1, max_value=24),
        vectors=st.lists(st.integers(min_value=0, max_value=2**24 - 1), min_size=0, max_size=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_rank_never_exceeds_dimension_or_inserts(self, length, vectors):
        basis = GF2Basis(length)
        mask = (1 << length) - 1
        innovative = basis.extend([v & mask for v in vectors])
        assert basis.rank == innovative
        assert basis.rank <= min(length, len(vectors))

    @given(
        length=st.integers(min_value=1, max_value=16),
        vectors=st.lists(st.integers(min_value=0, max_value=2**16 - 1), min_size=1, max_size=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_span_contains_all_inserted(self, length, vectors):
        basis = GF2Basis(length)
        mask = (1 << length) - 1
        reduced = [v & mask for v in vectors]
        basis.extend(reduced)
        for v in reduced:
            assert basis.contains(v)

    @given(
        length=st.integers(min_value=1, max_value=16),
        vectors=st.lists(st.integers(min_value=1, max_value=2**16 - 1), min_size=1, max_size=12),
        direction=st.integers(min_value=1, max_value=2**16 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_sensing_matches_bruteforce(self, length, vectors, direction):
        basis = GF2Basis(length)
        mask = (1 << length) - 1
        reduced = [v & mask for v in vectors if v & mask]
        basis.extend(reduced)
        direction &= mask
        if direction == 0:
            return
        # Brute force: does any vector in the span have odd overlap with direction?
        # It suffices to check basis vectors (sensing is linear-algebraic:
        # the span is orthogonal to direction iff every basis vector is).
        expected = any(bin(m & direction).count("1") % 2 == 1 for m in basis.basis_masks())
        assert basis.senses(direction) == expected

    @given(
        bits=st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_pack_unpack_roundtrip(self, bits):
        mask = pack_bits(bits)
        assert unpack_bits(mask, len(bits)).tolist() == bits
