"""Contract tests for the round-trace telemetry layer (``repro.obs``).

The standing guarantees pinned here:

1. **Inertness** — attaching a :class:`~repro.obs.trace.TraceRecorder`
   never changes the execution: metrics are bit-identical with and
   without one, clocked or not.
2. **Determinism** — two same-seed runs record byte-identical trace
   content (equal ``content_digest()``).
3. **Cross-engine identity** — kernel, mask and legacy runs of the same
   seeded instance produce byte-identical trace *content*; only the
   manifest's context section (engine name, timings) differs.  This is a
   per-round strengthening of the end-of-run ``RunMetrics`` parity the
   engine-equivalence tests pin.
4. **Diff precision** — :func:`~repro.obs.diff.diff_traces` says
   ``identical`` on matching traces and names the first divergent round
   (and node, for per-node columns) on perturbed ones.
5. **Round-trip** — ``save_trace`` / ``load_trace`` preserve content and
   manifest exactly.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.algorithms import (
    GreedyForwardNode,
    IndexedBroadcastNode,
    TokenForwardingNode,
)
from repro.network.faults import FaultModel
from repro.obs import (
    ManualClock,
    PhaseProfiler,
    ROUND_COUNTERS,
    TraceRecorder,
    diff_traces,
    load_trace,
)
from repro.obs.trace import CONTENT_ARRAYS, unpack_node_bitmap
from repro.scenarios import fault_model_for, make_scenario
from repro.simulation import run_dissemination, standard_instance
from tests.conftest import make_config

ENGINES = ("kernel", "mask", "legacy")


def _traced_run(
    factory,
    n,
    scenario,
    *,
    engine,
    seed=3,
    k=None,
    faults=None,
    recorder=None,
    **kwargs,
):
    config = make_config(n, k=k)
    placement = standard_instance(config.n, config.k, config.token_bits, seed=seed)
    adversary = make_scenario(scenario, n, seed=seed)
    trace = TraceRecorder() if recorder is None else recorder
    result = run_dissemination(
        factory,
        config,
        placement,
        adversary,
        seed=seed,
        engine=engine,
        faults=faults,
        trace=trace,
        **kwargs,
    )
    return result, trace.to_trace()


# ----------------------------------------------------------------------
# determinism and inertness


def test_same_seed_traces_are_byte_identical():
    _, first = _traced_run(TokenForwardingNode, 12, "edge_markov", engine="auto")
    _, second = _traced_run(TokenForwardingNode, 12, "edge_markov", engine="auto")
    assert first.content_digest() == second.content_digest()
    diff = diff_traces(first, second)
    assert diff.identical
    assert diff.describe() == "identical"


@pytest.mark.parametrize("engine", ENGINES)
def test_tracing_is_inert(engine):
    config = make_config(12)
    placement = standard_instance(12, 12, 8, seed=5)

    def run(trace):
        return run_dissemination(
            TokenForwardingNode,
            config,
            placement,
            make_scenario("edge_markov", 12, seed=5),
            seed=5,
            engine=engine,
            trace=trace,
        )

    bare = run(None)
    traced = run(TraceRecorder())
    clocked = run(TraceRecorder(clock=ManualClock()))
    assert dataclasses.asdict(bare.metrics) == dataclasses.asdict(traced.metrics)
    assert dataclasses.asdict(bare.metrics) == dataclasses.asdict(clocked.metrics)


def test_counter_columns_sum_to_final_metrics():
    result, trace = _traced_run(IndexedBroadcastNode, 12, "hostile_mix", engine="kernel")
    metrics = result.metrics
    assert trace.rounds == metrics.rounds_executed
    for name in ROUND_COUNTERS:
        assert int(trace.arrays[name].sum()) == int(getattr(metrics, name)), name
    # knowledge is monotone per node under benign-to-hostile forwarding
    counts = trace.arrays["knowledge_counts"].astype(np.int64)
    assert counts.shape == (trace.rounds, 12)
    assert trace.arrays["coded_ranks"].shape == (trace.rounds, 12)


# ----------------------------------------------------------------------
# cross-engine content identity

CROSS_ENGINE_CASES = [
    pytest.param(TokenForwardingNode, "edge_markov", 12, None, id="forwarding-benign"),
    pytest.param(
        IndexedBroadcastNode, "edge_markov", 10, None, id="coded-benign"
    ),
    pytest.param(
        IndexedBroadcastNode, "hostile_mix", 12, None, id="coded-hostile-mix"
    ),
    pytest.param(
        GreedyForwardNode,
        "partition_heal_waypoint",
        12,
        None,
        id="greedy-partition",
    ),
    pytest.param(
        TokenForwardingNode,
        "crash_recover_churn",
        12,
        "crash_recover_churn",
        id="forwarding-crash-recover",
    ),
]


@pytest.mark.parametrize("factory,scenario,n,fault_scenario", CROSS_ENGINE_CASES)
def test_trace_content_identical_across_engines(factory, scenario, n, fault_scenario):
    faults = (
        fault_model_for(fault_scenario, n, seed=3) if fault_scenario else None
    )
    traces = {}
    for engine in ENGINES:
        _, traces[engine] = _traced_run(
            factory, n, scenario, engine=engine, faults=faults
        )
    kernel, mask, legacy = (traces[e] for e in ENGINES)
    assert kernel.content_digest() == mask.content_digest()
    assert kernel.content_digest() == legacy.content_digest()
    # context still tells the runs apart
    assert {traces[e].context["engine"] for e in ENGINES} == set(ENGINES)
    assert diff_traces(kernel, legacy).identical


def test_down_bitmap_and_partition_columns_record_fault_state():
    n = 12
    faults = fault_model_for("partition_heal_waypoint", n, seed=3)
    _, trace = _traced_run(
        GreedyForwardNode,
        n,
        "partition_heal_waypoint",
        engine="kernel",
        faults=faults,
    )
    partition = trace.arrays["partition_active"].astype(bool)
    windows = faults.partitions.windows
    for round_index in range(trace.rounds):
        expected = any(start <= round_index < end for start, end in windows)
        assert partition[round_index] == expected, round_index
    down = unpack_node_bitmap(trace.arrays["down_nodes"], n)
    assert down.shape == (trace.rounds, n)
    crash_faults = fault_model_for("crash_recover_churn", n, seed=3)
    _, crashed = _traced_run(
        TokenForwardingNode,
        n,
        "crash_recover_churn",
        engine="kernel",
        faults=crash_faults,
    )
    crashed_down = unpack_node_bitmap(crashed.arrays["down_nodes"], n)
    assert crashed_down.any(), "crash scenario recorded no down node"


# ----------------------------------------------------------------------
# diff precision


def test_diff_names_first_divergent_round_and_node():
    _, a = _traced_run(TokenForwardingNode, 12, "edge_markov", engine="kernel")
    _, b = _traced_run(TokenForwardingNode, 12, "edge_markov", engine="kernel")
    # perturb one per-node cell and one scalar counter
    b.arrays["knowledge_counts"] = b.arrays["knowledge_counts"].copy()
    b.arrays["knowledge_counts"][4, 7] += 1
    b.arrays["broadcasts"] = b.arrays["broadcasts"].copy()
    b.arrays["broadcasts"][6] += 3
    diff = diff_traces(a, b)
    assert not diff.identical
    assert diff.first.field == "knowledge_counts"
    assert diff.first.round_index == 4
    assert diff.first.node == 7
    fields = {d.field: d for d in diff.divergences}
    assert fields["broadcasts"].round_index == 6
    assert fields["broadcasts"].node is None
    assert "round 4, node 7" in diff.describe()


def test_diff_reports_manifest_and_length_mismatches():
    _, a = _traced_run(TokenForwardingNode, 12, "edge_markov", engine="kernel")
    _, b = _traced_run(TokenForwardingNode, 12, "edge_markov", engine="kernel", seed=4)
    diff = diff_traces(a, b)
    assert not diff.identical
    assert "seed" in diff.manifest_mismatches
    truncated_arrays = {
        name: array[:-1] if array.shape[0] == a.rounds else array
        for name, array in a.arrays.items()
    }
    truncated = dataclasses.replace(a, arrays=truncated_arrays)
    short = diff_traces(a, truncated)
    assert not short.identical
    assert short.length_mismatch == (a.rounds, a.rounds - 1)
    assert "different" in short.describe() and "lengths" in short.describe()


# ----------------------------------------------------------------------
# serialisation round-trip


def test_save_load_roundtrip(tmp_path):
    _, trace = _traced_run(IndexedBroadcastNode, 10, "edge_markov", engine="kernel")
    path = trace.save(tmp_path / "run.npz")
    loaded = load_trace(path)
    assert loaded.content_digest() == trace.content_digest()
    assert loaded.manifest == trace.manifest
    for name in CONTENT_ARRAYS:
        np.testing.assert_array_equal(loaded.arrays[name], trace.arrays[name])
    assert diff_traces(loaded, trace).identical


def test_save_appends_npz_suffix(tmp_path):
    _, trace = _traced_run(TokenForwardingNode, 12, "edge_markov", engine="kernel")
    path = trace.save(tmp_path / "bare")
    assert path.suffix == ".npz"
    assert load_trace(path).rounds == trace.rounds


def test_load_rejects_foreign_npz(tmp_path):
    path = tmp_path / "foreign.npz"
    np.savez(path, data=np.arange(4))
    with pytest.raises(ValueError, match="no manifest"):
        load_trace(path)


# ----------------------------------------------------------------------
# recorder contract


def test_recorder_refuses_reuse_and_out_of_order_rounds():
    recorder = TraceRecorder()
    _traced_run(
        TokenForwardingNode, 12, "edge_markov", engine="kernel", recorder=recorder
    )
    with pytest.raises(RuntimeError, match="one recorder per run"):
        _traced_run(
            TokenForwardingNode, 12, "edge_markov", engine="kernel", recorder=recorder
        )
    fresh = TraceRecorder()
    with pytest.raises(RuntimeError, match="begin_run"):
        fresh.to_trace()


def test_recorder_rejects_untraceable_widths():
    recorder = TraceRecorder()
    config = make_config(4)
    wide = dataclasses.replace(config, n=2**16, k=2**16)
    with pytest.raises(ValueError, match="uint16"):
        recorder.begin_run(
            config=wide, seed=0, engine="kernel", factory=TokenForwardingNode
        )


def test_manifest_splits_content_from_context():
    faults = FaultModel(loss=0.25)
    recorder = TraceRecorder(label="pinned")
    _, trace = _traced_run(
        TokenForwardingNode,
        12,
        "edge_markov",
        engine="kernel",
        faults=faults,
        recorder=recorder,
    )
    content = trace.content
    assert content["protocol"] == "TokenForwardingNode"
    assert content["label"] == "pinned"
    assert content["faults"] == repr(faults)
    assert content["rounds"] == trace.rounds
    context = trace.context
    assert context["engine"] == "kernel"
    assert context["clocked"] is False
    assert context["profile"] == {}
    assert "source_digest" in context


# ----------------------------------------------------------------------
# clock seam and phase profiler


def test_manual_clock_profiler_records_phases():
    clock = ManualClock()
    profiler = PhaseProfiler(clock)
    assert profiler.enabled
    with profiler.span("compose"):
        clock.advance(0.5)
        with profiler.span("insert"):
            clock.advance(0.25)
    with profiler.span("compose"):
        clock.advance(1.0)
    report = profiler.report()
    assert report["compose"] == {"seconds": 1.75, "calls": 2}
    assert report["insert"] == {"seconds": 0.25, "calls": 1}
    with pytest.raises(ValueError, match="forward"):
        clock.advance(-1.0)


def test_clockless_profiler_is_inert():
    profiler = PhaseProfiler()
    assert not profiler.enabled
    first = profiler.span("compose")
    second = profiler.span("deliver")
    assert first is second, "clockless spans must share one no-op object"
    with first:
        pass
    assert profiler.report() == {}


def test_clocked_trace_reports_engine_phases():
    recorder = TraceRecorder(clock=ManualClock())
    _, trace = _traced_run(
        IndexedBroadcastNode,
        10,
        "edge_markov",
        engine="kernel",
        faults=FaultModel(loss=0.1),  # the faults span needs a bound plan
        recorder=recorder,
    )
    assert trace.context["clocked"] is True
    profile = trace.context["profile"]
    for phase in ("compose", "faults", "deliver", "insert", "decode", "materialise"):
        assert phase in profile, phase
        assert profile[phase]["calls"] >= 1


# ----------------------------------------------------------------------
# RunMetrics.to_dict coverage


def test_metrics_to_dict_covers_every_field():
    result, _ = _traced_run(TokenForwardingNode, 12, "edge_markov", engine="kernel")
    metrics = result.metrics
    data = metrics.to_dict()
    for field in dataclasses.fields(metrics):
        assert field.name in data, field.name
    for derived in (
        "completed",
        "average_message_bits",
        "waste_fraction",
        "surviving_completion_rate",
    ):
        assert derived in data, derived
    assert data["progress"] == [list(entry) for entry in metrics.progress]
    summary = metrics.summary()
    assert summary["rounds"] == data["rounds_executed"]
    assert summary["completed"] == data["completed"]
