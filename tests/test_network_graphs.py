"""Unit tests for topology generators and validation (repro.network.graphs)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.network import (
    binary_tree_graph,
    complete_graph,
    dumbbell_graph,
    path_graph,
    random_connected_graph,
    random_matching_plus_path,
    random_tree,
    ring_graph,
    rotating_star,
    shifted_ring,
    split_graph,
    star_graph,
    validate_topology,
)


class TestValidation:
    def test_valid_topology_passes(self):
        validate_topology(path_graph(5), 5)

    def test_wrong_node_set_rejected(self):
        g = nx.Graph()
        g.add_nodes_from([1, 2, 3])
        g.add_edges_from([(1, 2), (2, 3)])
        with pytest.raises(ValueError):
            validate_topology(g, 3)

    def test_disconnected_rejected(self):
        g = nx.Graph()
        g.add_nodes_from(range(4))
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        with pytest.raises(ValueError):
            validate_topology(g, 4)

    def test_self_loop_rejected(self):
        g = path_graph(3)
        g.add_edge(1, 1)
        with pytest.raises(ValueError):
            validate_topology(g, 3)

    def test_single_node_graph_ok(self):
        g = nx.Graph()
        g.add_node(0)
        validate_topology(g, 1)


class TestDeterministicTopologies:
    @pytest.mark.parametrize("n", [2, 3, 7, 16])
    def test_path_is_connected_tree(self, n):
        g = path_graph(n)
        assert nx.is_connected(g)
        assert g.number_of_edges() == n - 1

    def test_path_with_custom_order(self):
        g = path_graph(4, order=[3, 1, 0, 2])
        assert g.has_edge(3, 1) and g.has_edge(1, 0) and g.has_edge(0, 2)

    def test_path_rejects_bad_order(self):
        with pytest.raises(ValueError):
            path_graph(3, order=[0, 1, 1])

    @pytest.mark.parametrize("n", [3, 5, 10])
    def test_ring_degree_two(self, n):
        g = ring_graph(n)
        assert all(d == 2 for _, d in g.degree)

    def test_ring_small_n_falls_back(self):
        assert ring_graph(2).number_of_edges() == 1

    @pytest.mark.parametrize("n,center", [(5, 0), (5, 3), (8, 7)])
    def test_star_structure(self, n, center):
        g = star_graph(n, center)
        assert g.degree[center] == n - 1
        assert all(g.degree[v] == 1 for v in range(n) if v != center)

    def test_star_bad_center(self):
        with pytest.raises(ValueError):
            star_graph(4, center=4)

    def test_complete_graph_edges(self):
        assert complete_graph(6).number_of_edges() == 15

    def test_binary_tree_connected(self):
        g = binary_tree_graph(17)
        assert nx.is_connected(g)
        assert g.number_of_edges() == 16

    def test_dumbbell_has_single_bridge(self):
        n = 10
        g = dumbbell_graph(n)
        cut = [(u, v) for u, v in g.edges if (u < n // 2) != (v < n // 2)]
        assert len(cut) == 1
        assert nx.is_connected(g)

    def test_dumbbell_custom_bridge(self):
        g = dumbbell_graph(8, bridge_left=2, bridge_right=6)
        assert g.has_edge(2, 6)

    def test_dumbbell_bad_bridge(self):
        with pytest.raises(ValueError):
            dumbbell_graph(8, bridge_left=6, bridge_right=2)


class TestRandomTopologies:
    def test_random_tree_is_tree(self, rng):
        for n in (2, 5, 20):
            g = random_tree(n, rng)
            assert nx.is_tree(g)

    def test_random_connected_is_connected(self, rng):
        for _ in range(5):
            g = random_connected_graph(15, rng, extra_edge_prob=0.1)
            validate_topology(g, 15)

    def test_random_connected_rejects_bad_prob(self, rng):
        with pytest.raises(ValueError):
            random_connected_graph(5, rng, extra_edge_prob=1.5)

    def test_random_matching_plus_path_connected(self, rng):
        for _ in range(5):
            g = random_matching_plus_path(13, rng)
            validate_topology(g, 13)

    def test_random_tree_reproducible(self):
        g1 = random_tree(12, np.random.default_rng(7))
        g2 = random_tree(12, np.random.default_rng(7))
        assert set(g1.edges) == set(g2.edges)


class TestRoundIndexedTopologies:
    def test_rotating_star_moves_center(self):
        g0 = rotating_star(6, 0)
        g3 = rotating_star(6, 3)
        assert g0.degree[0] == 5
        assert g3.degree[3] == 5

    def test_shifted_ring_always_connected(self):
        for r in range(10):
            validate_topology(shifted_ring(9, r), 9)

    def test_shifted_ring_changes_edges(self):
        edges = {frozenset(map(frozenset, shifted_ring(11, r).edges)) for r in range(4)}
        assert len(edges) > 1

    def test_split_graph_bridges(self):
        g = split_graph(10, informed={0, 1, 2})
        validate_topology(g, 10)
        cut = [(u, v) for u, v in g.edges if (u in {0, 1, 2}) != (v in {0, 1, 2})]
        assert len(cut) == 1

    def test_split_graph_all_informed_is_complete(self):
        g = split_graph(5, informed=set(range(5)))
        assert g.number_of_edges() == 10
