"""Unit tests for incremental subspace maintenance (repro.coding.subspace)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding import Subspace
from repro.gf import GF, GF2


@pytest.fixture(params=[2, 5])
def field(request):
    return GF(request.param)


class TestInsertion:
    def test_empty_subspace(self, field):
        s = Subspace(field, 6)
        assert s.rank == 0
        assert s.is_empty

    def test_insert_innovative_increases_rank(self, field):
        s = Subspace(field, 4)
        assert s.insert([1, 0, 0, 0])
        assert s.insert([0, 1, 0, 0])
        assert s.rank == 2

    def test_insert_dependent_vector(self, field):
        s = Subspace(field, 4)
        s.insert([1, 1, 0, 0])
        s.insert([0, 0, 1, 0])
        combined = field.add_arrays(field.asarray([1, 1, 0, 0]), field.asarray([0, 0, 1, 0]))
        assert not s.insert(combined)
        assert s.rank == 2

    def test_insert_zero_vector(self, field):
        s = Subspace(field, 3)
        assert not s.insert([0, 0, 0])

    def test_insert_wrong_length_raises(self, field):
        s = Subspace(field, 3)
        with pytest.raises(ValueError):
            s.insert([1, 0])

    def test_rank_capped_by_dimension(self, field, rng):
        s = Subspace(field, 5)
        for _ in range(30):
            s.insert(field.random_elements(rng, 5))
        assert s.rank <= 5

    def test_extend_counts(self, field):
        s = Subspace(field, 3)
        assert s.extend([[1, 0, 0], [1, 0, 0], [0, 1, 0]]) == 2


class TestQueries:
    def test_contains(self, field):
        s = Subspace(field, 4)
        s.insert([1, 0, 1, 0])
        s.insert([0, 1, 0, 1])
        combined = field.add_arrays(field.asarray([1, 0, 1, 0]), field.asarray([0, 1, 0, 1]))
        assert s.contains(combined)
        assert not s.contains([1, 0, 0, 0])

    def test_basis_matrix_rows_span_inserted(self, field, rng):
        s = Subspace(field, 6)
        vectors = [field.random_elements(rng, 6) for _ in range(4)]
        for v in vectors:
            s.insert(v)
        basis = s.basis_matrix()
        assert basis.shape == (s.rank, 6)
        check = Subspace(field, 6)
        for row in basis:
            check.insert(row)
        for v in vectors:
            assert check.contains(v)

    def test_senses_padded_direction(self, field):
        s = Subspace(field, 5)
        s.insert([1, 1, 0, 0, 1])
        # Direction over only the first 2 coordinates.
        assert s.senses([1, 0])
        assert not s.senses([1, 1]) if field.q == 2 else True

    def test_senses_rejects_too_long_direction(self, field):
        s = Subspace(field, 3)
        with pytest.raises(ValueError):
            s.senses([1, 0, 0, 0])

    def test_copy_independence(self, field):
        s = Subspace(field, 3)
        s.insert([1, 0, 0])
        clone = s.copy()
        clone.insert([0, 1, 0])
        assert s.rank == 1 and clone.rank == 2


class TestRandomCombination:
    def test_empty_returns_none(self, field, rng):
        assert Subspace(field, 4).random_combination(rng) is None

    def test_combination_stays_in_span(self, field, rng):
        s = Subspace(field, 6)
        for _ in range(3):
            s.insert(field.random_elements(rng, 6))
        for _ in range(10):
            combo = s.random_combination(rng)
            assert combo is not None
            assert s.contains(combo)

    def test_combination_with_explicit_coefficients(self, field):
        s = Subspace(field, 3)
        s.insert([1, 0, 0])
        s.insert([0, 1, 0])
        combo = s.combination_with([1, 1])
        assert s.contains(combo)
        assert int(combo[2]) == 0

    def test_combination_with_wrong_count_raises(self, field):
        s = Subspace(field, 3)
        s.insert([1, 0, 0])
        with pytest.raises(ValueError):
            s.combination_with([1, 2, 3])

    def test_random_combination_nonzero_often(self, rng):
        # With rank >= 1 the combination is zero with probability 2^-rank;
        # over 50 draws from a rank-4 space we expect mostly non-zero vectors.
        s = Subspace(GF2, 8)
        for i in range(4):
            vec = [0] * 8
            vec[i] = 1
            s.insert(vec)
        nonzero = 0
        for _ in range(50):
            combo = s.random_combination(rng)
            if any(int(x) for x in combo):
                nonzero += 1
        assert nonzero > 30


class TestDecoding:
    def _augmented(self, field, k, payloads):
        """Build source vectors e_i || payload_i."""
        vectors = []
        for i, payload in enumerate(payloads):
            v = field.zeros(k + len(payload))
            v[i] = 1
            v[k:] = field.asarray(payload)
            vectors.append(v)
        return vectors

    def test_decode_from_source_vectors(self, field):
        payloads = [[1, 0, 1], [0, 1, 1], [1, 1, 0]]
        sources = self._augmented(field, 3, payloads)
        s = Subspace(field, 6)
        for v in sources:
            s.insert(v)
        assert s.can_decode(3)
        decoded = s.decode(3)
        assert [d.tolist() for d in decoded] == payloads

    def test_decode_from_random_combinations(self, field, rng):
        payloads = [[1, 0, 1, 1], [0, 1, 1, 0], [1, 1, 0, 0], [0, 0, 1, 1]]
        sources = self._augmented(field, 4, payloads)
        source_space = Subspace(field, 8)
        for v in sources:
            source_space.insert(v)
        receiver = Subspace(field, 8)
        # Feed the receiver random combinations until it can decode.
        for _ in range(100):
            receiver.insert(source_space.random_combination(rng))
            if receiver.can_decode(4):
                break
        assert receiver.can_decode(4)
        assert [d.tolist() for d in receiver.decode(4)] == payloads

    def test_cannot_decode_with_partial_rank(self, field):
        payloads = [[1, 0], [0, 1], [1, 1]]
        sources = self._augmented(field, 3, payloads)
        s = Subspace(field, 5)
        s.insert(sources[0])
        s.insert(sources[1])
        assert not s.can_decode(3)
        assert s.decode(3) is None
        assert s.coefficient_rank(3) == 2

    def test_coefficient_rank_ignores_payload_dimensions(self, field):
        s = Subspace(field, 5)
        # A vector with zero coefficient part contributes nothing to the
        # coefficient rank even though it raises the overall rank.
        s.insert([0, 0, 0, 1, 1])
        assert s.rank == 1
        assert s.coefficient_rank(3) == 0

    def test_decode_zero_payload_dimensions(self, field):
        # Degenerate case: no payload symbols at all.
        s = Subspace(field, 2)
        s.insert([1, 0])
        s.insert([0, 1])
        decoded = s.decode(2)
        assert len(decoded) == 2
        assert all(d.size == 0 for d in decoded)
