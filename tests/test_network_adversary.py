"""Unit tests for adversaries (repro.network.adversary)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.network import (
    BottleneckAdversary,
    NodeStateView,
    ObliviousSequenceAdversary,
    OmniscientBottleneckAdversary,
    PathShuffleAdversary,
    RandomConnectedAdversary,
    RandomTreeAdversary,
    RotatingStarAdversary,
    ShiftedRingAdversary,
    StaticAdversary,
    TStableAdversary,
    TokenIsolationAdversary,
    make_adversary,
    path_graph,
    validate_topology,
)
from repro.network.stability import is_t_stable


def make_states(n, informed=None, informed_ids=frozenset({("t", 0)})):
    informed = informed or set()
    return [
        NodeStateView(uid=i, known_token_ids=informed_ids if i in informed else frozenset())
        for i in range(n)
    ]


class TestStaticAndOblivious:
    def test_static_adversary_same_graph_every_round(self):
        adv = StaticAdversary(path_graph)
        g1 = adv.choose_topology(0, 6, make_states(6))
        g2 = adv.choose_topology(5, 6, make_states(6))
        assert set(g1.edges) == set(g2.edges)

    def test_static_adversary_accepts_explicit_graph(self):
        graph = path_graph(4)
        adv = StaticAdversary(graph)
        assert set(adv.choose_topology(0, 4, make_states(4)).edges) == set(graph.edges)

    def test_oblivious_sequence_uses_round_index(self):
        adv = ObliviousSequenceAdversary(lambda n, r: path_graph(n, order=list(range(n))[::-1] if r % 2 else None))
        g0 = adv.choose_topology(0, 5, make_states(5))
        g1 = adv.choose_topology(1, 5, make_states(5))
        assert nx.is_connected(g0) and nx.is_connected(g1)

    @pytest.mark.parametrize("cls", [RandomConnectedAdversary, RandomTreeAdversary, PathShuffleAdversary])
    def test_random_adversaries_always_connected(self, cls):
        adv = cls(seed=3)
        for r in range(10):
            validate_topology(adv.choose_topology(r, 12, make_states(12)), 12)

    @pytest.mark.parametrize("cls", [RandomConnectedAdversary, RandomTreeAdversary, PathShuffleAdversary])
    def test_reset_reproduces_sequence(self, cls):
        adv = cls(seed=5)
        first = [frozenset(map(frozenset, adv.choose_topology(r, 8, make_states(8)).edges)) for r in range(3)]
        adv.reset()
        second = [frozenset(map(frozenset, adv.choose_topology(r, 8, make_states(8)).edges)) for r in range(3)]
        assert first == second

    def test_rotating_star_and_shifted_ring(self):
        for cls in (RotatingStarAdversary, ShiftedRingAdversary):
            adv = cls()
            for r in range(6):
                validate_topology(adv.choose_topology(r, 9, make_states(9)), 9)


class TestAdaptiveAdversaries:
    def test_bottleneck_produces_single_cut_edge(self):
        adv = BottleneckAdversary()
        states = make_states(10, informed={0, 1, 2, 3, 4})
        g = adv.choose_topology(0, 10, states)
        validate_topology(g, 10)
        rich = {0, 1, 2, 3, 4}
        cut_edges = [(u, v) for u, v in g.edges if (u in rich) != (v in rich)]
        assert len(cut_edges) == 1

    def test_bottleneck_small_networks(self):
        adv = BottleneckAdversary()
        for n in (1, 2):
            validate_topology(adv.choose_topology(0, n, make_states(n)), n)

    def test_bottleneck_rejects_zero_bridges(self):
        with pytest.raises(ValueError):
            BottleneckAdversary(bridge_pairs=0)

    def test_token_isolation_splits_holders(self):
        target = ("token", 7)
        states = [
            NodeStateView(uid=i, known_token_ids=frozenset({target}) if i < 3 else frozenset())
            for i in range(9)
        ]
        adv = TokenIsolationAdversary(target)
        g = adv.choose_topology(0, 9, states)
        validate_topology(g, 9)
        holders = {0, 1, 2}
        cut = [(u, v) for u, v in g.edges if (u in holders) != (v in holders)]
        assert len(cut) == 1

    def test_token_isolation_complete_when_all_informed(self):
        target = ("token", 1)
        states = [NodeStateView(uid=i, known_token_ids=frozenset({target})) for i in range(5)]
        g = TokenIsolationAdversary(target).choose_topology(0, 5, states)
        assert g.number_of_edges() == 10

    def test_omniscient_requires_messages_flag(self):
        adv = OmniscientBottleneckAdversary()
        assert adv.sees_messages
        # Without a usefulness function it degenerates but still returns a legal graph.
        g = adv.choose_topology(0, 8, make_states(8, informed={0, 1}), messages=[None] * 8)
        validate_topology(g, 8)

    def test_omniscient_picks_useless_bridge(self):
        # Usefulness oracle: message from node u is useful only to receivers
        # with uid > u.  The adversary should find a rich->poor pair where it
        # is useless.
        def useless(sender, receiver, message):
            return receiver > sender

        adv = OmniscientBottleneckAdversary(usefulness_fn=useless)
        states = make_states(8, informed={4, 5, 6, 7})
        g = adv.choose_topology(0, 8, states, messages=list(range(8)))
        validate_topology(g, 8)


class TestTStableWrapper:
    def test_topology_constant_within_block(self):
        inner = RandomConnectedAdversary(seed=2)
        adv = TStableAdversary(inner, stability=4)
        graphs = [adv.choose_topology(r, 10, make_states(10)) for r in range(12)]
        assert is_t_stable(graphs, 4)

    def test_topology_changes_across_blocks(self):
        adv = TStableAdversary(PathShuffleAdversary(seed=9), stability=3)
        g0 = adv.choose_topology(0, 12, make_states(12))
        g3 = adv.choose_topology(3, 12, make_states(12))
        assert set(map(frozenset, g0.edges)) != set(map(frozenset, g3.edges))

    def test_invalid_stability(self):
        with pytest.raises(ValueError):
            TStableAdversary(PathShuffleAdversary(), stability=0)

    def test_reset_clears_block_cache(self):
        adv = TStableAdversary(RandomConnectedAdversary(seed=4), stability=5)
        g_before = adv.choose_topology(0, 8, make_states(8))
        adv.reset()
        g_after = adv.choose_topology(0, 8, make_states(8))
        assert set(map(frozenset, g_before.edges)) == set(map(frozenset, g_after.edges))


class TestFactory:
    @pytest.mark.parametrize(
        "name",
        [
            "static_path",
            "static_ring",
            "static_star",
            "static_complete",
            "random_connected",
            "random_tree",
            "rotating_star",
            "shifted_ring",
            "path_shuffle",
            "bottleneck",
        ],
    )
    def test_every_named_adversary_builds_and_runs(self, name):
        adv = make_adversary(name, seed=1)
        for r in range(3):
            validate_topology(adv.choose_topology(r, 7, make_states(7)), 7)

    def test_factory_stability_wrapping(self):
        adv = make_adversary("path_shuffle", stability=6, seed=0)
        assert isinstance(adv, TStableAdversary)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_adversary("does_not_exist")
