"""Tests for the mask-native GF(2) fast path and the packed wire format.

Three layers are pinned down here:

* the packed :class:`CodedMessage` wire format is bit-for-bit equivalent to
  the old per-symbol tuple form (round-trips, size accounting, receive);
* the mask-native ``Subspace`` operations (`insert` / `senses` / `decode` /
  `coefficient_rank`) agree with the generic-field elimination path on the
  same vector streams (property test over seeded random generations);
* the zero-combination regression: a node with information never composes
  the useless all-zero message.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding import Generation, Subspace
from repro.gf import GF2, pack_bits, unpack_bits
from repro.tokens.message import CodedMessage


def generic_subspace(length: int) -> Subspace:
    """A GF(2) subspace forced onto the generic-field elimination path."""
    s = Subspace(GF2, length)
    s._gf2 = None
    return s


class TestPackedWireFormat:
    def test_packed_message_equals_tuple_twin(self):
        gen = Generation(k=4, payload_bits=8, field_order=2, generation_id=7)
        vector = gen.source_vector(2, 0xA5)
        tuple_msg = gen.message_from_vector(9, vector)
        packed_msg = gen.message_from_mask(9, gen.source_mask(2, 0xA5))
        assert packed_msg.is_packed and not tuple_msg.is_packed
        assert packed_msg.coefficients == tuple_msg.coefficients
        assert packed_msg.payload == tuple_msg.payload
        assert packed_msg.size_bits == tuple_msg.size_bits
        assert packed_msg.header_bits == tuple_msg.header_bits
        assert packed_msg == tuple_msg
        assert hash(packed_msg) == hash(tuple_msg)

    def test_mask_vector_roundtrip(self, rng):
        gen = Generation(k=5, payload_bits=12, field_order=2, generation_id=3)
        for _ in range(20):
            mask = int(rng.integers(0, 1 << gen.vector_length))
            msg = gen.message_from_mask(1, mask)
            assert gen.mask_from_message(msg) == mask
            vector = gen.vector_from_message(msg)
            assert pack_bits(vector) == mask
            # And through the tuple form back to the same mask.
            tuple_msg = gen.message_from_vector(1, vector)
            assert gen.mask_from_message(tuple_msg) == mask

    def test_roundtrip_across_generations(self):
        for generation_id in (0, 1, 5, 300):
            gen = Generation(k=3, payload_bits=6, field_order=2, generation_id=generation_id)
            msg = gen.message_from_mask(0, gen.source_mask(1, 0b101010))
            assert msg.generation == generation_id
            assert gen.mask_from_message(msg) == gen.source_mask(1, 0b101010)

    def test_receive_accepts_both_forms_identically(self, rng):
        gen = Generation(k=3, payload_bits=8, field_order=2)
        payloads = [17, 255, 0]
        source = gen.new_state()
        for i, payload in enumerate(payloads):
            assert source.add_source(i, payload)
        sink_packed = gen.new_state()
        sink_tuple = gen.new_state()
        for _ in range(40):
            msg = source.compose(0, rng)
            assert msg is not None and msg.is_packed
            twin = CodedMessage(
                sender=msg.sender,
                coefficients=msg.coefficients,
                payload=msg.payload,
                field_order=2,
                generation=msg.generation,
            )
            assert sink_packed.receive(msg) == sink_tuple.receive(twin)
        assert sink_packed.rank == sink_tuple.rank
        assert sink_packed.decode_payloads() == sink_tuple.decode_payloads() == payloads

    def test_packed_form_validation(self):
        with pytest.raises(ValueError):
            CodedMessage(sender=0, field_order=3, mask=5, k=2, payload_symbols=2)
        with pytest.raises(ValueError):
            CodedMessage(sender=0, mask=5, k=None, payload_symbols=2)
        with pytest.raises(ValueError):
            CodedMessage(sender=0, coefficients=(1,), mask=1, k=1, payload_symbols=0)
        with pytest.raises(ValueError):
            CodedMessage(sender=0, mask=1 << 10, k=2, payload_symbols=2)

    def test_dimension_mismatch_rejected(self):
        gen = Generation(k=4, payload_bits=8, field_order=2)
        other = Generation(k=5, payload_bits=8, field_order=2)
        msg = other.message_from_mask(0, other.source_mask(0, 1))
        with pytest.raises(ValueError):
            gen.mask_from_message(msg)

    def test_mask_helpers_on_tuple_form(self):
        msg = CodedMessage(
            sender=0, coefficients=(1, 0, 1), payload=(0, 1, 1, 0), field_order=2
        )
        assert msg.coefficient_mask() == 0b101
        assert msg.payload_mask() == 0b0110
        assert msg.num_coefficients == 3
        assert msg.num_payload_symbols == 4


class TestMaskNativeMatchesGenericField:
    """Property test: the GF2Basis fast path tracks generic elimination."""

    @pytest.mark.parametrize("trial", range(8))
    def test_streams_agree(self, trial):
        rng = np.random.default_rng(1000 + trial)
        k = int(rng.integers(2, 6))
        payload_len = int(rng.integers(0, 8))
        length = k + payload_len
        fast = Subspace(GF2, length)
        slow = generic_subspace(length)
        # A realistic source span: e_i || payload_i.
        payload_ints = [int(rng.integers(0, 1 << payload_len)) if payload_len else 0 for _ in range(k)]
        sources = []
        for i, payload in enumerate(payload_ints):
            sources.append((1 << i) | (payload << k))
        # Stream random combinations of random subsets plus noise re-inserts.
        for step in range(40):
            subset = rng.integers(0, 2, size=k)
            mask = 0
            for pick, source in zip(subset.tolist(), sources):
                if pick:
                    mask ^= source
            arr = unpack_bits(mask, length)
            assert fast.insert(mask) == slow.insert(arr)
            assert fast.rank == slow.rank
            for probe_k in range(1, length + 1):
                assert fast.coefficient_rank(probe_k) == slow.coefficient_rank(probe_k)
            direction = rng.integers(0, 2, size=int(rng.integers(1, length + 1)))
            assert fast.senses(pack_bits(direction)) == slow.senses(direction)
            assert fast.contains(mask) == slow.contains(arr)
        assert fast.can_decode(k) == slow.can_decode(k)
        if fast.can_decode(k):
            fast_decoded = fast.decode(k)
            slow_decoded = slow.decode(k)
            assert [d.tolist() for d in fast_decoded] == [d.tolist() for d in slow_decoded]
            masks = fast.decode_payload_masks(k)
            assert masks == payload_ints

    def test_decode_payload_masks_are_payload_ints(self, rng):
        gen = Generation(k=4, payload_bits=10, field_order=2)
        payloads = [int(rng.integers(0, 1 << 10)) for _ in range(4)]
        source = gen.new_state()
        for i, payload in enumerate(payloads):
            source.add_source(i, payload)
        sink = gen.new_state()
        for _ in range(100):
            msg = source.compose(0, rng)
            sink.receive(msg)
            if sink.can_decode():
                break
        assert sink.decode_payloads() == payloads


class TestIncrementalCoefficientRank:
    def test_matches_fresh_projection_under_interleaving(self, rng):
        length, k = 10, 4
        s = Subspace(GF2, length)
        for step in range(30):
            vec = rng.integers(0, 2, size=length)
            s.insert(vec)
            # Interleave queries so the incremental projection is exercised
            # from a partially-built state.
            fresh = Subspace(GF2, k)
            for row in s.basis_matrix():
                fresh.insert(np.asarray(row).ravel()[:k])
            assert s.coefficient_rank(k) == fresh.rank

    def test_copy_keeps_projections_independent(self):
        s = Subspace(GF2, 6)
        s.insert([1, 0, 0, 0, 1, 0])
        assert s.coefficient_rank(3) == 1
        clone = s.copy()
        clone.insert([0, 1, 0, 0, 0, 0])
        assert clone.coefficient_rank(3) == 2
        assert s.coefficient_rank(3) == 1

    def test_generic_field_path_also_incremental(self, rng):
        from repro.gf import GF

        field = GF(5)
        s = Subspace(field, 7)
        for _ in range(20):
            s.insert(field.random_elements(rng, 7))
            fresh = Subspace(field, 3)
            for row in s.basis_matrix():
                fresh.insert(np.asarray(row).ravel()[:3])
            assert s.coefficient_rank(3) == fresh.rank


class TestNoZeroCombinations:
    def test_random_combination_mask_never_zero(self, rng):
        s = Subspace(GF2, 8)
        s.insert(1 << 3)  # rank 1: the zero draw has probability 1/2
        for _ in range(200):
            assert s.random_combination_mask(rng) != 0

    def test_random_combination_never_zero_generic(self, rng):
        from repro.gf import GF

        s = Subspace(GF(3), 5)
        s.insert([1, 0, 2, 0, 0])
        for _ in range(100):
            combo = s.random_combination(rng)
            assert any(int(x) for x in combo)

    def test_compose_never_emits_zero_message(self, rng):
        gen = Generation(k=2, payload_bits=4, field_order=2)
        state = gen.new_state()
        state.add_source(0, 3)
        for _ in range(100):
            msg = state.compose(0, rng)
            assert msg is not None
            assert gen.mask_from_message(msg) != 0

    def test_empty_subspace_still_silent(self, rng):
        gen = Generation(k=2, payload_bits=4, field_order=2)
        assert gen.new_state().compose(0, rng) is None
        assert Subspace(GF2, 4).random_combination_mask(rng) is None


class TestMaskInputValidation:
    def test_oversized_mask_rejected(self):
        s = Subspace(GF2, 4)
        with pytest.raises(ValueError):
            s.insert(1 << 4)
        with pytest.raises(ValueError):
            s.senses(1 << 7)

    def test_mask_insert_requires_gf2(self):
        from repro.gf import GF

        s = Subspace(GF(3), 4)
        with pytest.raises(TypeError):
            s.insert(5)
        with pytest.raises(TypeError):
            s.senses(5)
        with pytest.raises(TypeError):
            s.random_combination_mask(np.random.default_rng(0))
        with pytest.raises(TypeError):
            s.basis_masks()

    def test_free_header_subclass_not_equal_to_plain_message(self):
        from repro.algorithms.centralized import FreeHeaderCodedMessage

        plain = CodedMessage(sender=0, coefficients=(1, 0), payload=(1,), field_order=2)
        free = FreeHeaderCodedMessage(
            sender=0, coefficients=(1, 0), payload=(1,), field_order=2
        )
        assert plain != free and free != plain
        assert free.header_bits == 0 and plain.header_bits == 2
