"""Scenario-registry tests and the adversary replay-determinism matrix.

The determinism matrix is the contract sweeps and benchmarks rely on: every
in-repo adversary — the hand-written ones (static, oblivious, adaptive,
T-stable-wrapped, omniscient) and every registered scenario — must replay an
*identical* topology sequence after ``reset()`` with the same seed, on every
execution engine it is eligible for.
"""

from __future__ import annotations

import pickle

import pytest

from repro.algorithms import TokenForwardingNode
from repro.network import (
    ObliviousSequenceAdversary,
    OmniscientBottleneckAdversary,
    TokenIsolationAdversary,
    Topology,
    make_adversary,
    ring_topology,
    shifted_ring_topology,
)
from repro.network.adversary import _ADVERSARY_FACTORIES
from repro.scenarios import SCENARIOS, Scenario, list_scenarios, make_scenario, register_scenario, scenario_for
from repro.simulation import run_dissemination, standard_instance
from tests.conftest import make_config

N = 12


class TestRegistry:
    def test_catalog_is_populated(self):
        names = list_scenarios()
        assert len(names) >= 8
        assert "edge_markov_t4" in names and "waypoint_radio" in names
        assert names == sorted(names)

    def test_unknown_scenario_raises(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            make_scenario("no_such_scenario", 8)
        with pytest.raises(ValueError, match="unknown scenario"):
            scenario_for("no_such_scenario", 8)

    def test_duplicate_registration_rejected(self):
        existing = SCENARIOS["edge_markov"]
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(existing)

    def test_scenario_for_factories_pickle_and_build_fresh_adversaries(self):
        factory = scenario_for("edge_markov_t4", N, seed=5)
        clone = pickle.loads(pickle.dumps(factory))  # must ship to sweep workers
        a, b = factory(), clone()
        assert a is not b
        first = a.choose_topology(0, N, [])
        second = b.choose_topology(0, N, [])
        assert first.masks == second.masks  # independent objects, same schedule

    def test_every_catalog_entry_declares_connectivity(self):
        for scenario in SCENARIOS.values():
            assert isinstance(scenario, Scenario)
            assert "connected" in scenario.guarantees
            assert scenario.kernel_ok  # no catalog entry is omniscient


# ----------------------------------------------------------------------
# the replay-determinism matrix (old and new adversaries, all engines)
# ----------------------------------------------------------------------


def _target_token_id():
    return sorted(standard_instance(N, N, 8, seed=0).all_ids())[0]


def _hand_written_adversaries():
    cases = [
        pytest.param(lambda: make_adversary(name, seed=4), id=name)
        for name in sorted(_ADVERSARY_FACTORIES)
    ]
    cases += [
        pytest.param(
            lambda: make_adversary("random_connected", seed=4, stability=3),
            id="tstable-random-connected",
        ),
        pytest.param(
            lambda: TokenIsolationAdversary(_target_token_id()), id="token-isolation"
        ),
        pytest.param(lambda: OmniscientBottleneckAdversary(), id="omniscient-bottleneck"),
        pytest.param(
            lambda: ObliviousSequenceAdversary(
                lambda n, r: shifted_ring_topology(n, r) if r % 2 else ring_topology(n)
            ),
            id="oblivious-sequence",
        ),
    ]
    return cases


def _scenario_adversaries():
    return [
        pytest.param(scenario_for(name, N, seed=6), id=f"scenario-{name}")
        for name in list_scenarios()
    ]


def _edge_sequence(result) -> list[set[frozenset]]:
    return [{frozenset(edge) for edge in graph.edges} for graph in result.topologies]


@pytest.mark.parametrize(
    "adversary_factory", _hand_written_adversaries() + _scenario_adversaries()
)
def test_adversary_replays_identical_sequence_across_resets_and_engines(
    adversary_factory,
):
    config = make_config(N)
    placement = standard_instance(N, N, 8, seed=0)
    adversary = adversary_factory()
    engines = ["mask", "legacy"] if adversary.sees_messages else ["kernel", "mask", "legacy"]

    sequences = {}
    for engine in engines:
        result = run_dissemination(
            TokenForwardingNode,
            config,
            placement,
            adversary,  # the same object every run: reset() must rewind it fully
            seed=2,
            engine=engine,
            record_topologies=True,
        )
        assert result.engine == engine
        assert result.completed and result.correct
        sequences[engine] = _edge_sequence(result)

    # A second run on the first engine pins reset() replay directly.
    replay = run_dissemination(
        TokenForwardingNode,
        config,
        placement,
        adversary,
        seed=2,
        engine=engines[0],
        record_topologies=True,
    )
    assert _edge_sequence(replay) == sequences[engines[0]]

    reference = sequences[engines[0]]
    for engine in engines[1:]:
        assert sequences[engine] == reference, f"{engine} diverged from {engines[0]}"
