"""Tests for the process-parallel sweep executor and its JSON result cache."""

from __future__ import annotations

import json

import pytest

from repro.algorithms import IndexedBroadcastNode, TokenForwardingNode
from repro.network import BottleneckAdversary, RandomConnectedAdversary
from repro.simulation import (
    Measurement,
    SweepCache,
    SweepTask,
    run_sweep_task,
    sweep,
    sweep_tasks,
)

from tests.conftest import make_config


def _tasks(ns=(6, 10), repetitions=2):
    return [
        SweepTask(
            factory=IndexedBroadcastNode,
            config=make_config(n),
            adversary_factory=BottleneckAdversary,
            parameters={"n": n},
            repetitions=repetitions,
        )
        for n in ns
    ]


def run_point(parameters):
    """Module-level runner (picklable) for the classic sweep() API."""
    task = SweepTask(
        factory=TokenForwardingNode,
        config=make_config(int(parameters["n"])),
        adversary_factory=RandomConnectedAdversary,
        repetitions=2,
    )
    return run_sweep_task(task)


class TestParallelMatchesSerial:
    def test_sweep_tasks_identical_measurements(self):
        tasks = _tasks()
        serial = sweep_tasks(tasks, max_workers=1)
        parallel = sweep_tasks(tasks, max_workers=2)
        assert [p.parameters for p in serial] == [p.parameters for p in parallel]
        assert [p.measurement for p in serial] == [p.measurement for p in parallel]

    def test_sweep_runner_api_parallel(self):
        points = [{"n": 6}, {"n": 9}]
        serial = sweep(points, run_point)
        parallel = sweep(points, run_point, max_workers=2)
        assert [p.measurement for p in serial] == [p.measurement for p in parallel]

    def test_sweep_unpicklable_runner_falls_back_to_serial(self):
        seen = []

        def runner(parameters):  # closure: not picklable by reference
            seen.append(parameters["n"])
            return run_point(parameters)

        results = sweep([{"n": 6}], runner, max_workers=4)
        assert seen == [6]
        assert len(results) == 1

    def test_task_is_deterministic(self):
        task = _tasks(ns=(8,))[0]
        assert run_sweep_task(task) == run_sweep_task(task)


class TestSweepCache:
    def test_cache_round_trip(self, tmp_path):
        path = tmp_path / "cache.json"
        tasks = _tasks()
        first = sweep_tasks(tasks, cache=path)
        assert path.exists()
        entries = json.loads(path.read_text())
        assert len(entries) == len(tasks)

        # Second run must be served from the cache: poison run_sweep_task via
        # a task whose config would crash if executed.
        cached = sweep_tasks(tasks, cache=SweepCache(path))
        assert [p.measurement for p in first] == [p.measurement for p in cached]

    def test_cache_hit_skips_execution(self, tmp_path, monkeypatch):
        path = tmp_path / "cache.json"
        tasks = _tasks(ns=(6,))
        sweep_tasks(tasks, cache=path)

        import repro.simulation.experiments as experiments

        def boom(task):
            raise AssertionError("cache miss: run_sweep_task should not run")

        monkeypatch.setattr(experiments, "run_sweep_task", boom)
        results = sweep_tasks(tasks, cache=path)
        assert isinstance(results[0].measurement, Measurement)

    def test_key_distinguishes_seeds_and_protocols(self):
        base = _tasks(ns=(6,))[0]
        other_seed = SweepTask(
            factory=base.factory,
            config=base.config,
            adversary_factory=base.adversary_factory,
            repetitions=base.repetitions,
            base_seed=base.base_seed + 1,
        )
        other_factory = SweepTask(
            factory=TokenForwardingNode,
            config=base.config,
            adversary_factory=base.adversary_factory,
            repetitions=base.repetitions,
        )
        keys = {base.cache_key(), other_seed.cache_key(), other_factory.cache_key()}
        assert len(keys) == 3

    def test_key_never_collides_for_distinct_lambdas(self):
        # Lambdas share a qualname; the key must not treat them as the same
        # adversary (an unstable key — never a silent wrong cache hit).
        base = _tasks(ns=(6,))[0]
        adversaries = [lambda: BottleneckAdversary(), lambda: BottleneckAdversary()]
        a, b = (
            SweepTask(
                factory=base.factory,
                config=base.config,
                adversary_factory=adversary,
            )
            for adversary in adversaries
        )
        assert a.cache_key() != b.cache_key()

    def test_partial_arguments_distinguish_keys(self):
        import functools

        base = _tasks(ns=(6,))[0]
        a, b = (
            SweepTask(
                factory=base.factory,
                config=base.config,
                adversary_factory=functools.partial(RandomConnectedAdversary, seed=seed),
            )
            for seed in (1, 2)
        )
        assert a.cache_key() != b.cache_key()

    def test_corrupt_cache_file_is_ignored(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{not json")
        results = sweep_tasks(_tasks(ns=(6,)), cache=path)
        assert len(results) == 1
        assert json.loads(path.read_text())  # rewritten as valid JSON
