"""Unit tests for prime field arithmetic (repro.gf.field)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gf import GF, GF2, field_bits, get_field, is_prime, next_prime, smallest_prime_at_least
from repro.gf.field import GF as GFClass


class TestPrimality:
    def test_small_primes_recognised(self):
        for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31):
            assert is_prime(p)

    def test_small_composites_rejected(self):
        for c in (0, 1, 4, 6, 8, 9, 10, 12, 15, 21, 25, 27, 33, 49, 91):
            assert not is_prime(c)

    def test_negative_numbers_not_prime(self):
        assert not is_prime(-7)

    def test_large_prime(self):
        assert is_prime(2**31 - 1)  # Mersenne prime

    def test_large_composite(self):
        assert not is_prime((2**31 - 1) * 7)

    def test_carmichael_number_rejected(self):
        assert not is_prime(561)
        assert not is_prime(41041)

    def test_next_prime(self):
        assert next_prime(2) == 3
        assert next_prime(3) == 5
        assert next_prime(13) == 17
        assert next_prime(1) == 2
        assert next_prime(0) == 2

    def test_smallest_prime_at_least(self):
        assert smallest_prime_at_least(2) == 2
        assert smallest_prime_at_least(14) == 17
        assert smallest_prime_at_least(17) == 17
        assert smallest_prime_at_least(1) == 2

    def test_smallest_prime_at_least_large(self):
        p = smallest_prime_at_least(10**6)
        assert p >= 10**6
        assert is_prime(p)


class TestFieldConstruction:
    def test_field_requires_prime_order(self):
        with pytest.raises(ValueError):
            GF(4)
        with pytest.raises(ValueError):
            GF(1)
        with pytest.raises(ValueError):
            GF(100)

    def test_gf2_singleton(self):
        assert GF2.q == 2
        assert get_field(2) is get_field(2)

    def test_fields_equal_by_order(self):
        assert GF(7) == GF(7)
        assert GF(7) != GF(11)
        assert hash(GF(5)) == hash(GF(5))

    def test_field_bits(self):
        assert field_bits(2) == 1
        assert field_bits(3) == 2
        assert field_bits(5) == 3
        assert field_bits(257) == 9

    def test_field_bits_rejects_tiny(self):
        with pytest.raises(ValueError):
            field_bits(1)

    def test_bits_per_symbol_property(self):
        assert GF(2).bits_per_symbol == 1
        assert GF(7).bits_per_symbol == 3

    def test_contains(self):
        f = GF(5)
        assert 0 in f and 4 in f
        assert 5 not in f
        assert -1 not in f
        assert "x" not in f


class TestScalarArithmetic:
    @pytest.fixture
    def f7(self):
        return GF(7)

    def test_add_sub(self, f7):
        assert f7.add(3, 5) == 1
        assert f7.sub(3, 5) == 5
        assert f7.sub(5, 3) == 2

    def test_neg(self, f7):
        assert f7.neg(0) == 0
        assert f7.neg(3) == 4
        assert f7.add(3, f7.neg(3)) == 0

    def test_mul(self, f7):
        assert f7.mul(3, 5) == 1
        assert f7.mul(0, 6) == 0

    def test_inverse_roundtrip(self, f7):
        for a in range(1, 7):
            assert f7.mul(a, f7.inv(a)) == 1

    def test_inverse_of_zero_raises(self, f7):
        with pytest.raises(ZeroDivisionError):
            f7.inv(0)

    def test_div(self, f7):
        assert f7.div(6, 3) == 2
        assert f7.div(1, 5) == f7.inv(5)

    def test_pow(self, f7):
        assert f7.pow(3, 0) == 1
        assert f7.pow(3, 6) == 1  # Fermat
        assert f7.pow(3, -1) == f7.inv(3)

    def test_normalize(self, f7):
        assert f7.normalize(-1) == 6
        assert f7.normalize(14) == 0

    def test_gf2_is_xor(self):
        f = GF(2)
        assert f.add(1, 1) == 0
        assert f.add(1, 0) == 1
        assert f.mul(1, 1) == 1
        assert f.inv(1) == 1


class TestArrayArithmetic:
    def test_asarray_reduces(self):
        f = GF(5)
        arr = f.asarray([7, -1, 3])
        assert arr.tolist() == [2, 4, 3]

    def test_zeros_and_ones(self):
        f = GF(3)
        assert f.zeros(4).tolist() == [0, 0, 0, 0]
        assert f.ones(3).tolist() == [1, 1, 1]

    def test_elementwise_ops(self):
        f = GF(5)
        a = f.asarray([1, 2, 3])
        b = f.asarray([4, 4, 4])
        assert f.add_arrays(a, b).tolist() == [0, 1, 2]
        assert f.sub_arrays(a, b).tolist() == [2, 3, 4]
        assert f.mul_arrays(a, b).tolist() == [4, 3, 2]

    def test_scale(self):
        f = GF(7)
        a = f.asarray([1, 2, 3])
        assert f.scale(a, 3).tolist() == [3, 6, 2]

    def test_dot(self):
        f = GF(5)
        assert f.dot(f.asarray([1, 2, 3]), f.asarray([3, 2, 1])) == 0
        assert f.dot(f.asarray([1, 1]), f.asarray([2, 2])) == 4

    def test_dot_shape_mismatch(self):
        f = GF(5)
        with pytest.raises(ValueError):
            f.dot(f.asarray([1, 2]), f.asarray([1, 2, 3]))

    def test_matmul(self):
        f = GF(7)
        a = f.asarray([[1, 2], [3, 4]])
        b = f.asarray([[5, 6], [0, 1]])
        out = f.matmul(a, b)
        assert out.tolist() == [[5, 1], [1, 1]]

    def test_random_elements_in_range(self, rng):
        f = GF(11)
        values = f.random_elements(rng, (100,))
        assert all(0 <= int(v) < 11 for v in values)

    def test_random_nonzero(self, rng):
        f = GF(3)
        for _ in range(20):
            assert f.random_nonzero(rng) in (1, 2)
        assert GF(2).random_nonzero(rng) == 1


class TestLargeField:
    def test_object_dtype_for_huge_field(self):
        q = smallest_prime_at_least(2**80)
        f = GF(q)
        assert f.uses_object_dtype
        assert f.mul(q - 1, q - 1) == 1  # (-1)^2 = 1

    def test_large_field_inverse(self):
        q = smallest_prime_at_least(2**70)
        f = GF(q)
        a = 123456789123456789 % q
        assert f.mul(a, f.inv(a)) == 1

    def test_large_field_random_elements(self, rng):
        q = smallest_prime_at_least(2**70)
        f = GF(q)
        values = f.random_elements(rng, (5,))
        assert all(0 <= int(v) < q for v in values)

    def test_large_field_dot(self):
        q = smallest_prime_at_least(2**70)
        f = GF(q)
        a = f.asarray([q - 1, 2])
        b = f.asarray([1, 3])
        assert f.dot(a, b) == (q - 1 + 6) % q
