"""Tests for the token-forwarding baselines and the random-forward primitive."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import (
    GatherState,
    PipelinedTokenForwardingNode,
    RandomForwardNode,
    TokenForwardingNode,
    tokens_per_message,
)
from repro.network import (
    BottleneckAdversary,
    PathShuffleAdversary,
    RandomConnectedAdversary,
    StaticAdversary,
    TStableAdversary,
    path_graph,
)
from repro.simulation import build_nodes, run_dissemination
from repro.tokens import MessageBudget, one_token_per_node
from repro.analysis import token_forwarding_rounds
from tests.conftest import make_config


class TestTokensPerMessage:
    def test_scales_with_budget(self):
        small = make_config(16, d=8, b=32)
        large = make_config(16, d=8, b=256)
        assert tokens_per_message(large) > tokens_per_message(small)

    def test_at_least_one(self):
        config = make_config(16, d=16, b=16)
        assert tokens_per_message(config) >= 1


class TestFloodingTokenForwarding:
    @pytest.mark.parametrize("adversary_factory", [
        lambda: RandomConnectedAdversary(seed=1),
        lambda: PathShuffleAdversary(seed=2),
        lambda: BottleneckAdversary(),
        lambda: StaticAdversary(path_graph),
    ])
    def test_completes_and_correct_under_every_adversary(self, rng, adversary_factory):
        config = make_config(10)
        placement = one_token_per_node(10, 8, rng)
        result = run_dissemination(TokenForwardingNode, config, placement, adversary_factory())
        assert result.completed and result.correct

    def test_messages_respect_budget(self, rng):
        config = make_config(12, d=8, b=40)
        placement = one_token_per_node(12, 8, rng)
        result = run_dissemination(
            TokenForwardingNode, config, placement, RandomConnectedAdversary(seed=3)
        )
        assert result.metrics.max_message_bits <= config.budget.limit_bits

    def test_round_count_close_to_theory_on_bottleneck(self, rng):
        # Against the adaptive bottleneck adversary the phase-based algorithm
        # should be within a small constant of the nkd/b + n bound.
        n = 12
        config = make_config(n, d=8, b=n + 16)
        placement = one_token_per_node(n, 8, rng)
        result = run_dissemination(TokenForwardingNode, config, placement, BottleneckAdversary())
        predicted = token_forwarding_rounds(n, n, 8, n + 16)
        assert result.rounds <= 6 * predicted

    def test_larger_messages_fewer_rounds(self, rng):
        n = 12
        placement = one_token_per_node(n, 8, rng)
        small = run_dissemination(
            TokenForwardingNode, make_config(n, d=8, b=32), placement, BottleneckAdversary()
        )
        large = run_dissemination(
            TokenForwardingNode, make_config(n, d=8, b=128), placement, BottleneckAdversary()
        )
        assert large.rounds < small.rounds

    def test_delivered_sets_consistent(self, rng):
        # After completion, every node has marked the same tokens delivered.
        config = make_config(8)
        placement = one_token_per_node(8, 8, rng)
        result = run_dissemination(
            TokenForwardingNode, config, placement, RandomConnectedAdversary(seed=4),
            stop_at_completion=False, max_rounds=8 * 10,
        )
        delivered_sets = {frozenset(node.delivered) for node in result.nodes}
        assert len(delivered_sets) == 1

    def test_knowledge_monotone(self, rng):
        config = make_config(8)
        placement = one_token_per_node(8, 8, rng)
        result = run_dissemination(
            TokenForwardingNode, config, placement, RandomConnectedAdversary(seed=5),
            track_progress=True,
        )
        means = [entry[2] for entry in result.metrics.progress]
        assert all(a <= b + 1e-9 for a, b in zip(means, means[1:]))


class TestPipelinedForwarding:
    def test_completes_on_static_graph_quickly(self, rng):
        n = 16
        config = make_config(n, d=8, b=24)
        placement = one_token_per_node(n, 8, rng)
        result = run_dissemination(
            PipelinedTokenForwardingNode, config, placement, StaticAdversary(path_graph)
        )
        assert result.completed and result.correct
        # Pipelined flooding on a static path: O(n + k d / b), far below n*k.
        assert result.rounds <= 6 * n

    def test_completes_on_tstable_network(self, rng):
        n = 12
        config = make_config(n, stability=4)
        placement = one_token_per_node(n, 8, rng)
        adversary = TStableAdversary(RandomConnectedAdversary(seed=3), stability=4)
        result = run_dissemination(PipelinedTokenForwardingNode, config, placement, adversary)
        assert result.completed and result.correct

    def test_stability_helps(self, rng):
        n = 16
        placement = one_token_per_node(n, 8, rng)
        fully_dynamic = run_dissemination(
            PipelinedTokenForwardingNode,
            make_config(n, d=8, b=24, stability=1),
            placement,
            PathShuffleAdversary(seed=9),
        )
        stable = run_dissemination(
            PipelinedTokenForwardingNode,
            make_config(n, d=8, b=24, stability=8),
            placement,
            TStableAdversary(PathShuffleAdversary(seed=9), stability=8),
        )
        assert stable.rounds <= fully_dynamic.rounds


class TestRandomForward:
    def test_completes_eventually(self, rng):
        config = make_config(10)
        placement = one_token_per_node(10, 8, rng)
        result = run_dissemination(
            RandomForwardNode, config, placement, RandomConnectedAdversary(seed=2)
        )
        assert result.completed and result.correct

    def test_waste_grows_toward_the_end(self, rng):
        # Section 5.2: most forwarding broadcasts are wasted in the end phase.
        config = make_config(14)
        placement = one_token_per_node(14, 8, rng)
        result = run_dissemination(
            RandomForwardNode, config, placement, BottleneckAdversary(),
        )
        assert result.metrics.waste_fraction > 0.05

    def test_gather_state_lemma_7_2_gathering(self, rng):
        # After ~n rounds of random forwarding, some node holds many tokens
        # (Lemma 7.2: at least sqrt(bk/d) of them, or all).
        n = 20
        config = make_config(n, d=8, b=32)
        placement = one_token_per_node(n, 8, rng)
        nodes = build_nodes(RandomForwardNode, config, placement, rng)
        adversary = PathShuffleAdversary(seed=11)
        from repro.simulation.runner import run_dissemination as run

        result = run(
            RandomForwardNode, config, placement, adversary,
            max_rounds=n, stop_at_completion=False,
        )
        best = max(len(node.known_token_ids()) for node in result.nodes)
        bound = np.sqrt(config.b * config.k / config.d)
        assert best >= min(config.k, int(bound))

    def test_gather_state_leader_election(self, rng):
        # Drive a GatherState pair directly: after flooding, both agree on the
        # node with the larger count.
        config = make_config(4)
        placement = one_token_per_node(4, 8, rng)
        nodes = build_nodes(RandomForwardNode, config, placement, rng)
        # Give node 2 extra knowledge.
        for token in placement.tokens:
            nodes[2]._learn_token(token)
        gathers = [GatherState(node, forward_rounds=1, flood_rounds=4) for node in nodes]
        for phase_round in range(5):
            messages = [g.compose(phase_round) for g in gathers]
            for i, g in enumerate(gathers):
                inbox = [m for j, m in enumerate(messages) if m is not None and j != i]
                g.deliver(phase_round, inbox)
        leaders = {g.elected_leader() for g in gathers}
        assert leaders == {2}
        assert all(g.elected_count() == 4 for g in gathers)
