"""Equivalence suite: the batched GF(2) elimination core vs per-node bases.

:class:`repro.gf.packed.GF2BasisBatch` promises bit-exactness with the
scalar :class:`repro.gf.gf2.GF2Basis` / :class:`repro.coding.subspace.Subspace`
implementations: the same insert sequence yields the same innovative flags,
ranks, basis rows (values *and* orders), coefficient ranks, decoded payload
masks, and — through the shared buffered pick protocol — the same composed
combinations from the same rng streams.  That contract is what lets the
coded kernels replace per-node subspaces without changing a single metric.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.subspace import Subspace
from repro.gf import (
    GF2Basis,
    GF2BasisBatch,
    get_field,
    masks_to_packed,
    packed_to_mask,
    packed_to_masks,
)


def _apply_sequence(n, length, inserts):
    """Run one insert sequence through the batch and scalar twins."""
    batch = GF2BasisBatch(n, length)
    scalars = [GF2Basis(length) for _ in range(n)]
    for call in inserts:
        nodes = np.array([uid for uid, _ in call], dtype=np.int64)
        masks = [mask for _, mask in call]
        flags = batch.insert_batch(nodes, masks_to_packed(masks, batch.words))
        for (uid, mask), flag in zip(call, flags.tolist()):
            assert scalars[uid].insert(mask) == flag
    return batch, scalars


@st.composite
def insert_sequences(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    length = draw(st.integers(min_value=1, max_value=70))
    calls = draw(
        st.lists(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=(1 << length) - 1),
                ),
                min_size=1,
                max_size=3 * n,  # duplicates exercise the fused wave loop
            ),
            min_size=1,
            max_size=12,
        )
    )
    return n, length, calls


class TestBatchedEliminationEquivalence:
    @given(insert_sequences())
    @settings(max_examples=60, deadline=None)
    def test_insert_flags_ranks_and_rows(self, sequence):
        n, length, calls = sequence
        batch, scalars = _apply_sequence(n, length, calls)
        for uid in range(n):
            assert int(batch.ranks[uid]) == scalars[uid].rank
            assert batch.row_masks(uid) == list(scalars[uid]._rows.values())
            assert batch.basis_masks(uid) == scalars[uid].basis_masks()

    @given(insert_sequences(), st.integers(min_value=1, max_value=80))
    @settings(max_examples=60, deadline=None)
    def test_coefficient_ranks_and_decode(self, sequence, k):
        n, length, calls = sequence
        batch, scalars = _apply_sequence(n, length, calls)
        k = min(k, length)
        ranks = batch.coefficient_ranks(k)
        for uid in range(n):
            assert int(ranks[uid]) == scalars[uid].coefficient_rank(k)
        ok, payloads = batch.decode_payload_masks_batch(k)
        for uid in range(n):
            expected = scalars[uid].decode_payload_masks(k)
            if expected is None:
                assert not ok[uid]
            else:
                assert ok[uid]
                assert packed_to_masks(payloads[uid]) == expected

    @given(insert_sequences())
    @settings(max_examples=30, deadline=None)
    def test_incremental_coefficient_ranks(self, sequence):
        # Querying early then continuing must match the scalar incremental
        # projection maintenance.
        n, length, calls = sequence
        k = max(1, length // 2)
        batch = GF2BasisBatch(n, length)
        scalars = [GF2Basis(length) for _ in range(n)]
        for call in calls:
            nodes = np.array([uid for uid, _ in call], dtype=np.int64)
            masks = [mask for _, mask in call]
            batch.insert_batch(nodes, masks_to_packed(masks, batch.words))
            for uid, mask in call:
                scalars[uid].insert(mask)
            ranks = batch.coefficient_ranks(k)
            for uid in range(n):
                assert int(ranks[uid]) == scalars[uid].coefficient_rank(k)

    def test_lift_masks_replays_existing_bases(self, rng):
        length = 50
        scalars = [GF2Basis(length) for _ in range(5)]
        for basis in scalars:
            for _ in range(int(rng.integers(0, 12))):
                basis.insert(int(rng.integers(0, 1 << length)))
        batch = GF2BasisBatch(5, length)
        batch.lift_masks([b.rows_in_insertion_order() for b in scalars])
        for uid, basis in enumerate(scalars):
            assert batch.row_masks(uid) == list(basis._rows.values())
            assert int(batch.ranks[uid]) == basis.rank

    def test_span_cap_short_circuits_saturated_bases(self, rng):
        # All traffic lives in the span of 4 source vectors, so rank caps at
        # 4 and further inserts return False without growing anything.
        length, cap = 40, 4
        sources = [int(rng.integers(1, 1 << length)) for _ in range(cap)]
        batch = GF2BasisBatch(3, length, span_cap=cap)
        reference = GF2BasisBatch(3, length)
        for _ in range(200):
            uid = int(rng.integers(0, 3))
            combo = 0
            for source in sources:
                if rng.random() < 0.5:
                    combo ^= source
            nodes = np.array([uid], dtype=np.int64)
            vectors = masks_to_packed([combo], batch.words)
            assert (
                batch.insert_batch(nodes, vectors).tolist()
                == reference.insert_batch(nodes, vectors).tolist()
            )
        assert (batch.ranks <= cap).all()
        assert (batch.ranks == reference.ranks).all()


class TestComposeParity:
    def test_random_combination_stream_parity(self, rng):
        # Same spawned generators, same insert sequences -> the batch and the
        # scalar Subspace emit identical combination masks (shared buffered
        # pick protocol), interleaved with further inserts.
        n, length = 6, 33
        batch = GF2BasisBatch(n, length)
        subspaces = [Subspace(get_field(2), length) for _ in range(n)]
        rngs_batch = list(np.random.default_rng(7).spawn(n))
        rngs_scalar = list(np.random.default_rng(7).spawn(n))
        for _ in range(25):
            count = int(rng.integers(1, n + 1))
            nodes = rng.choice(n, size=count, replace=False)
            masks = [int(rng.integers(0, 1 << length)) for _ in range(count)]
            batch.insert_batch(nodes, masks_to_packed(masks, batch.words))
            for uid, mask in zip(nodes.tolist(), masks):
                subspaces[uid].insert(mask)
            active, picks = batch.draw_random_picks(rngs_batch)
            combined = packed_to_masks(batch.combine_sorted(picks))
            for uid in range(n):
                expected = subspaces[uid].random_combination_mask(rngs_scalar[uid])
                if expected is None:
                    assert not active[uid]
                else:
                    assert active[uid]
                    assert combined[uid] == expected

    def test_combine_sorted_subset_matches_full(self, rng):
        n, length = 8, 45
        batch = GF2BasisBatch(n, length)
        for _ in range(40):
            uid = np.array([int(rng.integers(0, n))], dtype=np.int64)
            batch.insert_batch(
                uid, masks_to_packed([int(rng.integers(0, 1 << length))], batch.words)
            )
        max_rank = int(batch.ranks.max())
        picks = (rng.random((n, max_rank)) < 0.5).astype(np.uint8)
        full = batch.combine_sorted(picks)
        subset = np.array([1, 4, 6], dtype=np.int64)
        partial = batch.combine_sorted(picks, subset)
        assert (partial[subset] == full[subset]).all()
        others = np.setdiff1d(np.arange(n), subset)
        assert not partial[others].any()

    def test_pick_buffer_consumption_is_deterministic(self):
        subspace_a = Subspace(get_field(2), 10)
        subspace_b = Subspace(get_field(2), 10)
        rng_a, rng_b = np.random.default_rng(3), np.random.default_rng(3)
        draws_a = [subspace_a.draw_pick_mask(rng_a, r) for r in (3, 7, 1, 10, 4)]
        draws_b = [subspace_b.draw_pick_mask(rng_b, r) for r in (3, 7, 1, 10, 4)]
        assert draws_a == draws_b
        assert all(d > 0 for d in draws_a)

    def test_pick_buffer_handles_ranks_beyond_one_refill(self):
        # A rank above 8 * PICK_REFILL_BYTES needs several refills per draw;
        # the buffer must never go negative or truncate the pick.
        rank = 8 * Subspace.PICK_REFILL_BYTES + 37
        subspace = Subspace(get_field(2), rank)
        rng = np.random.default_rng(1)
        for _ in range(3):
            pick = subspace.draw_pick_mask(rng, rank)
            assert 0 < pick < (1 << rank)
            assert subspace._pick_bits >= 0


class TestScalarFastPaths:
    def test_saturated_scalar_insert_short_circuits(self):
        basis = GF2Basis(3)
        for mask in (0b001, 0b010, 0b100):
            assert basis.insert(mask)
        assert basis.rank == 3
        assert not basis.insert(0b111)
        assert basis.rank == 3

    def test_saturated_general_q_subspace_short_circuits(self):
        subspace = Subspace(get_field(3), 2)
        assert subspace.insert([1, 0])
        assert subspace.insert([0, 1])
        assert not subspace.insert([2, 2])
        assert subspace.rank == 2

    def test_rows_are_mutually_reduced(self, rng):
        # Gauss-Jordan invariant: no row carries another row's leading bit.
        basis = GF2Basis(40)
        for _ in range(30):
            basis.insert(int(rng.integers(0, 1 << 40)))
        leads = {mask.bit_length() - 1 for mask in basis._rows.values()}
        for mask in basis._rows.values():
            carried = {b for b in leads if (mask >> b) & 1}
            assert carried == {mask.bit_length() - 1}

    def test_from_rows_round_trip(self, rng):
        basis = GF2Basis(30)
        for _ in range(20):
            basis.insert(int(rng.integers(0, 1 << 30)))
        rebuilt = GF2Basis.from_rows(30, basis.rows_in_insertion_order())
        assert rebuilt._rows == basis._rows
        assert rebuilt.basis_masks() == basis.basis_masks()
        assert rebuilt._pivot_mask == basis._pivot_mask

    def test_from_rows_rejects_invalid_rows(self):
        with pytest.raises(ValueError, match="non-zero"):
            GF2Basis.from_rows(8, [0])
        with pytest.raises(ValueError, match="echelon"):
            GF2Basis.from_rows(8, [0b11, 0b10])
        with pytest.raises(ValueError, match="echelon"):
            GF2Basis.from_rows(2, [0b100])


class TestPackedHelpers:
    @given(
        st.lists(st.integers(min_value=0, max_value=(1 << 100) - 1), max_size=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_masks_round_trip(self, masks):
        packed = masks_to_packed(masks, 2)
        assert packed_to_masks(packed) == [m & ((1 << 128) - 1) for m in masks]
        for i, mask in enumerate(masks):
            assert packed_to_mask(packed[i]) == mask

    def test_capacity_growth_preserves_state(self, rng):
        batch = GF2BasisBatch(2, 120)
        scalar = GF2Basis(120)
        for _ in range(100):  # forces several _grow steps past the initial 16
            mask = int(rng.integers(0, 1 << 60)) | (int(rng.integers(0, 1 << 60)) << 60)
            nodes = np.array([0], dtype=np.int64)
            flags = batch.insert_batch(nodes, masks_to_packed([mask], batch.words))
            assert flags[0] == scalar.insert(mask)
        assert batch.row_masks(0) == list(scalar._rows.values())
