"""Third-generation hostile-axis tests: radio collisions, quorum
membership, and protocol-state-aware adversaries.

What this module pins, on top of the first/second-generation coverage in
``test_faults.py``:

* hypothesis invariants on the :class:`CollisionModel` effective-CSR edit
  — collided deliveries are a sub-multiset of the pre-collision effective
  CSR (a certain collision round consumes no randomness, so the two edits
  are draw-for-draw comparable at the same seed), silence mode erases
  every crowded receiver's inbox, capture mode delivers exactly the
  lowest-uid sender's copies, and the accounting balances;
* :class:`QuorumModel` semantics — the ``n >= 2f + 1`` bind-time bound,
  placement rejection for token-holding fake members, honest-only
  survivor metrics and the honest-quorum stop rule;
* the read-only :class:`StateView` seam — ``progress()``, the
  missing-view ``RuntimeError``, and the exact edge sets the shipped
  state-aware strategies erase at ``probability=1.0``;
* kernel eligibility — ``wants_state`` strategies are gated on
  ``RoundKernel.supports_state_views`` exactly like omniscient
  adversaries on ``supports_message_views`` (explicit request fails,
  ``auto`` falls back to the mask engine bit-identically), and every
  registered kernel now exposes both view kinds;
* per-round trace columns — ``collided_deliveries`` sums to the final
  metric, ``honest_survivors`` tracks the honest-quorum population, and
  the four third-generation catalog entries keep byte-identical trace
  *content* across all three engines.
"""

from __future__ import annotations

import dataclasses
from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    GreedyForwardNode,
    NaiveCodedNode,
    TokenForwardingNode,
)
from repro.network import (
    CollisionModel,
    FaultModel,
    FrontierLossStrategy,
    OmniscientBottleneckAdversary,
    QuorumModel,
    StateView,
    StragglerIsolationStrategy,
    random_connected_topology,
)
from repro.obs import ROUND_COUNTERS, TraceRecorder
from repro.obs.trace import CONTENT_ARRAYS
from repro.scenarios import fault_model_for, make_scenario
from repro.simulation import RunMetrics, run_dissemination, standard_instance
from repro.simulation.kernels import KERNEL_REGISTRY, TokenForwardingKernel
from tests.conftest import make_config

ENGINES = ("kernel", "mask", "legacy")

GEN3_ENTRIES = (
    "collision_waypoint",
    "quorum_fake3_markov",
    "frontier_adaptive_mix",
    "straggler_capture_radio",
)


def _effective(model, n, indices, indptr, seed, state=None):
    bound = model.bind(n, np.random.default_rng(seed))
    plan = bound.begin_round(0)
    eff_indices, eff_indptr = plan.bind_edges(indices, indptr, state=state)
    return eff_indices, eff_indptr, plan


# ----------------------------------------------------------------------
# radio collisions
# ----------------------------------------------------------------------


class TestCollisionInvariants:
    @settings(deadline=None, max_examples=40)
    @given(
        n=st.integers(3, 16),
        loss=st.floats(0.0, 0.9),
        duplication=st.floats(0.0, 0.9),
        capture=st.booleans(),
        seed=st.integers(0, 10_000),
    )
    def test_collided_is_a_submultiset_of_the_pre_collision_csr(
        self, n, loss, duplication, capture, seed
    ):
        # probability=1.0 makes every round a collision round WITHOUT
        # spending the scalar Bernoulli, so the baseline (no CollisionModel)
        # and the collided run consume identical loss/duplication draws at
        # the same seed — their effective CSRs are comparable edit-for-edit.
        topology = random_connected_topology(n, np.random.default_rng(seed + 1))
        indices, indptr = topology.csr_adjacency()
        base = FaultModel(loss=loss, duplication=duplication)
        coll = FaultModel(
            loss=loss,
            duplication=duplication,
            collisions=CollisionModel(probability=1.0, capture=capture),
        )
        base_i, base_p, base_plan = _effective(base, n, indices, indptr, seed)
        coll_i, coll_p, coll_plan = _effective(coll, n, indices, indptr, seed)
        sending = np.ones(n, dtype=bool)
        for v in range(n):
            base_seg = base_i[base_p[v] : base_p[v + 1]].tolist()
            coll_seg = coll_i[coll_p[v] : coll_p[v + 1]].tolist()
            # Sub-multiset: collisions only ever remove deliveries.
            assert not Counter(coll_seg) - Counter(base_seg)
            distinct = sorted(set(base_seg))
            if capture:
                # The lowest-uid surviving sender gets through (echo and
                # all); every other simultaneous delivery dies on the air.
                expected = (
                    [s for s in base_seg if s == distinct[0]] if distinct else []
                )
            else:
                # The classic reception rule: two or more simultaneous
                # senders and the receiver keeps nothing.
                expected = base_seg if len(distinct) < 2 else []
            assert coll_seg == expected, (v, base_seg)
        # The accounting balances: every removed copy is counted collided,
        # and the collision-free twin of the same draws counts none.
        base_stats = base_plan.account(sending)
        stats = coll_plan.account(sending)
        assert base_stats.collided == 0
        assert stats.collided == base_i.size - coll_i.size
        assert stats.dropped == base_stats.dropped

    def test_certain_probabilities_spend_no_draw_and_half_spends_one(self):
        n = 8
        topology = random_connected_topology(n, np.random.default_rng(1))
        indices, indptr = topology.csr_adjacency()
        # p=1.0 and p=0.0 are certain outcomes: the rng stream position
        # after bind_edges must be untouched.
        for probability in (0.0, 1.0):
            model = FaultModel(collisions=CollisionModel(probability=probability))
            bound = model.bind(n, np.random.default_rng(7))
            plan = bound.begin_round(0)
            plan.bind_edges(indices, indptr)
            assert bound.rng.random() == np.random.default_rng(7).random()
        # 0 < p < 1 spends exactly one scalar from the fault stream.
        bound = FaultModel(collisions=CollisionModel(probability=0.5)).bind(
            n, np.random.default_rng(7)
        )
        plan = bound.begin_round(0)
        plan.bind_edges(indices, indptr)
        reference = np.random.default_rng(7)
        reference.random()  # the collision round's single Bernoulli
        assert bound.rng.random() == reference.random()

    def test_collision_run_reaches_the_metrics_and_trace(self):
        n, k = 16, 12
        config = make_config(n=n, k=k)
        placement = standard_instance(n, k, config.token_bits, seed=3)
        recorder = TraceRecorder()
        result = run_dissemination(
            TokenForwardingNode,
            config,
            placement,
            make_scenario("collision_waypoint", n, seed=5),
            seed=3,
            engine="kernel",
            faults=fault_model_for("collision_waypoint", n, seed=5),
            max_rounds=8 * n,
            track_progress=True,
            trace=recorder,
        )
        metrics = result.metrics
        assert result.engine == "kernel"
        assert metrics.collided_deliveries > 0
        assert metrics.to_dict()["collided_deliveries"] == metrics.collided_deliveries
        assert metrics.summary()["collided"] == metrics.collided_deliveries
        trace = recorder.to_trace()
        assert int(trace.arrays["collided_deliveries"].sum()) == (
            metrics.collided_deliveries
        )
        # No crash / quorum axis: the honest population is the whole network.
        assert (trace.arrays["honest_survivors"] == n).all()


# ----------------------------------------------------------------------
# quorum membership
# ----------------------------------------------------------------------


class TestQuorumSemantics:
    @pytest.mark.parametrize(
        "fake", [(), (3, 3), (-1,)], ids=["empty", "duplicate", "negative"]
    )
    def test_invalid_quorum_models_rejected(self, fake):
        with pytest.raises(ValueError):
            QuorumModel(fake=fake)

    def test_bind_enforces_the_byzquorum_bound(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="n >= 7"):
            FaultModel(quorum=QuorumModel(fake=(0, 1, 2))).bind(6, rng)
        with pytest.raises(ValueError, match="out of range"):
            FaultModel(quorum=QuorumModel(fake=(7,))).bind(5, rng)
        # n = 2f + 1 exactly is the boundary the bound admits.
        bound = FaultModel(quorum=QuorumModel(fake=(3, 4))).bind(5, rng)
        assert bound.survivor_indices.tolist() == [0, 1, 2]

    def test_survivor_indices_exclude_fake_members(self):
        n = 9
        bound = FaultModel(quorum=QuorumModel(fake=(2, 7))).bind(
            n, np.random.default_rng(0)
        )
        assert bound.survivor_indices.tolist() == [0, 1, 3, 4, 5, 6, 8]

    def test_runner_rejects_token_holding_fake_members(self):
        n = 8
        config = make_config(n=n, k=n)  # tokens at every uid
        placement = standard_instance(n, n, config.token_bits, seed=3)
        with pytest.raises(ValueError, match="holds placement tokens"):
            run_dissemination(
                TokenForwardingNode,
                config,
                placement,
                make_scenario("edge_markov", n, seed=5),
                seed=3,
                faults=FaultModel(quorum=QuorumModel(fake=(n - 1,))),
            )

    def test_stop_rule_and_metrics_run_over_the_honest_quorum_only(self):
        # The fake member is also permanently crashed, so the whole
        # population can never complete — but the honest quorum can, and
        # the stop rule must fire on it.
        n, k = 12, 10
        config = make_config(n=n, k=k)
        placement = standard_instance(n, k, config.token_bits, seed=3)
        result = run_dissemination(
            TokenForwardingNode,
            config,
            placement,
            make_scenario("edge_markov", n, seed=5),
            seed=3,
            faults=FaultModel(
                quorum=QuorumModel(fake=(n - 1,)), crashes=((n - 1, 0),)
            ),
            max_rounds=10 * n,
            track_progress=True,
        )
        metrics = result.metrics
        assert metrics.completion_round is None  # the dead fake never learns
        assert metrics.survivor_completion_round is not None
        assert metrics.rounds_executed < 10 * n  # honest-quorum stop fired
        assert metrics.survivors == n - 1
        assert metrics.completed_survivors == n - 1
        assert metrics.surviving_completion_rate == 1.0
        assert metrics.fake_nodes == 1
        assert metrics.summary()["fake_nodes"] == 1
        assert metrics.to_dict()["fake_nodes"] == 1

    def test_quorum_entry_tracks_honest_survivors_in_the_trace(self):
        n, k = 16, 12
        config = make_config(n=n, k=k)
        placement = standard_instance(n, k, config.token_bits, seed=3)
        recorder = TraceRecorder()
        result = run_dissemination(
            TokenForwardingNode,
            config,
            placement,
            make_scenario("quorum_fake3_markov", n, seed=5),
            seed=3,
            engine="kernel",
            faults=fault_model_for("quorum_fake3_markov", n, seed=5),
            max_rounds=8 * n,
            track_progress=True,
            trace=recorder,
        )
        assert result.metrics.fake_nodes == 3
        assert result.metrics.survivors == n - 3
        trace = recorder.to_trace()
        assert (trace.arrays["honest_survivors"] == n - 3).all()


# ----------------------------------------------------------------------
# the StateView seam and the shipped state-aware strategies
# ----------------------------------------------------------------------


class TestStateAwareStrategies:
    def test_progress_is_the_elementwise_maximum(self):
        view = StateView([3, 0, 2], [1, 4, 2])
        assert view.progress().tolist() == [3, 4, 2]
        assert view.known_counts.dtype == np.int64
        assert view.coded_ranks.dtype == np.int64

    def test_missing_state_view_is_an_engine_bug_not_a_silent_skip(self):
        n = 6
        topology = random_connected_topology(n, np.random.default_rng(0))
        indices, indptr = topology.csr_adjacency()
        model = FaultModel(strategy=FrontierLossStrategy())
        assert model.bind(n, np.random.default_rng(0)).wants_state
        plan = model.bind(n, np.random.default_rng(0)).begin_round(0)
        with pytest.raises(RuntimeError, match="StateView"):
            plan.bind_edges(indices, indptr)

    def test_straggler_isolation_erases_every_edge_at_the_straggler(self):
        n = 8
        topology = random_connected_topology(n, np.random.default_rng(2))
        indices, indptr = topology.csr_adjacency()
        state = StateView(np.arange(n), np.zeros(n, dtype=np.int64))
        eff_i, eff_p, _ = _effective(
            FaultModel(strategy=StragglerIsolationStrategy(probability=1.0)),
            n, indices, indptr, 0, state=state,
        )
        # Node 0 has the smallest progress score: its inbox is empty and it
        # reaches nobody; every other edge passes through untouched.
        assert eff_i[eff_p[0] : eff_p[1]].size == 0
        assert 0 not in eff_i.tolist()
        for v in range(1, n):
            base = [s for s in indices[indptr[v] : indptr[v + 1]].tolist() if s != 0]
            assert eff_i[eff_p[v] : eff_p[v + 1]].tolist() == base

    def test_frontier_loss_erases_exactly_the_downhill_edges(self):
        n = 8
        topology = random_connected_topology(n, np.random.default_rng(2))
        indices, indptr = topology.csr_adjacency()
        # Distinct ascending scores: an edge is a frontier edge iff the
        # sender's uid exceeds the receiver's.
        state = StateView(np.arange(n), np.zeros(n, dtype=np.int64))
        eff_i, eff_p, _ = _effective(
            FaultModel(strategy=FrontierLossStrategy(probability=1.0)),
            n, indices, indptr, 0, state=state,
        )
        for v in range(n):
            base = indices[indptr[v] : indptr[v + 1]].tolist()
            assert eff_i[eff_p[v] : eff_p[v + 1]].tolist() == [
                s for s in base if s <= v
            ]

    def test_kernel_gate_mirrors_the_message_view_gate(self, monkeypatch):
        n, k = 12, 10
        config = make_config(n=n, k=k)
        placement = standard_instance(n, k, config.token_bits, seed=3)
        faults = FaultModel(strategy=FrontierLossStrategy(probability=0.5))

        def run(engine):
            return run_dissemination(
                TokenForwardingNode,
                config,
                placement,
                make_scenario("edge_markov", n, seed=5),
                seed=3,
                engine=engine,
                faults=faults,
                max_rounds=10 * n,
                track_progress=True,
            )

        monkeypatch.setattr(TokenForwardingKernel, "supports_state_views", False)
        with pytest.raises(ValueError, match="state-aware"):
            run("kernel")
        fallback = run("auto")
        assert fallback.engine == "mask"
        legacy = run("legacy")
        assert dataclasses.asdict(fallback.metrics) == dataclasses.asdict(
            legacy.metrics
        )
        # With the gate back in place the same run is kernel-eligible again.
        monkeypatch.undo()
        kernel = run("auto")
        assert kernel.engine == "kernel"
        assert dataclasses.asdict(kernel.metrics) == dataclasses.asdict(
            legacy.metrics
        )


# ----------------------------------------------------------------------
# kernel eligibility across the registry (message views satellite)
# ----------------------------------------------------------------------


def _forwarded_something(sender, receiver, message):
    if message is None:
        return False
    tokens = getattr(message, "tokens", None)
    if tokens is not None:
        return len(tokens) > 0
    return True


class TestRegistryWideViewSupport:
    def test_every_registered_kernel_exposes_both_view_kinds(self):
        assert KERNEL_REGISTRY, "the kernel registry went missing"
        for node_cls, kernel_cls in KERNEL_REGISTRY.items():
            assert kernel_cls.supports_message_views, node_cls.__name__
            assert kernel_cls.supports_state_views, node_cls.__name__

    @pytest.mark.parametrize("factory", [NaiveCodedNode, GreedyForwardNode])
    def test_coded_omniscient_adversary_stays_on_kernel(self, factory):
        n, k = 12, 10
        config = make_config(n=n, k=k)
        placement = standard_instance(n, k, config.token_bits, seed=3)
        results = {
            engine: run_dissemination(
                factory,
                config,
                placement,
                OmniscientBottleneckAdversary(usefulness_fn=_forwarded_something),
                seed=3,
                engine=engine,
                max_rounds=10 * n,
                track_progress=True,
            )
            for engine in ("kernel", "mask")
        }
        assert results["kernel"].engine == "kernel"
        assert dataclasses.asdict(results["kernel"].metrics) == dataclasses.asdict(
            results["mask"].metrics
        )


# ----------------------------------------------------------------------
# trace schema and cross-engine content identity for the new entries
# ----------------------------------------------------------------------


class TestGen3TraceSchema:
    def test_schema_two_columns_are_registered(self):
        assert ROUND_COUNTERS[-1] == "collided_deliveries"
        assert "honest_survivors" in CONTENT_ARRAYS

    def test_to_dict_carries_the_third_generation_fields(self):
        data = RunMetrics().to_dict()
        for key in ("collided_deliveries", "fake_nodes", "survivors",
                    "surviving_completion_rate"):
            assert key in data, key

    @pytest.mark.parametrize("name", GEN3_ENTRIES)
    def test_trace_content_identical_across_engines(self, name):
        n, k = 16, 12
        config = make_config(n=n, k=k)
        placement = standard_instance(n, k, config.token_bits, seed=3)
        digests = {}
        for engine in ENGINES:
            recorder = TraceRecorder()
            result = run_dissemination(
                TokenForwardingNode,
                config,
                placement,
                make_scenario(name, n, seed=5),
                seed=3,
                engine=engine,
                faults=fault_model_for(name, n, seed=5),
                max_rounds=6 * n,
                track_progress=True,
                trace=recorder,
            )
            if engine == "kernel":
                assert result.engine == "kernel", name
            digests[engine] = recorder.to_trace().content_digest()
        assert digests["kernel"] == digests["mask"] == digests["legacy"], name
