"""Unit tests for coding generations, packets cost model and derandomization."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.coding import (
    DeterministicSchedule,
    Generation,
    GenerationPlan,
    coded_message_bits,
    coded_payload_bits,
    coding_header_bits,
    deterministic_header_bits,
    failure_probability_log2,
    max_dimensions_for_budget,
    omniscient_field_order,
    plan_generation,
    union_bound_holds,
    union_bound_margin_log2,
    witness_count_log2,
    witness_description_bits,
)
from repro.gf import is_prime


class TestGeneration:
    def test_basic_properties(self):
        gen = Generation(k=5, payload_bits=16, field_order=2)
        assert gen.payload_symbols == 16
        assert gen.vector_length == 21
        assert gen.message_bits == 21  # k lg q + d with q = 2

    def test_larger_field_properties(self):
        gen = Generation(k=4, payload_bits=16, field_order=257)
        assert gen.payload_symbols == 2
        assert gen.message_bits == (4 + 2) * 9

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Generation(k=0, payload_bits=8)
        with pytest.raises(ValueError):
            Generation(k=1, payload_bits=-1)

    def test_source_vector_structure(self):
        gen = Generation(k=3, payload_bits=4, field_order=2)
        v = gen.source_vector(1, 0b1010)
        assert v[:3].tolist() == [0, 1, 0]
        assert v[3:].tolist() == [0, 1, 0, 1]  # LSB first

    def test_source_vector_bad_index(self):
        gen = Generation(k=3, payload_bits=4)
        with pytest.raises(IndexError):
            gen.source_vector(3, 0)

    def test_message_vector_roundtrip(self):
        gen = Generation(k=4, payload_bits=8, field_order=2, generation_id=7)
        v = gen.source_vector(2, 0xA5)
        msg = gen.message_from_vector(9, v)
        assert msg.sender == 9
        assert msg.generation == 7
        back = gen.vector_from_message(msg)
        assert back.tolist() == v.tolist()

    def test_vector_from_foreign_message_rejected(self):
        gen2 = Generation(k=4, payload_bits=8, field_order=2)
        gen3 = Generation(k=4, payload_bits=8, field_order=3)
        msg = gen3.message_from_vector(0, gen3.source_vector(0, 5))
        with pytest.raises(ValueError):
            gen2.vector_from_message(msg)


class TestGenerationState:
    def test_end_to_end_decode(self, rng):
        gen = Generation(k=3, payload_bits=8, field_order=2)
        payloads = [17, 255, 0]
        sources = [gen.new_state() for _ in range(3)]
        for i, (state, payload) in enumerate(zip(sources, payloads)):
            assert state.add_source(i, payload)
        sink = gen.new_state()
        for _ in range(60):
            for state in sources:
                msg = state.compose(0, rng)
                if msg is not None:
                    sink.receive(msg)
            if sink.can_decode():
                break
        assert sink.can_decode()
        assert sink.decode_payloads() == payloads

    def test_compose_empty_state_is_silent(self, rng):
        gen = Generation(k=2, payload_bits=4)
        assert gen.new_state().compose(0, rng) is None

    def test_receive_innovative_flag(self, rng):
        gen = Generation(k=2, payload_bits=4)
        a = gen.new_state()
        a.add_source(0, 3)
        b = gen.new_state()
        msg = a.compose(1, rng)
        assert b.receive(msg) is True
        assert b.receive(msg) is False

    def test_compose_with_coefficients(self):
        gen = Generation(k=2, payload_bits=4)
        state = gen.new_state()
        state.add_source(0, 1)
        state.add_source(1, 2)
        msg = state.compose_with_coefficients(0, [1, 1])
        assert msg is not None
        assert len(msg.coefficients) == 2

    def test_senses_direction(self):
        gen = Generation(k=3, payload_bits=2)
        state = gen.new_state()
        state.add_source(1, 0)
        assert state.senses([0, 1, 0])
        assert not state.senses([1, 0, 0])

    def test_rank_and_coefficient_rank(self):
        gen = Generation(k=2, payload_bits=4)
        state = gen.new_state()
        state.add_source(0, 9)
        assert state.rank == 1
        assert state.coefficient_rank() == 1
        assert not state.can_decode()


class TestPacketCostModel:
    def test_header_and_payload_bits(self):
        assert coding_header_bits(10, 2) == 10
        assert coding_header_bits(10, 257) == 90
        assert coded_payload_bits(16, 2) == 16
        assert coded_payload_bits(16, 257) == 18  # 2 symbols * 9 bits

    def test_message_bits_lemma_5_3(self):
        # Lemma 5.3: messages of size k lg q + d.
        assert coded_message_bits(20, 8, 2) == 28

    def test_max_dimensions_for_budget(self):
        assert max_dimensions_for_budget(100, 20, 2) == 80
        assert max_dimensions_for_budget(20, 20, 2) == 0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            coding_header_bits(-1, 2)
        with pytest.raises(ValueError):
            coded_payload_bits(-1, 2)
        with pytest.raises(ValueError):
            max_dimensions_for_budget(0, 8, 2)

    def test_plan_generation_half_split(self):
        plan = plan_generation(num_tokens=1000, token_bits=8, budget_bits=256, q=2)
        assert isinstance(plan, GenerationPlan)
        # Half the budget for one block of tokens.
        assert plan.tokens_per_block == 16
        assert plan.block_bits == 128
        assert plan.num_blocks >= 1
        assert plan.message_bits <= 2 * 256

    def test_plan_generation_few_tokens(self):
        plan = plan_generation(num_tokens=3, token_bits=8, budget_bits=256, q=2)
        assert plan.tokens_covered >= 3

    def test_plan_generation_rejects_tiny_budget(self):
        with pytest.raises(ValueError):
            plan_generation(num_tokens=5, token_bits=64, budget_bits=32)


class TestDerandomization:
    def test_omniscient_field_order_is_prime_and_large(self):
        q = omniscient_field_order(8, 3)
        assert is_prime(q)
        assert q >= 8**3

    def test_field_order_monotone_in_k(self):
        assert omniscient_field_order(10, 4) >= omniscient_field_order(10, 2)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            omniscient_field_order(1, 1)
        with pytest.raises(ValueError):
            omniscient_field_order(4, 0)

    def test_deterministic_header_quadratic_in_k(self):
        # k^2 log n scaling: doubling k should roughly quadruple the header.
        small = deterministic_header_bits(16, 4)
        large = deterministic_header_bits(16, 8)
        assert large >= 3.5 * small

    def test_witness_counting_quantities(self):
        n, k = 12, 4
        q = omniscient_field_order(n, k)
        assert witness_description_bits(n, k) > 0
        assert witness_count_log2(n, k) == witness_description_bits(n, k)
        assert failure_probability_log2(n, q) < 0

    def test_union_bound_holds_with_theorem_field_size(self):
        # Theorem 6.1: q = n^{Omega(k)} makes the union bound go through.
        for n, k in [(8, 2), (16, 3), (32, 4)]:
            q = omniscient_field_order(n, k)
            assert union_bound_holds(n, k, q)
            assert union_bound_margin_log2(n, k, q) < 0

    def test_union_bound_fails_for_tiny_field(self):
        assert not union_bound_holds(16, 4, 2)

    def test_schedule_determinism_and_range(self):
        schedule = DeterministicSchedule(field_order=101, seed=3)
        a = schedule.coefficients(uid=5, round_index=7, count=10)
        b = schedule.coefficients(uid=5, round_index=7, count=10)
        assert a == b
        assert all(0 <= c < 101 for c in a)

    def test_schedule_varies_with_inputs(self):
        schedule = DeterministicSchedule(field_order=101, seed=3)
        assert schedule.coefficient(0, 0, 0) != schedule.coefficient(1, 0, 0) or \
            schedule.coefficient(0, 1, 0) != schedule.coefficient(0, 0, 0)

    def test_schedule_matrix_shape(self):
        schedule = DeterministicSchedule(field_order=11, seed=0)
        m = schedule.as_matrix(uids=3, rounds=4, slots=2)
        assert m.shape == (3, 4, 2)
        assert all(0 <= int(x) < 11 for x in m.ravel().tolist())
