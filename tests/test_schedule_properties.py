"""Hypothesis property tests for schedule invariants.

The dynamics subsystem's contracts, checked over randomly drawn process
parameters rather than hand-picked cases:

* whatever raw process it wraps, the :class:`TIntervalEnforcer`'s output is
  T-interval connected in the sliding-window sense — and the packed-native
  :func:`is_t_interval_connected` checker agrees;
* :class:`ChurnProcess` never toggles more than ``max_churn`` nodes in one
  round, never drops below ``min_active`` live nodes, and keeps inactive
  nodes fully isolated;
* :class:`EdgeMarkovProcess` hovers at its stationary edge density
  ``p_birth / (p_birth + p_death)``.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import (
    ChurnProcess,
    EdgeMarkovProcess,
    RandomWaypointProcess,
    TIntervalEnforcer,
)
from repro.network.stability import is_t_interval_connected


def _raw_process(kind: str, n: int, seed: int):
    if kind == "edge_markov":
        # Sparse and churny: death dominates, so raw rounds disconnect often
        # and the enforcer actually has repair work to do.
        return EdgeMarkovProcess(n, p_birth=0.03, p_death=0.4, seed=seed)
    return RandomWaypointProcess(n, radius=0.18, speed=0.08, seed=seed)


class TestEnforcerProperty:
    @given(
        n=st.integers(min_value=2, max_value=48),
        interval=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**16),
        kind=st.sampled_from(["edge_markov", "waypoint"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_enforced_schedule_is_t_interval_connected(self, n, interval, seed, kind):
        process = TIntervalEnforcer(_raw_process(kind, n, seed), interval)
        # A prefix that crosses several block boundaries, misaligned on purpose.
        topologies = process.topologies(3 * interval + 2)
        assert all(topology.is_connected() for topology in topologies)
        assert is_t_interval_connected(topologies, interval)


class TestChurnProperty:
    @given(
        n=st.integers(min_value=4, max_value=40),
        max_churn=st.integers(min_value=0, max_value=5),
        seed=st.integers(min_value=0, max_value=2**16),
        rounds=st.integers(min_value=1, max_value=24),
    )
    @settings(max_examples=25, deadline=None)
    def test_churn_bounded_and_inactive_isolated(self, n, max_churn, seed, rounds):
        min_active = max(2, n // 3)
        process = ChurnProcess(
            _raw_process("edge_markov", n, seed),
            max_churn=max_churn,
            min_active=min_active,
            seed=seed + 1,
            record_activity=True,
        )
        batch = process.next_batch(rounds)
        history = process.activity_history
        assert len(history) == rounds
        previous = np.ones(n, dtype=bool)  # all nodes start active
        for r, active in enumerate(history):
            assert int((active ^ previous).sum()) <= max_churn
            assert int(active.sum()) >= min_active
            degrees = np.bitwise_count(batch[r]).sum(axis=1)
            assert (degrees[~active] == 0).all()
            previous = active


class TestEdgeMarkovStationarity:
    @given(
        p_birth=st.floats(min_value=0.05, max_value=0.4),
        p_death=st.floats(min_value=0.1, max_value=0.5),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=20, deadline=None)
    def test_density_stays_near_stationary_point(self, p_birth, p_death, seed):
        n, rounds = 40, 60
        process = EdgeMarkovProcess(n, p_birth=p_birth, p_death=p_death, seed=seed)
        batch = process.next_batch(rounds)
        density = float(np.bitwise_count(batch).sum()) / (rounds * n * (n - 1))
        stationary = p_birth / (p_birth + p_death)
        # ~47k correlated pair-round samples with mixing time 1/(pb+pd) <= 7
        # rounds: 0.1 absolute tolerance is many standard deviations out.
        assert abs(density - stationary) < 0.1
