"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.base import ProtocolConfig
from repro.tokens.message import MessageBudget
from repro.tokens.token import one_token_per_node


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_config() -> ProtocolConfig:
    """A small canonical configuration: n = k = 12, d = 8, b = n + 16."""
    n = 12
    return ProtocolConfig(n=n, k=n, token_bits=8, budget=MessageBudget(b=n + 16))


@pytest.fixture
def small_placement(rng):
    """One 8-bit token per node for the small configuration."""
    return one_token_per_node(12, 8, rng)


def make_config(n: int, k: int | None = None, d: int = 8, b: int | None = None, **kwargs) -> ProtocolConfig:
    """Helper used across tests to build configurations tersely."""
    if k is None:
        k = n
    if b is None:
        b = max(d, n + 16)
    return ProtocolConfig(n=n, k=k, token_bits=d, budget=MessageBudget(b=b), **kwargs)
