"""Unit tests for the simulation engine (runner, metrics, experiments)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import IndexedBroadcastNode, TokenForwardingNode
from repro.algorithms.base import ProtocolConfig, ProtocolNode
from repro.network import (
    BottleneckAdversary,
    OmniscientBottleneckAdversary,
    RandomConnectedAdversary,
    StaticAdversary,
    TStableAdversary,
    path_graph,
)
from repro.network.stability import is_t_stable
from repro.simulation import (
    Measurement,
    RunMetrics,
    fit_power_law,
    format_table,
    measure,
    ratio_table,
    run_dissemination,
    standard_instance,
    sweep,
)
from repro.tokens import MessageBudget, Token, TokenForwardMessage, one_token_per_node
from tests.conftest import make_config


class SilentNode(ProtocolNode):
    """A protocol that never sends anything (used to exercise non-completion)."""

    def compose(self, round_index):
        return None

    def deliver(self, round_index, messages):
        return None


class OversizedNode(ProtocolNode):
    """A protocol that violates the message budget on purpose."""

    def compose(self, round_index):
        # Send all known tokens repeated many times to blow the budget.
        tokens = tuple(list(self.known.values()) * 200)
        return TokenForwardMessage(sender=self.uid, tokens=tokens)

    def deliver(self, round_index, messages):
        return None


class TestRunner:
    def test_completion_and_correctness(self, rng):
        config = make_config(10)
        placement = one_token_per_node(10, 8, rng)
        result = run_dissemination(
            TokenForwardingNode, config, placement, RandomConnectedAdversary(seed=1)
        )
        assert result.completed
        assert result.correct is True
        assert result.metrics.completion_round == result.rounds
        assert result.metrics.rounds_executed >= result.metrics.completion_round

    def test_non_completion_within_limit(self, rng):
        config = make_config(6)
        placement = one_token_per_node(6, 8, rng)
        result = run_dissemination(
            SilentNode, config, placement, RandomConnectedAdversary(seed=1), max_rounds=20
        )
        assert not result.completed
        assert result.correct is None
        assert result.metrics.rounds_executed == 20
        assert result.metrics.silent_rounds == 20 * 6

    def test_budget_violation_raises(self, rng):
        config = make_config(6, b=16)
        placement = one_token_per_node(6, 8, rng)
        with pytest.raises(Exception):
            run_dissemination(
                OversizedNode, config, placement, RandomConnectedAdversary(seed=1), max_rounds=5
            )

    def test_reproducibility_same_seed(self, rng):
        config = make_config(10)
        placement = one_token_per_node(10, 8, rng)
        r1 = run_dissemination(
            IndexedBroadcastNode, config, placement, RandomConnectedAdversary(seed=7), seed=3
        )
        r2 = run_dissemination(
            IndexedBroadcastNode, config, placement, RandomConnectedAdversary(seed=7), seed=3
        )
        assert r1.rounds == r2.rounds
        assert r1.metrics.total_message_bits == r2.metrics.total_message_bits

    def test_record_topologies_and_stability(self, rng):
        config = make_config(8, stability=3)
        placement = one_token_per_node(8, 8, rng)
        adversary = TStableAdversary(RandomConnectedAdversary(seed=2), stability=3)
        result = run_dissemination(
            TokenForwardingNode, config, placement, adversary, record_topologies=True
        )
        assert result.topologies
        assert is_t_stable(result.topologies, 3)

    def test_track_progress(self, rng):
        config = make_config(8)
        placement = one_token_per_node(8, 8, rng)
        result = run_dissemination(
            TokenForwardingNode,
            config,
            placement,
            RandomConnectedAdversary(seed=4),
            track_progress=True,
        )
        assert result.metrics.progress
        rounds, min_known, mean_known = result.metrics.progress[-1]
        assert min_known == 8
        # Knowledge is monotone non-decreasing.
        mins = [entry[1] for entry in result.metrics.progress]
        assert all(a <= b for a, b in zip(mins, mins[1:]))

    def test_omniscient_adversary_path(self, rng):
        config = make_config(8)
        placement = one_token_per_node(8, 8, rng)
        result = run_dissemination(
            IndexedBroadcastNode,
            config,
            placement,
            OmniscientBottleneckAdversary(),
        )
        assert result.completed

    def test_static_adversary_run(self, rng):
        config = make_config(9)
        placement = one_token_per_node(9, 8, rng)
        result = run_dissemination(
            TokenForwardingNode, config, placement, StaticAdversary(path_graph)
        )
        assert result.completed and result.correct

    def test_metrics_accounting(self, rng):
        config = make_config(8)
        placement = one_token_per_node(8, 8, rng)
        result = run_dissemination(
            TokenForwardingNode, config, placement, RandomConnectedAdversary(seed=5)
        )
        m = result.metrics
        assert m.broadcasts > 0
        assert m.total_message_bits > 0
        assert m.max_message_bits <= config.budget.limit_bits
        assert 0 <= m.waste_fraction <= 1
        assert m.average_message_bits > 0
        summary = m.summary()
        assert summary["completed"] is True


class TestMetricsUnit:
    def test_record_broadcast(self):
        m = RunMetrics()
        m.record_broadcast(10)
        m.record_broadcast(30)
        assert m.broadcasts == 2
        assert m.total_message_bits == 40
        assert m.max_message_bits == 30
        assert m.average_message_bits == 20

    def test_empty_metrics_safe(self):
        m = RunMetrics()
        assert m.average_message_bits == 0
        assert m.waste_fraction == 0
        assert not m.completed


class TestExperimentHarness:
    def test_standard_instance_one_per_node(self):
        placement = standard_instance(n=10, k=None, token_bits=8)
        assert placement.k == 10

    def test_standard_instance_concentrated(self):
        placement = standard_instance(n=10, k=4, token_bits=8)
        assert placement.k == 4
        origins = {t.token_id.origin for t in placement.tokens}
        assert origins <= set(range(4))

    def test_measure_aggregates(self):
        config = make_config(8)
        placement = standard_instance(8, None, 8)
        m = measure(
            TokenForwardingNode,
            config,
            placement,
            lambda: RandomConnectedAdversary(seed=3),
            repetitions=2,
        )
        assert isinstance(m, Measurement)
        assert m.repetitions == 2
        assert m.all_completed
        assert m.rounds_min <= m.rounds_mean <= m.rounds_max

    def test_sweep_runs_all_points(self):
        points = [{"n": 6}, {"n": 8}]

        def runner(params):
            config = make_config(params["n"])
            placement = standard_instance(params["n"], None, 8)
            return measure(
                TokenForwardingNode,
                config,
                placement,
                lambda: RandomConnectedAdversary(seed=1),
                repetitions=1,
            )

        results = sweep(points, runner)
        assert len(results) == 2
        assert results[0].parameters == {"n": 6}

    def test_fit_power_law_recovers_exponent(self):
        xs = [2, 4, 8, 16, 32]
        ys = [3 * x**2 for x in xs]
        alpha, c = fit_power_law(xs, ys)
        assert abs(alpha - 2.0) < 1e-9
        assert abs(c - 3.0) < 1e-6

    def test_fit_power_law_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])

    def test_ratio_table_and_format(self):
        config = make_config(8)
        placement = standard_instance(8, None, 8)
        ours = sweep(
            [{"n": 8}],
            lambda p: measure(
                IndexedBroadcastNode, config, placement,
                lambda: RandomConnectedAdversary(seed=1), repetitions=1,
            ),
        )
        base = sweep(
            [{"n": 8}],
            lambda p: measure(
                TokenForwardingNode, config, placement,
                lambda: RandomConnectedAdversary(seed=1), repetitions=1,
            ),
        )
        rows = ratio_table(ours, base)
        assert rows[0]["speedup"] > 0
        text = format_table(rows, title="demo")
        assert "demo" in text and "speedup" in text

    def test_ratio_table_misaligned_raises(self):
        config = make_config(6)
        placement = standard_instance(6, None, 8)
        a = sweep([{"n": 6}], lambda p: measure(
            TokenForwardingNode, config, placement,
            lambda: RandomConnectedAdversary(seed=1), repetitions=1))
        b = sweep([{"n": 7}], lambda p: measure(
            TokenForwardingNode, config, placement,
            lambda: RandomConnectedAdversary(seed=1), repetitions=1))
        with pytest.raises(ValueError):
            ratio_table(a, b)

    def test_format_table_empty(self):
        assert "(no data)" in format_table([], title="t")
